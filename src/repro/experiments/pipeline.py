"""End-to-end experiment pipeline with stage caching.

The table/figure harnesses evaluate many (strategy, M, variant) cells on
the *same* network and fleet; this module materialises each shared stage
exactly once:

* network and fleet — shared by every cell;
* node2vec embeddings — one per embedding size M;
* labelled queries — one per candidate-generation configuration;
* trained models — one per full cell.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.trainer import Trainer, TrainingHistory
from repro.core.variants import build_pathrank
from repro.embedding.node2vec import Node2Vec, Node2VecConfig
from repro.experiments.config import ExperimentConfig
from repro.graph.network import RoadNetwork
from repro.ranking.evaluation import evaluate_scorer
from repro.ranking.metrics import RankingMetrics
from repro.ranking.training_data import RankingQuery, TrainingDataConfig, generate_queries
from repro.rng import make_rng, spawn
from repro.trajectories.dataset import DatasetSplit, TrajectoryDataset
from repro.trajectories.generator import TrajectoryGenerator
from repro.trajectories.drivers import sample_population

__all__ = ["CellResult", "ExperimentPipeline"]


@dataclass(frozen=True)
class CellResult:
    """One experiment cell: a trained model and its test metrics."""

    config: ExperimentConfig
    metrics: RankingMetrics
    history: TrainingHistory

    @property
    def label(self) -> str:
        return (f"{self.config.variant.value} "
                f"{self.config.training_data.strategy.value} "
                f"M={self.config.embedding_dim}")


class ExperimentPipeline:
    """Caches shared stages across experiment cells.

    All cells produced by one pipeline share the network, the fleet and
    the train/test split, so differences between cells are attributable
    purely to the axis under study — mirroring how the paper varies one
    factor per table.
    """

    def __init__(self, base: ExperimentConfig) -> None:
        self.base = base
        self._network: RoadNetwork | None = None
        self._split: DatasetSplit | None = None
        self._embeddings: dict[int, np.ndarray] = {}
        self._queries: dict[tuple, tuple[list[RankingQuery], list[RankingQuery]]] = {}

    # ------------------------------------------------------------------
    # Shared stages
    # ------------------------------------------------------------------
    @property
    def network(self) -> RoadNetwork:
        if self._network is None:
            self._network = self.base.network.build()
        return self._network

    @property
    def split(self) -> DatasetSplit:
        if self._split is None:
            rng = make_rng(self.base.seed)
            population_rng, trip_rng, split_rng = spawn(rng, 3)
            population = sample_population(self.base.fleet.num_drivers,
                                           rng=population_rng)
            generator = TrajectoryGenerator(self.network, population,
                                            self.base.fleet)
            trips = generator.generate(rng=trip_rng)
            dataset = TrajectoryDataset(self.network, trips)
            self._split = dataset.split(
                train_fraction=self.base.train_fraction,
                validation_fraction=0.0,
                rng=split_rng,
            )
        return self._split

    def embedding(self, dim: int) -> np.ndarray:
        """node2vec matrix for embedding size ``dim`` (cached)."""
        if dim not in self._embeddings:
            rng = make_rng(self.base.seed + 1000 + dim)
            node2vec = Node2Vec(self.network, Node2VecConfig(dim=dim))
            self._embeddings[dim] = node2vec.fit(rng=rng)
        return self._embeddings[dim]

    def queries(
        self, data_config: TrainingDataConfig
    ) -> tuple[list[RankingQuery], list[RankingQuery]]:
        """(train, test) labelled queries for a candidate configuration."""
        key = (data_config.strategy, data_config.k,
               round(data_config.diversity_threshold, 6),
               data_config.examine_limit)
        if key not in self._queries:
            train = generate_queries(self.split.train, data_config)
            test = generate_queries(self.split.test, data_config)
            self._queries[key] = (train, test)
        return self._queries[key]

    def eval_queries(self) -> list[RankingQuery]:
        """The shared evaluation set: test-trip candidates generated with
        the *base* configuration.

        Every cell is scored on this one set, so a table row isolates the
        effect of its training-data strategy instead of mixing it with a
        change of test-candidate distribution.
        """
        return self.queries(self.base.training_data)[1]

    # ------------------------------------------------------------------
    # Cells
    # ------------------------------------------------------------------
    def run_cell(self, config: ExperimentConfig) -> CellResult:
        """Train one (strategy, M, variant) cell; evaluate on the shared
        evaluation set."""
        train_queries, _ = self.queries(config.training_data)
        test_queries = self.eval_queries()
        rng = make_rng(config.seed)
        model_rng, trainer_rng, val_rng = spawn(rng, 3)

        # Hold out a slice of training queries for early stopping.
        order = val_rng.permutation(len(train_queries))
        n_val = max(1, len(train_queries) // 8)
        validation = [train_queries[int(i)] for i in order[:n_val]]
        training = [train_queries[int(i)] for i in order[n_val:]]

        model = build_pathrank(
            config.variant,
            num_vertices=self.network.num_vertices,
            embedding_dim=config.embedding_dim,
            embedding_matrix=self.embedding(config.embedding_dim),
            hidden_size=config.hidden_size,
            fc_hidden=config.fc_hidden,
            dropout=config.dropout,
            pooling=config.pooling,
            rng=model_rng,
        )
        trainer = Trainer(model, config.trainer, rng=trainer_rng)
        history = trainer.fit(training, validation)
        metrics = evaluate_scorer(model, test_queries)
        return CellResult(config=config, metrics=metrics, history=history)

    def test_queries(self, data_config: TrainingDataConfig) -> list[RankingQuery]:
        return self.queries(data_config)[1]

    def train_queries(self, data_config: TrainingDataConfig) -> list[RankingQuery]:
        return self.queries(data_config)[0]
