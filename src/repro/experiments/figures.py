"""Figure-style parameter sweeps and the baseline comparison.

The poster's only figures are architectural, so these sweeps densify the
axes its tables vary (embedding size M, candidate count k, diversity
threshold ξ, training-set size) and quantify the intro's motivating
claim that classic criteria rank candidate paths poorly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Sequence

from repro.experiments.pipeline import ExperimentPipeline
from repro.ranking.baselines import (
    Baseline,
    FeatureRidgeBaseline,
    GenerationOrderBaseline,
    LengthRatioBaseline,
    TravelTimeRatioBaseline,
)
from repro.ranking.evaluation import evaluate_scorer
from repro.ranking.metrics import RankingMetrics

__all__ = [
    "SweepPoint",
    "embedding_size_sweep",
    "k_sweep",
    "diversity_threshold_sweep",
    "training_fraction_sweep",
    "baseline_comparison",
    "ablation_grid",
]


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: the axis value and the resulting metrics."""

    axis: str
    value: object
    metrics: RankingMetrics


def embedding_size_sweep(
    pipeline: ExperimentPipeline,
    sizes: Sequence[int] = (16, 32, 64, 128),
) -> list[SweepPoint]:
    """Figure E4: accuracy as a function of the feature size M."""
    points = []
    for dim in sizes:
        result = pipeline.run_cell(pipeline.base.with_embedding_dim(dim))
        points.append(SweepPoint("M", dim, result.metrics))
    return points


def k_sweep(
    pipeline: ExperimentPipeline,
    ks: Sequence[int] = (3, 5, 8, 10),
) -> list[SweepPoint]:
    """Figure E5: accuracy as a function of the candidate count k."""
    points = []
    for k in ks:
        result = pipeline.run_cell(pipeline.base.with_k(k))
        points.append(SweepPoint("k", k, result.metrics))
    return points


def diversity_threshold_sweep(
    pipeline: ExperimentPipeline,
    thresholds: Sequence[float] = (0.5, 0.6, 0.7, 0.8, 0.9),
) -> list[SweepPoint]:
    """Figure E6: accuracy as a function of the D-TkDI threshold ξ."""
    points = []
    for threshold in thresholds:
        result = pipeline.run_cell(
            pipeline.base.with_diversity_threshold(threshold))
        points.append(SweepPoint("xi", threshold, result.metrics))
    return points


def training_fraction_sweep(
    pipeline: ExperimentPipeline,
    fractions: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
) -> list[SweepPoint]:
    """Figure E8: accuracy as a function of the training-set size.

    Each point trains on a prefix of the (shuffled) training queries and
    evaluates on the shared test set.
    """
    from repro.core.trainer import Trainer
    from repro.core.variants import build_pathrank
    from repro.rng import make_rng, spawn

    base = pipeline.base
    train_queries, test_queries = pipeline.queries(base.training_data)
    points = []
    for fraction in fractions:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fractions must be in (0, 1], got {fraction}")
        count = max(4, int(round(fraction * len(train_queries))))
        subset = train_queries[:count]
        rng = make_rng(base.seed + int(fraction * 1000))
        model_rng, trainer_rng = spawn(rng, 2)
        n_val = max(1, len(subset) // 8)
        model = build_pathrank(
            base.variant,
            num_vertices=pipeline.network.num_vertices,
            embedding_dim=base.embedding_dim,
            embedding_matrix=pipeline.embedding(base.embedding_dim),
            hidden_size=base.hidden_size,
            fc_hidden=base.fc_hidden,
            dropout=base.dropout,
            pooling=base.pooling,
            rng=model_rng,
        )
        Trainer(model, base.trainer, rng=trainer_rng).fit(
            subset[n_val:], subset[:n_val])
        points.append(SweepPoint("train_fraction", fraction,
                                 evaluate_scorer(model, test_queries)))
    return points


def baseline_comparison(
    pipeline: ExperimentPipeline,
) -> dict[str, RankingMetrics]:
    """Experiment E7: PathRank vs the classic ranking criteria.

    Quantifies the paper's motivating claim: ranking candidates by
    length, travel time, or enumeration order does not reproduce driver
    preference.
    """
    train_queries, test_queries = pipeline.queries(pipeline.base.training_data)
    results: dict[str, RankingMetrics] = {}

    pathrank = pipeline.run_cell(pipeline.base)
    results["PathRank"] = pathrank.metrics

    baselines: list[Baseline] = [
        LengthRatioBaseline(),
        TravelTimeRatioBaseline(),
        GenerationOrderBaseline(),
        FeatureRidgeBaseline(),
    ]
    for baseline in baselines:
        baseline.fit(train_queries)
        results[baseline.name] = evaluate_scorer(baseline, test_queries)
    return results


def ablation_grid(pipeline: ExperimentPipeline) -> dict[str, RankingMetrics]:
    """Experiment E11: which design pieces matter.

    Grid: PR-A2 (full) / PR-A1 (frozen B) / no node2vec init /
    unidirectional GRU / final-state pooling / pure pointwise loss.
    """
    from repro.core.trainer import Trainer
    from repro.core.variants import Variant, build_pathrank
    from repro.rng import make_rng, spawn

    base = pipeline.base
    train_queries, test_queries = pipeline.queries(base.training_data)
    n_val = max(1, len(train_queries) // 8)
    validation, training = train_queries[:n_val], train_queries[n_val:]

    def run(tag: str, *, variant=Variant.PR_A2, matrix="node2vec",
            bidirectional=True, pooling=None, trainer_config=None):
        rng = make_rng(base.seed + abs(hash(tag)) % 10_000)
        model_rng, trainer_rng = spawn(rng, 2)
        embedding = (pipeline.embedding(base.embedding_dim)
                     if matrix == "node2vec" else None)
        model = build_pathrank(
            variant,
            num_vertices=pipeline.network.num_vertices,
            embedding_dim=base.embedding_dim,
            embedding_matrix=embedding,
            hidden_size=base.hidden_size,
            fc_hidden=base.fc_hidden,
            dropout=base.dropout,
            bidirectional=bidirectional,
            pooling=pooling or base.pooling,
            rng=model_rng,
        )
        Trainer(model, trainer_config or base.trainer, rng=trainer_rng).fit(
            training, validation)
        return evaluate_scorer(model, test_queries)

    results = {
        "PR-A2 (full)": run("full"),
        "PR-A1 (frozen B)": run("frozen", variant=Variant.PR_A1),
        "no node2vec init": run("random-init", matrix=None),
        "unidirectional GRU": run("uni", bidirectional=False),
        "final-state pooling": run("final-pool", pooling="final"),
        "attention pooling": run("attention-pool", pooling="attention"),
        "pointwise loss only": run(
            "pointwise",
            trainer_config=replace(base.trainer, rank_weight=0.0),
        ),
        "multi-task (PR-M)": run("multitask", variant=Variant.PR_M),
    }
    return results
