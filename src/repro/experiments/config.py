"""Experiment configurations.

One frozen dataclass fixes everything an experiment needs — network,
fleet, candidate generation, model, and training — so that every number
in EXPERIMENTS.md regenerates from a single seed.  ``paper()`` is the
headline configuration behind the Table 1/2 reproduction;  ``quick()``
is a scaled-down variant the benchmark suite uses to keep wall-clock
reasonable while preserving every qualitative shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.trainer import TrainerConfig
from repro.core.variants import Variant
from repro.ranking.training_data import Strategy, TrainingDataConfig
from repro.trajectories.generator import FleetConfig

__all__ = ["NetworkConfig", "ExperimentConfig"]


@dataclass(frozen=True)
class NetworkConfig:
    """Parameters of the synthetic region network."""

    num_towns: int = 5
    town_size_range: tuple[int, int] = (4, 6)
    region_extent: float = 30_000.0
    seed: int = 11

    def build(self):
        from repro.graph.builders import north_jutland_like

        return north_jutland_like(
            num_towns=self.num_towns,
            town_size_range=self.town_size_range,
            region_extent=self.region_extent,
            seed=self.seed,
        )


@dataclass(frozen=True)
class ExperimentConfig:
    """Complete specification of one PathRank experiment."""

    name: str = "paper"
    network: NetworkConfig = field(default_factory=NetworkConfig)
    fleet: FleetConfig = field(default_factory=lambda: FleetConfig(
        num_drivers=60, trips_per_driver=12, num_od_hotspots=60))
    training_data: TrainingDataConfig = field(default_factory=TrainingDataConfig)
    trainer: TrainerConfig = field(default_factory=lambda: TrainerConfig(
        epochs=60, patience=12))
    variant: Variant = Variant.PR_A2
    embedding_dim: int = 64
    hidden_size: int = 64
    fc_hidden: int = 32
    dropout: float = 0.1
    pooling: str = "mean"
    train_fraction: float = 0.75
    seed: int = 0

    # ------------------------------------------------------------------
    # Named presets
    # ------------------------------------------------------------------
    @classmethod
    def paper(cls) -> "ExperimentConfig":
        """The headline configuration behind Tables 1 and 2."""
        return cls(name="paper")

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """Scaled-down preset for the benchmark suite (minutes, not hours)."""
        return cls(
            name="quick",
            network=NetworkConfig(num_towns=4, town_size_range=(3, 5), seed=11),
            fleet=FleetConfig(num_drivers=32, trips_per_driver=10,
                              num_od_hotspots=40),
            trainer=TrainerConfig(epochs=30, patience=8),
            embedding_dim=32,
            hidden_size=32,
            fc_hidden=16,
        )

    @classmethod
    def smoke(cls) -> "ExperimentConfig":
        """Tiny preset for integration tests (seconds)."""
        return cls(
            name="smoke",
            network=NetworkConfig(num_towns=3, town_size_range=(3, 4), seed=7),
            fleet=FleetConfig(num_drivers=8, trips_per_driver=5,
                              num_od_hotspots=12, min_trip_distance=1000.0),
            training_data=TrainingDataConfig(k=3, examine_limit=60),
            trainer=TrainerConfig(epochs=6, patience=6),
            embedding_dim=16,
            hidden_size=16,
            fc_hidden=8,
        )

    # ------------------------------------------------------------------
    # Derivation helpers (the table/figure axes)
    # ------------------------------------------------------------------
    def with_strategy(self, strategy: Strategy) -> "ExperimentConfig":
        return replace(self, training_data=replace(self.training_data,
                                                   strategy=strategy))

    def with_embedding_dim(self, dim: int) -> "ExperimentConfig":
        return replace(self, embedding_dim=dim)

    def with_variant(self, variant: Variant) -> "ExperimentConfig":
        return replace(self, variant=variant)

    def with_k(self, k: int) -> "ExperimentConfig":
        return replace(self, training_data=replace(self.training_data, k=k))

    def with_diversity_threshold(self, threshold: float) -> "ExperimentConfig":
        return replace(self, training_data=replace(self.training_data,
                                                   diversity_threshold=threshold))
