"""Fixed-width table rendering, laid out like the poster's tables."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "format_metrics_row"]


def format_metrics_row(values: Sequence[object]) -> list[str]:
    """Format one row: floats to 4 decimals, everything else via str."""
    row: list[str] = []
    for value in values:
        if isinstance(value, float):
            row.append(f"{value:.4f}")
        else:
            row.append(str(value))
    return row


def render_table(
    title: str,
    header: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """A fixed-width text table (the poster's layout, ASCII)."""
    formatted = [format_metrics_row(row) for row in rows]
    widths = [len(h) for h in header]
    for row in formatted:
        if len(row) != len(header):
            raise ValueError(
                f"row has {len(row)} cells, header has {len(header)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    separator = "-+-".join("-" * width for width in widths)
    body = "\n".join(line(row) for row in formatted)
    return f"{title}\n{line(header)}\n{separator}\n{body}"
