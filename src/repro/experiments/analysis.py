"""Candidate-set analysis: why D-TkDI training data is better.

The paper's central data insight is that plain top-k shortest paths are
near-duplicates, so a regression model trained on them sees almost no
variation in ground-truth scores.  This module measures that claim
directly: pairwise candidate diversity, ground-truth score dispersion,
and trajectory coverage per strategy.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.graph.similarity import SimilarityFunction, weighted_jaccard
from repro.ranking.training_data import RankingQuery

__all__ = ["CandidateSetStats", "analyse_queries", "compare_strategies"]


@dataclass(frozen=True)
class CandidateSetStats:
    """Aggregate statistics of one strategy's candidate sets."""

    num_queries: int
    mean_candidates: float
    #: mean pairwise weighted-Jaccard between candidates of one query —
    #: low = diverse training data (the D-TkDI design goal).
    mean_pairwise_similarity: float
    #: standard deviation of ground-truth scores within a query — the
    #: label variation a regression model can actually learn from.
    mean_score_spread: float
    #: mean of each query's best candidate score — how well the
    #: candidate set covers what the driver actually drove.
    mean_best_score: float
    #: fraction of queries whose best candidate reaches >= 0.8 overlap.
    coverage_at_80: float

    def as_row(self) -> list[float]:
        return [self.mean_candidates, self.mean_pairwise_similarity,
                self.mean_score_spread, self.mean_best_score,
                self.coverage_at_80]


def analyse_queries(
    queries: Sequence[RankingQuery],
    similarity: SimilarityFunction = weighted_jaccard,
) -> CandidateSetStats:
    """Compute :class:`CandidateSetStats` for a query set."""
    if not queries:
        raise ValueError("cannot analyse an empty query set")
    pairwise: list[float] = []
    spreads: list[float] = []
    bests: list[float] = []
    sizes: list[int] = []
    for query in queries:
        sizes.append(len(query))
        scores = np.array(query.scores())
        spreads.append(float(scores.std()))
        bests.append(float(scores.max()))
        for a, b in itertools.combinations(query.paths(), 2):
            pairwise.append(similarity(a, b))
    return CandidateSetStats(
        num_queries=len(queries),
        mean_candidates=float(np.mean(sizes)),
        mean_pairwise_similarity=float(np.mean(pairwise)) if pairwise else 1.0,
        mean_score_spread=float(np.mean(spreads)),
        mean_best_score=float(np.mean(bests)),
        coverage_at_80=float(np.mean([b >= 0.8 for b in bests])),
    )


def compare_strategies(
    queries_by_strategy: dict[str, Sequence[RankingQuery]],
) -> dict[str, CandidateSetStats]:
    """Per-strategy stats table (used by the data-quality benchmark)."""
    if not queries_by_strategy:
        raise ValueError("no strategies to compare")
    return {name: analyse_queries(queries)
            for name, queries in queries_by_strategy.items()}
