"""Candidate-set analysis: why D-TkDI training data is better.

The paper's central data insight is that plain top-k shortest paths are
near-duplicates, so a regression model trained on them sees almost no
variation in ground-truth scores.  This module measures that claim
directly: pairwise candidate diversity, ground-truth score dispersion,
trajectory coverage, and route optimality (stretch) per strategy.

The stretch statistics need the true shortest-path distance of every
query, which would be one Dijkstra per query if computed naively.
Instead the sweeps are batched: all unique query sources go through a
single :meth:`~repro.graph.csr.CSRGraph.multi_source` call (one scipy
``dijkstra`` dispatch), the same batched entry point the ALT landmark
table builds use.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.graph.csr import csr_for
from repro.graph.similarity import SimilarityFunction, weighted_jaccard
from repro.ranking.training_data import RankingQuery

__all__ = ["CandidateSetStats", "analyse_queries", "compare_strategies",
           "query_shortest_distances"]


@dataclass(frozen=True)
class CandidateSetStats:
    """Aggregate statistics of one strategy's candidate sets."""

    num_queries: int
    mean_candidates: float
    #: mean pairwise weighted-Jaccard between candidates of one query —
    #: low = diverse training data (the D-TkDI design goal).
    mean_pairwise_similarity: float
    #: standard deviation of ground-truth scores within a query — the
    #: label variation a regression model can actually learn from.
    mean_score_spread: float
    #: mean of each query's best candidate score — how well the
    #: candidate set covers what the driver actually drove.
    mean_best_score: float
    #: fraction of queries whose best candidate reaches >= 0.8 overlap.
    coverage_at_80: float
    #: mean length stretch (candidate length / shortest-path length)
    #: over *all* candidates — how far from optimal the set ranges.
    mean_candidate_stretch: float
    #: mean stretch of each query's best-scoring candidate — the detour
    #: cost of recommending what the driver actually prefers.
    mean_best_stretch: float

    def as_row(self) -> list[float]:
        return [self.mean_candidates, self.mean_pairwise_similarity,
                self.mean_score_spread, self.mean_best_score,
                self.coverage_at_80, self.mean_candidate_stretch,
                self.mean_best_stretch]


def query_shortest_distances(queries: Sequence[RankingQuery]) -> np.ndarray:
    """Shortest-path length of every query, in one batched SSSP sweep.

    All unique sources share a single
    :meth:`~repro.graph.csr.CSRGraph.multi_source` call; the per-query
    distance is then a table lookup.  Unreachable targets yield
    ``numpy.inf`` (candidate generation normally guarantees
    reachability, but a mutated network may disagree).
    """
    if not queries:
        return np.zeros(0)
    network = queries[0].trajectory_path.network
    kernel = csr_for(network)
    sources = sorted({query.source for query in queries})
    rows = {source: i for i, source in enumerate(sources)}
    table = kernel.multi_source(sources)
    return np.array([
        table[rows[query.source], kernel.index_of(query.target)]
        for query in queries
    ])


def analyse_queries(
    queries: Sequence[RankingQuery],
    similarity: SimilarityFunction = weighted_jaccard,
) -> CandidateSetStats:
    """Compute :class:`CandidateSetStats` for a query set."""
    if not queries:
        raise ValueError("cannot analyse an empty query set")
    pairwise: list[float] = []
    spreads: list[float] = []
    bests: list[float] = []
    sizes: list[int] = []
    candidate_stretches: list[float] = []
    best_stretches: list[float] = []
    optimal = query_shortest_distances(queries)
    for query, shortest in zip(queries, optimal):
        sizes.append(len(query))
        scores = np.array(query.scores())
        spreads.append(float(scores.std()))
        bests.append(float(scores.max()))
        for a, b in itertools.combinations(query.paths(), 2):
            pairwise.append(similarity(a, b))
        if np.isfinite(shortest) and shortest > 0.0:
            stretches = [candidate.path.length / shortest
                         for candidate in query.candidates]
            candidate_stretches.extend(stretches)
            best = query.best_candidate()
            best_stretches.append(best.path.length / shortest)
    return CandidateSetStats(
        num_queries=len(queries),
        mean_candidates=float(np.mean(sizes)),
        mean_pairwise_similarity=float(np.mean(pairwise)) if pairwise else 1.0,
        mean_score_spread=float(np.mean(spreads)),
        mean_best_score=float(np.mean(bests)),
        coverage_at_80=float(np.mean([b >= 0.8 for b in bests])),
        mean_candidate_stretch=(float(np.mean(candidate_stretches))
                                if candidate_stretches else 1.0),
        mean_best_stretch=(float(np.mean(best_stretches))
                           if best_stretches else 1.0),
    )


def compare_strategies(
    queries_by_strategy: dict[str, Sequence[RankingQuery]],
) -> dict[str, CandidateSetStats]:
    """Per-strategy stats table (used by the data-quality benchmark)."""
    if not queries_by_strategy:
        raise ValueError("no strategies to compare")
    return {name: analyse_queries(queries)
            for name, queries in queries_by_strategy.items()}
