"""Experiment harness: configs, pipeline, tables, figure sweeps."""

from repro.experiments.config import ExperimentConfig, NetworkConfig
from repro.experiments.figures import (
    SweepPoint,
    ablation_grid,
    baseline_comparison,
    diversity_threshold_sweep,
    embedding_size_sweep,
    k_sweep,
    training_fraction_sweep,
)
from repro.experiments.pipeline import CellResult, ExperimentPipeline
from repro.experiments.reporting import format_metrics_row, render_table
from repro.experiments.tables import (
    TableRow,
    render_strategy_table,
    strategy_table,
    table1,
    table2,
)

__all__ = [
    "ExperimentConfig",
    "NetworkConfig",
    "ExperimentPipeline",
    "CellResult",
    "TableRow",
    "strategy_table",
    "table1",
    "table2",
    "render_strategy_table",
    "render_table",
    "format_metrics_row",
    "SweepPoint",
    "embedding_size_sweep",
    "k_sweep",
    "diversity_threshold_sweep",
    "training_fraction_sweep",
    "baseline_comparison",
    "ablation_grid",
]
