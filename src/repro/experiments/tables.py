"""Regenerate Table 1 and Table 2 of the paper.

* **Table 1** — training-data strategies (TkDI vs D-TkDI) × embedding
  size M (64, 128) under **PR-A1** (frozen node2vec embeddings);
* **Table 2** — the same grid under **PR-A2** (fine-tuned embeddings).

Each returns the rows in the poster's layout: Strategy, M, MAE, MARE,
τ, ρ.  The expected qualitative shape (asserted by the benchmarks):
D-TkDI beats TkDI, larger M does not hurt, and every Table 2 row beats
its Table 1 counterpart.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.variants import Variant
from repro.experiments.pipeline import CellResult, ExperimentPipeline
from repro.experiments.reporting import render_table
from repro.ranking.training_data import Strategy

__all__ = ["TableRow", "strategy_table", "table1", "table2", "render_strategy_table"]

#: The embedding sizes of the poster's tables.
PAPER_EMBEDDING_SIZES = (64, 128)


@dataclass(frozen=True)
class TableRow:
    """One row of a strategy × M table."""

    strategy: str
    embedding_dim: int
    mae: float
    mare: float
    tau: float
    rho: float

    def as_cells(self) -> list[object]:
        return [self.strategy, self.embedding_dim, self.mae, self.mare,
                self.tau, self.rho]


def strategy_table(
    pipeline: ExperimentPipeline,
    variant: Variant,
    embedding_sizes: tuple[int, ...] = PAPER_EMBEDDING_SIZES,
) -> list[TableRow]:
    """The strategies × M grid for one variant (the body of a table)."""
    rows: list[TableRow] = []
    for strategy in (Strategy.TKDI, Strategy.D_TKDI):
        for dim in embedding_sizes:
            config = (pipeline.base
                      .with_strategy(strategy)
                      .with_embedding_dim(dim)
                      .with_variant(variant))
            result: CellResult = pipeline.run_cell(config)
            rows.append(TableRow(
                strategy=strategy.value,
                embedding_dim=dim,
                mae=result.metrics.mae,
                mare=result.metrics.mare,
                tau=result.metrics.tau,
                rho=result.metrics.rho,
            ))
    return rows


def table1(
    pipeline: ExperimentPipeline,
    embedding_sizes: tuple[int, ...] = PAPER_EMBEDDING_SIZES,
) -> list[TableRow]:
    """Table 1: training-data strategies under PR-A1."""
    return strategy_table(pipeline, Variant.PR_A1, embedding_sizes)


def table2(
    pipeline: ExperimentPipeline,
    embedding_sizes: tuple[int, ...] = PAPER_EMBEDDING_SIZES,
) -> list[TableRow]:
    """Table 2: training-data strategies under PR-A2."""
    return strategy_table(pipeline, Variant.PR_A2, embedding_sizes)


def render_strategy_table(title: str, rows: list[TableRow]) -> str:
    return render_table(
        title,
        header=["Strategies", "M", "MAE", "MARE", "tau", "rho"],
        rows=[row.as_cells() for row in rows],
    )
