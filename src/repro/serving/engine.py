"""The concurrent serving front door: deadline-batched cross-request coalescing.

:class:`~repro.serving.service.RankingService.rank_batch` only realises
the fused kernel's batched-scoring win when one caller hands it a
pre-assembled batch; independent concurrent queries each pay the
small-batch path.  :class:`ServingEngine` closes that gap: callers
:meth:`submit` single requests from any thread and block on a
:class:`EngineTicket`, while inside the engine

* **worker threads** run the admission and candidate-generation stages
  of the shared pipeline (cache-aware, so hotspot traffic is cheap), and
* a **deadline flusher** coalesces prepared requests into one scoring
  flush per *(shard, model snapshot)* group — triggered the moment
  ``max_batch_size`` paths accumulate, or ``flush_deadline_ms`` after
  the oldest pending request arrived, whichever comes first.
  ``flush_deadline_ms="auto"`` replaces the fixed deadline with an
  :class:`AdaptiveFlushPolicy` that re-derives it every flush cycle
  from the live arrival rate and per-path scoring cost.  On a
  sharded service each flush scores every shard's group through that
  shard's own scorer/caches, and the occupancy gauge keeps a per-shard
  breakdown alongside the whole-flush numbers.

Because both front doors drive the *same* stage methods and the masked
recurrence makes batched scores identical to sequential ones, an
engine's responses are element-wise identical to the synchronous
service's on the same request stream — coalescing buys throughput, not
different answers.

The optional warm-up hook replays a recorded hotspot mix through the
candidate/score caches before the engine reports ready, so a freshly
deployed engine doesn't serve its first minutes off a cold cache.

Usage::

    engine = ServingEngine(service, concurrency=8, flush_deadline_ms=2.0,
                           warmup=yesterdays_hotspot_mix)
    with engine:                      # ready once warm-up finished
        responses = engine.rank_batch(requests)   # or submit()/wait()
    print(engine.stats()["engine"]["occupancy"])
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Sequence

from repro.errors import DeadlineExceeded, ServingError
from repro.serving.instrumentation import OccupancyTracker, shard_label
from repro.serving.pipeline import QueryState
from repro.serving.service import RankingService, RankRequest, RankResponse

__all__ = ["AdaptiveFlushPolicy", "EngineTicket", "ServingEngine"]

#: Slack added on top of a request's deadline budget when
#: :meth:`EngineTicket.result` derives its wait timeout: the pipeline's
#: own assembly-time expiry check needs a moment to produce the
#: structured deadline response, and the waiter should collect *that*
#: rather than racing it.
RESULT_GRACE_S = 0.5


class AdaptiveFlushPolicy:
    """Continuously derives the flush deadline from live traffic.

    A fixed ``flush_deadline_ms`` is a compromise: too short and quiet
    periods flush tiny batches (wasting the fused kernel's batch
    dimension), too long and busy periods park requests pointlessly
    (a full batch would have flushed by *size* sooner anyway).  This
    policy computes, each flusher wake-up::

        deadline = clamp(min(t_fill_ms, batch_cost_ms), MIN_MS, MAX_MS)

    where ``t_fill_ms`` estimates how long a full ``max_batch_size``
    batch takes to accumulate at the observed request arrival rate and
    paths-per-request (waiting longer than that buys nothing — the size
    trigger fires first), and ``batch_cost_ms`` is the estimated cost
    of scoring a full batch (waiting longer than the work the wait
    amortises just adds latency).  Arrival times come from a sliding
    window of :meth:`note_submit` stamps; the per-path scoring cost is
    an EWMA over measured flushes (:meth:`note_flush`), bootstrapped
    from the fused kernel's cumulative profile
    (``kernel.scoring.wall_s / paths_scored``) via ``cost_probe`` until
    the first flush lands.  With no signal at all the deadline rests at
    ``DEFAULT_MS`` — the historical fixed default.
    """

    MIN_MS = 0.25
    MAX_MS = 25.0
    DEFAULT_MS = 2.0
    WINDOW = 128
    #: EWMA smoothing for paths-per-request and per-path cost.
    ALPHA = 0.2

    def __init__(self, max_batch_size: int, cost_probe=None) -> None:
        self.max_batch_size = max_batch_size
        self._cost_probe = cost_probe
        self._lock = threading.Lock()
        self._arrivals: deque[float] = deque(maxlen=self.WINDOW)
        self._paths_per_request: float | None = None
        self._cost_per_path_ms: float | None = None
        self._flushes = 0

    def note_submit(self) -> None:
        with self._lock:
            self._arrivals.append(time.perf_counter())

    def note_flush(self, requests: int, paths: int, wall_s: float) -> None:
        if requests < 1:
            return
        per_request = paths / requests
        per_path_ms = (wall_s / paths) * 1000.0 if paths else None
        with self._lock:
            self._flushes += 1
            self._paths_per_request = per_request \
                if self._paths_per_request is None \
                else (1 - self.ALPHA) * self._paths_per_request \
                + self.ALPHA * per_request
            if per_path_ms is not None:
                self._cost_per_path_ms = per_path_ms \
                    if self._cost_per_path_ms is None \
                    else (1 - self.ALPHA) * self._cost_per_path_ms \
                    + self.ALPHA * per_path_ms

    def _probe_cost_ms(self) -> float | None:
        if self._cost_probe is None:
            return None
        try:
            profile = self._cost_probe() or {}
        except Exception:  # noqa: BLE001 - a probe must not stop flushing
            return None
        paths = profile.get("paths_scored") or 0
        wall_s = profile.get("wall_s") or 0.0
        return (wall_s / paths) * 1000.0 if paths else None

    def current_deadline_ms(self) -> float:
        with self._lock:
            arrivals = list(self._arrivals)
            per_request = self._paths_per_request
            cost_ms = self._cost_per_path_ms
        if cost_ms is None:
            cost_ms = self._probe_cost_ms()
        bounds: list[float] = []
        if len(arrivals) >= 2:
            span = arrivals[-1] - arrivals[0]
            if span > 0.0:
                rate_hz = (len(arrivals) - 1) / span
                paths_per_s = rate_hz * (per_request or 1.0)
                if paths_per_s > 0.0:
                    bounds.append(self.max_batch_size / paths_per_s * 1000.0)
        if cost_ms is not None:
            bounds.append(cost_ms * self.max_batch_size)
        if not bounds:
            return self.DEFAULT_MS
        return min(max(min(bounds), self.MIN_MS), self.MAX_MS)

    def as_dict(self) -> dict[str, object]:
        with self._lock:
            arrivals = list(self._arrivals)
            per_request = self._paths_per_request
            cost_ms = self._cost_per_path_ms
            flushes = self._flushes
        rate_hz = 0.0
        if len(arrivals) >= 2:
            span = arrivals[-1] - arrivals[0]
            rate_hz = (len(arrivals) - 1) / span if span > 0.0 else 0.0
        return {
            "current_ms": self.current_deadline_ms(),
            "min_ms": self.MIN_MS,
            "max_ms": self.MAX_MS,
            "arrival_rate_hz": rate_hz,
            "paths_per_request": per_request or 0.0,
            "cost_per_path_ms": cost_ms or 0.0,
            "flushes_measured": flushes,
        }


class EngineTicket:
    """Handle for one in-flight engine request.

    ``wait`` blocks until the pipeline finished the request and returns
    its :class:`RankResponse`; ``done`` polls without blocking.

    Response assembly (ranking + metrics) runs lazily in the first
    thread that calls :meth:`wait` rather than in the scoring thread —
    the flush's critical path stays short, so the next batch starts
    scoring while the woken clients assemble their own responses in
    parallel.
    """

    __slots__ = ("request", "submitted", "completed", "state", "_service",
                 "_event", "_finalize")

    def __init__(self, request: RankRequest, service) -> None:
        self.request = request
        self.submitted = time.perf_counter()
        self.completed: float | None = None
        self.state: QueryState | None = None
        self._service = service
        self._event = threading.Event()
        self._finalize = threading.Lock()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: float | None = None) -> RankResponse:
        if not self._event.wait(timeout):
            raise ServingError(
                f"request {self.request.source}->{self.request.target} "
                f"not answered within {timeout}s"
            )
        return self._collect()

    def result(self, timeout: float | None = None) -> RankResponse:
        """Deadline-aware :meth:`wait`: never blocks past the budget.

        With no explicit ``timeout`` the wait is derived from the
        request's deadline (``request.deadline_ms``, falling back to the
        service's ``resilience.deadline_ms``) plus a small grace so the
        pipeline's own structured deadline response wins the race when
        it can.  Raises :class:`~repro.errors.DeadlineExceeded` —
        carrying the service's ``retry_after_ms`` hint — if the response
        is still not ready; a request with no deadline anywhere blocks
        like :meth:`wait`.
        """
        if timeout is None:
            budget_ms = self.request.deadline_ms
            if budget_ms is None:
                budget_ms = self._service.resilience.deadline_ms
            if budget_ms is not None:
                elapsed = time.perf_counter() - self.submitted
                timeout = max(0.0, budget_ms / 1000.0 - elapsed) \
                    + RESULT_GRACE_S
        if not self._event.wait(timeout):
            raise DeadlineExceeded(
                f"request {self.request.source}->{self.request.target} "
                f"not answered within {timeout:g}s",
                retry_after_ms=self._service.resilience.retry_after_ms)
        return self._collect()

    def _collect(self) -> RankResponse:
        state = self.state
        if state.response is None:
            with self._finalize:
                if state.response is None:
                    # Latency is pinned to when the pipeline finished,
                    # not to when this waiter drained the ticket.
                    self._service.assemble(state, completed=self.completed)
        return state.response

    def _resolve(self) -> None:
        self.completed = time.perf_counter()
        self._event.set()


class ServingEngine:
    """Concurrent front door over a :class:`RankingService` pipeline."""

    def __init__(self, service: RankingService, *,
                 concurrency: int | None = None,
                 flush_deadline_ms: float | None = None,
                 max_batch_size: int | None = None,
                 warmup: Sequence[RankRequest] | None = None,
                 start: bool = True) -> None:
        config = service.config
        self.service = service
        self.concurrency = concurrency if concurrency is not None \
            else config.concurrency
        self.flush_deadline_ms = flush_deadline_ms \
            if flush_deadline_ms is not None else config.flush_deadline_ms
        self.max_batch_size = max_batch_size if max_batch_size is not None \
            else config.max_batch_size
        if self.concurrency < 1:
            raise ServingError(
                f"concurrency must be >= 1, got {self.concurrency}")
        if self.max_batch_size < 1:
            raise ServingError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}")
        #: Live deadline derivation under ``flush_deadline_ms="auto"``;
        #: ``None`` keeps the fixed-deadline flusher byte-for-byte.
        self.adaptive: AdaptiveFlushPolicy | None = None
        if isinstance(self.flush_deadline_ms, str):
            if self.flush_deadline_ms != "auto":
                raise ServingError(
                    f"flush_deadline_ms must be a number or 'auto', "
                    f"got {self.flush_deadline_ms!r}")
            self.adaptive = AdaptiveFlushPolicy(
                self.max_batch_size,
                cost_probe=service._scoring_kernel_view)
        elif self.flush_deadline_ms < 0.0:
            raise ServingError(
                f"flush_deadline_ms must be >= 0, got {self.flush_deadline_ms}"
            )
        self._warmup = list(warmup) if warmup else []
        self.warmed_up = 0
        self.occupancy = OccupancyTracker()
        # The engine is part of the service's telemetry plane: its flush
        # occupancy exports under engine.occupancy.* (a rebuilt engine
        # over the same service simply takes the section over).
        service.metrics.register_callback("engine.occupancy",
                                          self.occupancy.as_dict)

        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)   # inbox activity
        self._flush = threading.Condition(self._lock)  # pending activity
        self._inbox: deque[EngineTicket] = deque()
        #: Every accepted-but-unanswered ticket: close() fails whatever
        #: is left here rather than abandoning its waiters.
        self._outstanding: set[EngineTicket] = set()
        self._pending: list[EngineTicket] = []
        self._pending_paths = 0
        self._pending_since: float | None = None
        self._stopping = False
        self._workers: list[threading.Thread] = []
        self._flusher_thread: threading.Thread | None = None
        self._ready = threading.Event()
        if start:
            self.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServingEngine":
        """Warm the caches, spin up the workers, and report ready."""
        if self._workers:
            return self
        if self._stopping:
            raise ServingError("engine already closed; build a new one")
        if self._warmup:
            self.warmed_up = self.service.warm_up(self._warmup)
        for number in range(self.concurrency):
            thread = threading.Thread(target=self._worker, daemon=True,
                                      name=f"serving-worker-{number}")
            thread.start()
            self._workers.append(thread)
        self._flusher_thread = threading.Thread(
            target=self._flusher, daemon=True, name="serving-flusher")
        self._flusher_thread.start()
        self._ready.set()
        return self

    @property
    def ready(self) -> bool:
        """Whether warm-up completed and the workers are accepting load."""
        return self._ready.is_set() and not self._stopping

    def wait_ready(self, timeout: float | None = None) -> bool:
        return self._ready.wait(timeout)

    def close(self, timeout: float | None = None) -> None:
        """Stop accepting requests, drain in-flight ones, join threads.

        Everything submitted before the close is still answered: the
        workers finish the inbox first, then whatever they parked for
        scoring is flushed here before the flusher is released.  Any
        ticket that is *still* unanswered at the end — a thread stuck in
        a hung scorer, a straggler the ``timeout``-bounded joins gave up
        on — is failed with a structured ``engine_closed`` error instead
        of being abandoned, so no waiter ever blocks on a closed engine.
        ``timeout`` bounds the total time spent joining threads
        (``None`` = wait for a clean drain).
        """
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
            self._work.notify_all()
        give_up_at = None if timeout is None \
            else time.perf_counter() + timeout
        joined = True
        for thread in self._workers:
            thread.join(self._join_budget(give_up_at))
            joined = joined and not thread.is_alive()
        # Workers are gone; anything they left pending is flushed now so
        # no ticket can be stranded between worker exit and flusher exit.
        with self._lock:
            batch = self._take_pending_locked()
            self._flush.notify_all()
        if batch and joined:
            self._score_batch(batch)
        if self._flusher_thread is not None:
            self._flusher_thread.join(self._join_budget(give_up_at))
            if not self._flusher_thread.is_alive():
                self._flusher_thread = None
        # Fail whatever is still unanswered: inbox stragglers behind a
        # stuck worker, claims a hung thread never released, and (when
        # the joins timed out) the batch we chose not to score above.
        with self._lock:
            leftovers = [ticket for ticket in self._outstanding
                         if not ticket.done]
        for ticket in leftovers:
            self._fail_ticket(
                ticket, "engine closed before the request was answered",
                "engine_closed")
        self._workers.clear()
        self._ready.clear()

    @staticmethod
    def _join_budget(give_up_at: float | None) -> float | None:
        if give_up_at is None:
            return None
        return max(0.0, give_up_at - time.perf_counter())

    def __enter__(self) -> "ServingEngine":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Front door
    # ------------------------------------------------------------------
    def submit(self, request: RankRequest) -> EngineTicket:
        """Enqueue one request; returns immediately with its ticket.

        When the service's ``resilience.max_queue`` bound is set and the
        inbox is full, the request is *shed* instead of enqueued:
        ``shed_policy="reject"`` answers the ticket immediately with a
        structured ``shed`` error (plus a ``retry_after_ms`` hint),
        ``"degrade"`` answers it with the shortest-path fallback
        computed in the caller's thread — bounded work either way, and
        the queue never grows past its bound.
        """
        service = self.service
        if service.faults is not None:
            # Before any bookkeeping: an injected ingress error must not
            # leave a half-submitted ticket behind.
            service.faults.fire("engine.submit")
        if self.adaptive is not None:
            # Shed requests count too: they are demand, and demand is
            # what the arrival-rate estimate models.
            self.adaptive.note_submit()
        ticket = EngineTicket(request, service)
        shed = False
        with self._lock:
            if self._stopping:
                raise ServingError("engine is closed; no new requests")
            if not self._workers:
                raise ServingError("engine not started; call start() first")
            max_queue = service.resilience.max_queue
            if max_queue > 0 and len(self._inbox) >= max_queue:
                shed = True
            else:
                self._inbox.append(ticket)
                self._outstanding.add(ticket)
                self._work.notify()
        if shed:
            self._shed_ticket(ticket)
        return ticket

    def _shed_ticket(self, ticket: EngineTicket) -> None:
        """Answer a shed request immediately under the configured policy."""
        service = self.service
        state = QueryState(request=ticket.request)
        state.started = ticket.submitted
        state.error_code = "shed"
        if service.resilience.shed_policy == "degrade":
            # Degrade-to-shortest-path: no model work is queued, the
            # fallback runs in the caller's thread at assembly.
            state.degraded = "admission queue full; degraded to fallback"
            service.res_counters.bump("shed_degraded")
        else:
            state.error = ("admission queue full; request shed "
                           "(retry after backoff)")
            service.res_counters.bump("shed_rejected")
        ticket.state = state
        ticket._resolve()

    def rank(self, request: RankRequest,
             timeout: float | None = None) -> RankResponse:
        """Submit one request and block for its response."""
        return self.submit(request).wait(timeout)

    def rank_batch(self, requests: Sequence[RankRequest],
                   timeout: float | None = None) -> list[RankResponse]:
        """Submit many requests at once and block for all responses.

        Unlike the synchronous facade there is no single-batch scoring
        guarantee — the engine re-batches by its own deadline/size
        policy — but responses come back in request order and are
        element-wise identical to the synchronous path.
        """
        tickets = [self.submit(request) for request in requests]
        return [ticket.wait(timeout) for ticket in tickets]

    # ------------------------------------------------------------------
    # Pipeline threads
    # ------------------------------------------------------------------
    #: How many inbox entries one worker wake may claim.  Draining a
    #: chunk amortises the condvar/lock round-trips that otherwise
    #: dominate cache-hit traffic (admission + cached candidates cost
    #: microseconds), while the bound keeps a cold burst spread across
    #: workers instead of serialised behind one.
    ADMISSION_CHUNK = 8

    def _worker(self) -> None:
        service = self.service
        while True:
            with self._lock:
                while not self._inbox and not self._stopping:
                    self._work.wait()
                if not self._inbox:  # stopping and drained
                    return
                count = min(len(self._inbox), self.ADMISSION_CHUNK)
                claimed = [self._inbox.popleft() for _ in range(count)]
                if self._inbox:
                    self._work.notify()  # more work: wake a sibling
            prepared: list[EngineTicket] = []
            for ticket in claimed:
                state = self._prepare_ticket(ticket)
                if state.scorable:
                    prepared.append(ticket)
                else:
                    # Nothing to score (error, no model, or an empty
                    # candidate set): answer immediately.
                    service.assemble(state)
                    self._resolve_ticket(ticket)
            if not prepared:
                continue
            batch: list[EngineTicket] = []
            with self._lock:
                self._pending.extend(prepared)
                self._pending_paths += sum(len(ticket.state.paths)
                                           for ticket in prepared)
                if self._pending_since is None:
                    self._pending_since = time.perf_counter()
                    self._flush.notify()  # wake the deadline clock
                if self._pending_paths >= self.max_batch_size:
                    batch = self._take_pending_locked()
            if batch:
                self._score_batch(batch)

    def _flusher(self) -> None:
        while True:
            # Recomputed every wake-up: under "auto" the policy tracks
            # the live arrival rate and scoring cost, so a traffic burst
            # shortens the deadline within one flush cycle.
            deadline_s = self._current_deadline_ms() / 1000.0
            batch: list[EngineTicket] = []
            with self._lock:
                if self._stopping and self._pending_since is None:
                    # close() flushes the last stragglers itself after
                    # joining the workers, so exiting here is safe.
                    return
                if self._pending_since is None:
                    self._flush.wait()
                    continue
                remaining = self._pending_since + deadline_s \
                    - time.perf_counter()
                if remaining > 0 and not self._stopping:
                    self._flush.wait(timeout=remaining)
                    continue
                batch = self._take_pending_locked()
            if batch:
                self._score_batch(batch)

    def _prepare_ticket(self, ticket: EngineTicket) -> QueryState:
        """Admission + candidate stages, guaranteed not to raise.

        The stage methods already convert per-request library failures
        into error states; the catch-alls here are the engine's last
        line of defence — an unexpected exception must cost one request
        an error response, never a worker thread (a dead worker strands
        every ticket it claimed, and its waiters block forever).
        """
        service = self.service
        picked_up = time.perf_counter()
        try:
            state = service.admit(ticket.request)
        except Exception as exc:  # noqa: BLE001 - deliberate backstop
            state = QueryState(request=ticket.request)
            state.error = str(exc)
        # Queue wait counts toward latency: the clock starts at
        # submission, not at pickup.
        state.started = ticket.submitted
        if state.trace is not None:
            # Rebase the trace origin to the submit time (spans store
            # absolute starts, so already-recorded admit offsets shift
            # consistently) and book the inbox wait as its own stage.
            state.trace.started = ticket.submitted
            state.trace.add("queue_wait", ticket.submitted, picked_up)
        ticket.state = state
        if state.error is None:
            try:
                service.prepare(state)
            except Exception as exc:  # noqa: BLE001 - deliberate backstop
                state.error = str(exc)
        return state

    def _take_pending_locked(self) -> list[EngineTicket]:
        batch, self._pending = self._pending, []
        self._pending_paths = 0
        self._pending_since = None
        return batch

    def _resolve_ticket(self, ticket: EngineTicket) -> None:
        with self._lock:
            self._outstanding.discard(ticket)
        ticket._resolve()

    def _fail_ticket(self, ticket: EngineTicket, message: str,
                     code: str) -> None:
        """Force-terminate an unanswered ticket with a structured error."""
        state = ticket.state
        if state is None:
            state = QueryState(request=ticket.request)
            state.started = ticket.submitted
            ticket.state = state
        if state.response is None:
            state.error = message
            state.error_code = code
            state.active = None
            state.scores = None
        self._resolve_ticket(ticket)

    def _current_deadline_ms(self) -> float:
        """The flush deadline in force right now (fixed or adaptive)."""
        if self.adaptive is not None:
            return self.adaptive.current_deadline_ms()
        return self.flush_deadline_ms

    def _score_batch(self, batch: list[EngineTicket]) -> None:
        states = [ticket.state for ticket in batch]
        score_began = time.perf_counter()
        try:
            if self.service.faults is not None:
                self.service.faults.fire("engine.flush")
            self.service.score_states(states)
        except Exception as exc:  # noqa: BLE001 - deliberate backstop
            # score_states degrades ReproError per request already (and
            # per (shard, snapshot) group, so one shard's poison batch
            # never touches another's); an unexpected exception degrades
            # the whole batch to the fallback instead of killing the
            # scoring thread (which would strand these tickets and stop
            # deadline flushes).
            for state in states:
                if state.scores is None and state.error is None:
                    state.active = None
                    state.degraded = str(exc)
        if self.adaptive is not None:
            self.adaptive.note_flush(
                requests=len(states),
                paths=sum(len(state.paths) for state in states),
                wall_s=time.perf_counter() - score_began)
        groups: dict[str, tuple[int, int]] | None = None
        if self.service.sharded is not None:
            groups = {}
            for state in states:
                label = shard_label(state.shard)
                requests, paths = groups.get(label, (0, 0))
                groups[label] = (requests + 1, paths + len(state.paths))
        self.occupancy.record(
            requests=len(states),
            paths=sum(len(state.paths) for state in states),
            groups=groups,
        )
        # Assembly is deferred to each ticket's waiter (see
        # EngineTicket.wait): releasing the batch here keeps the flush
        # critical path at "score + wake", so the next flush can start
        # while the woken clients build their responses.
        for ticket in batch:
            self._resolve_ticket(ticket)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, object]:
        """The underlying service's stats plus the engine's own gauges."""
        stats = self.service.stats()
        with self._lock:
            queue_depth = len(self._inbox)
            outstanding = len(self._outstanding)
        stats["engine"] = {
            "concurrency": self.concurrency,
            "flush_deadline_ms": self._current_deadline_ms(),
            "max_batch_size": self.max_batch_size,
            "ready": self.ready,
            "warmed_up": self.warmed_up,
            "queue_depth": queue_depth,
            "outstanding": outstanding,
            "occupancy": self.occupancy.as_dict(),
        }
        if self.adaptive is not None:
            stats["engine"]["adaptive_flush"] = self.adaptive.as_dict()
        return stats
