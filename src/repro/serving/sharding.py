"""The serving shard plane: route, cache, and score per region shard.

Every layer below PR 5 silently assumed one :class:`RoadNetwork` and one
model.  This module is the seam that removes that assumption without
rewriting the pipeline: a :class:`GraphPartition` (see
:mod:`repro.graph.partition`) splits the network into region shards, and
the serving stack hangs one *lane* of resources off each shard —

* :class:`ShardRouter` — maps an OD query to its owning shard.
  Same-shard queries route *locally*: the **source** shard's lane owns
  them (cache, model, scorer), and with ``local_candidates=True``
  candidate generation additionally runs on the shard's subnetwork.
  Cross-shard queries route through the boundary-stitched **corridor**
  subgraph of the two endpoint shards, or straight to the full network
  under the ``"fallback"`` policy.
* :class:`ShardedRegistry` — one :class:`ModelRegistry` plus one
  :class:`CandidateCache` / :class:`ScoreCache` per shard, carved out of
  a *global* cache budget (proportional to shard size), so a hot region
  cannot evict a quiet region's working set.  Per-shard registries let
  each region serve its own weights (the paper trains PathRank per
  region); :meth:`ShardedRegistry.shared` instead backs every shard
  with one registry when a single model should serve everywhere.
* :class:`ShardLane` — the per-shard resource bundle
  (registry/caches/scorer) the :class:`~repro.serving.service.
  RankingService` pipeline stages index by ``QueryState.shard``; the
  unsharded service is simply the one-lane degenerate case.

Shard subnetworks preserve global vertex ids, so shard-local paths are
valid paths of the full network and are scored by models trained on the
global vertex space — no id remapping crosses this seam.

Exactness: with the default ``local_candidates=False``, same-shard
queries enumerate on the full network, so their rankings are
element-wise identical to the unsharded service — the shard plane then
scopes *models, caches, and scoring batches*, not reachability.
``local_candidates=True`` trades that guarantee for subnetwork-sized
searches: exact whenever a query's alternatives stay inside its region
(the case geography-aligned partitioning optimises for), approximate
for paths that would detour across the boundary.  Either way a
shard-restricted search that finds **no** path retries on the full
network, so reachability never regresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path as FilePath

from repro.errors import ConfigError, ServingError
from repro.graph.network import RoadNetwork
from repro.graph.partition import GraphPartition
from repro.serving.batching import BatchingScorer
from repro.serving.cache import CandidateCache, ScoreCache, carve_budget
from repro.serving.instrumentation import shard_label
from repro.serving.registry import ActiveModel, ModelRegistry

__all__ = ["ShardRoute", "ShardRouter", "ShardedRegistry", "ShardLane",
           "CROSS_SHARD_POLICIES", "split_budget"]

#: How a cross-shard query picks its candidate-generation graph:
#: ``"corridor"`` stitches the two endpoint shards' subnetworks together
#: through their boundary edges; ``"fallback"`` goes straight to the
#: full network.
CROSS_SHARD_POLICIES = ("corridor", "fallback")


@dataclass(frozen=True)
class ShardRoute:
    """Where one OD query lives on the shard plane.

    ``shard`` is the owning (source) shard — the lane whose caches,
    registry, and scorer serve the request.  ``graph`` is the network
    candidate generation runs on; ``local`` says whether that graph is a
    shard-restricted view (subnetwork or corridor) rather than the full
    network, i.e. whether a no-path result still warrants a full-network
    retry.
    """

    shard: int
    target_shard: int
    graph: RoadNetwork
    local: bool

    @property
    def cross(self) -> bool:
        return self.shard != self.target_shard


class ShardRouter:
    """Maps OD queries onto the shard plane.

    Pure policy over a :class:`GraphPartition`: no caches or models
    live here, so one router can be shared by any number of services.
    """

    def __init__(self, network: RoadNetwork, partition: GraphPartition, *,
                 cross_policy: str = "corridor",
                 local_candidates: bool = False,
                 certify_corridors: bool = False) -> None:
        if cross_policy not in CROSS_SHARD_POLICIES:
            raise ConfigError(
                f"cross_policy must be one of {CROSS_SHARD_POLICIES}, "
                f"got {cross_policy!r}")
        if partition.network is not network:
            raise ConfigError(
                "partition was built for a different network object")
        if partition.fingerprint != network.fingerprint:
            raise ConfigError(
                "partition is stale: the network changed since it was "
                "built; re-partition before serving")
        self.network = network
        self.partition = partition
        self.cross_policy = cross_policy
        #: When true, same-shard candidate generation runs on the shard
        #: subnetwork (faster, boundary-approximate); the default keeps
        #: it on the full network so same-shard rankings are exactly the
        #: unsharded service's.
        self.local_candidates = local_candidates
        #: When true, every corridor route first runs the shard pair's
        #: :class:`~repro.graph.partition.CorridorCertificate`: queries
        #: whose shortest path provably stays inside the corridor keep
        #: the small graph, the rest widen to the full network — turning
        #: the corridor policy from "approximate by construction" into
        #: "exact, small where provably safe".  Costs one corridor
        #: point-to-point query per cross-shard route (cheap under the
        #: CH lane).
        self.certify_corridors = certify_corridors
        #: Cumulative certificate outcomes, surfaced through
        #: ``RankingService.stats()["sharding"]["routing"]``.
        self.route_counters = {"same_shard": 0, "corridor_routes": 0,
                               "certified": 0, "widened": 0,
                               "unreachable": 0}
        #: Chaos seam (``route`` injection point): armed by
        #: :meth:`RankingService.arm_faults`, ``None`` keeps routing at
        #: a single attribute check.
        self.faults = None

    @property
    def num_shards(self) -> int:
        return self.partition.num_shards

    def shard_of(self, vertex_id: int) -> int:
        return self.partition.shard_of(vertex_id)

    def route(self, source: int, target: int) -> ShardRoute:
        """The shard, graph, and policy one OD query is served under.

        Raises :class:`ServingError` once the live network's fingerprint
        diverges from the partition's: the memoised subnetwork/corridor
        snapshots can no longer reflect the graph (a closed road would
        keep serving), so every request fails loudly until the operator
        re-partitions — unlike full-network routing, shard-restricted
        graphs cannot invalidate implicitly.  O(1) per route on an
        unmutated network (the fingerprint is cached by version).
        """
        if self.partition.fingerprint != self.network.fingerprint:
            raise ServingError(
                "shard partition is stale: the network changed since it "
                "was built; re-partition before serving")
        shard = self.partition.shard_of(source)
        if self.faults is not None:
            self.faults.fire("route", shard=shard)
        target_shard = self.partition.shard_of(target)
        if shard == target_shard:
            self.route_counters["same_shard"] += 1
            if self.local_candidates:
                return ShardRoute(shard, target_shard,
                                  self.partition.subnetwork(shard), True)
            return ShardRoute(shard, target_shard, self.network, False)
        if self.cross_policy == "corridor":
            self.route_counters["corridor_routes"] += 1
            if self.certify_corridors:
                certificate = self.partition.corridor_certificate(
                    shard, target_shard)
                verdict = certificate.decide(source, target)
                self.route_counters[verdict] += 1
                if verdict != "certified":
                    # The corridor either provably misses a cheaper
                    # exterior path ("widened") or cannot connect the
                    # endpoints at all ("unreachable"): serve from the
                    # full network instead of a wrong small graph.
                    return ShardRoute(shard, target_shard, self.network,
                                      False)
            return ShardRoute(shard, target_shard,
                              self.partition.corridor(shard, target_shard),
                              True)
        return ShardRoute(shard, target_shard, self.network, False)


def split_budget(total: int, weights: list[int]) -> list[int]:
    """Split a global cache budget proportionally (each share >= 1).

    Used for both candidate- and score-cache budgets: a shard gets
    capacity proportional to its node count, so doubling the number of
    regions does not double serving memory.  Shares are carved from the
    remaining budget (see :func:`repro.serving.cache.carve_budget`, the
    same rule sizing the score cache's quota segments), so
    ``sum(shares) <= total`` whenever the budget covers the minimum of
    one entry per shard.
    """
    return carve_budget(total, weights)


class ShardedRegistry:
    """Per-shard model registries and caches under one global budget.

    The per-shard :class:`ModelRegistry` instances are rooted at
    ``<root>/shard-<id>`` and constructed over the **full** network:
    models live in the global vertex space (shard subgraphs preserve
    ids), so a checkpoint published for one shard can score any path the
    shard's routing graphs produce.  Cache capacities are carved out of
    the global ``candidate_cache_size`` / ``score_cache_size`` budgets
    proportionally to shard node counts; ``score_cache_size=0`` disables
    score memoisation everywhere.  ``score_cache_quotas`` applies
    per-split quotas inside every shard's score cache (see
    :class:`~repro.serving.cache.ScoreCache`).
    """

    def __init__(self, root: str | FilePath, network: RoadNetwork,
                 partition: GraphPartition, *,
                 candidate_cache_size: int = 1024,
                 score_cache_size: int = 8192,
                 score_cache_quotas=None,
                 registries: dict[int, ModelRegistry] | None = None) -> None:
        if partition.num_shards < 1:
            raise ConfigError("partition has no shards")
        if candidate_cache_size < partition.num_shards:
            raise ConfigError(
                f"candidate_cache_size={candidate_cache_size} cannot give "
                f"each of {partition.num_shards} shards even one entry")
        if 0 < score_cache_size < partition.num_shards:
            raise ConfigError(
                f"score_cache_size={score_cache_size} cannot give each of "
                f"{partition.num_shards} shards even one entry "
                f"(use 0 to disable score caching)")
        self.network = network
        self.partition = partition
        self.candidate_cache_size = candidate_cache_size
        self.score_cache_size = score_cache_size
        root = FilePath(root)
        if registries is None:
            registries = {
                shard.shard_id: ModelRegistry(
                    root / shard_label(shard.shard_id), network)
                for shard in partition.shards
            }
        else:
            missing = [shard.shard_id for shard in partition.shards
                       if shard.shard_id not in registries]
            if missing:
                raise ConfigError(f"registries missing shards {missing}")
        self._registries = registries

        sizes = [shard.size for shard in partition.shards]
        candidate_shares = split_budget(candidate_cache_size, sizes)
        score_shares = (split_budget(score_cache_size, sizes)
                        if score_cache_size > 0 else [0] * len(sizes))
        # Candidate caches are built unbound (no pinned network): the
        # serving pipeline keys every lookup by the *routing graph* it
        # used (subnetwork, corridor, or full-network retry), so one
        # shard cache can hold all three shapes without collisions.
        self._candidate_caches = {
            shard.shard_id: CandidateCache(candidate_shares[shard.shard_id])
            for shard in partition.shards
        }
        self._score_caches = {
            shard.shard_id: (
                ScoreCache(score_shares[shard.shard_id],
                           quotas=score_cache_quotas)
                if score_shares[shard.shard_id] > 0 else None)
            for shard in partition.shards
        }

    @classmethod
    def shared(cls, registry: ModelRegistry, partition: GraphPartition, *,
               candidate_cache_size: int = 1024,
               score_cache_size: int = 8192,
               score_cache_quotas=None) -> "ShardedRegistry":
        """Back every shard with one shared :class:`ModelRegistry`.

        The deployment shape where a single model serves all regions
        (the CLI's ``--shards`` flag): publishing/activating once serves
        everywhere, while caches and scoring batches stay shard-local.
        """
        registries = {shard.shard_id: registry for shard in partition.shards}
        return cls(registry.root, registry.network, partition,
                   candidate_cache_size=candidate_cache_size,
                   score_cache_size=score_cache_size,
                   score_cache_quotas=score_cache_quotas,
                   registries=registries)

    # ------------------------------------------------------------------
    # Per-shard access
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.partition.num_shards

    def shard_ids(self) -> list[int]:
        return [shard.shard_id for shard in self.partition.shards]

    def registry(self, shard_id: int) -> ModelRegistry:
        try:
            return self._registries[shard_id]
        except KeyError:
            raise ServingError(
                f"no shard {shard_id}; registry holds "
                f"{sorted(self._registries)}") from None

    def candidate_cache(self, shard_id: int) -> CandidateCache:
        self.registry(shard_id)  # shard validation
        return self._candidate_caches[shard_id]

    def score_cache(self, shard_id: int) -> ScoreCache | None:
        self.registry(shard_id)
        return self._score_caches[shard_id]

    # ------------------------------------------------------------------
    # Fleet-wide model management
    # ------------------------------------------------------------------
    def publish(self, ranker, version: str | None = None,
                shards: list[int] | None = None,
                activate: bool = False) -> str:
        """Publish one trained ranker to some (default: all) shards.

        With per-shard registries this writes one checkpoint per shard;
        region-specialised deployments instead call
        ``registry(shard).publish`` per shard with per-region rankers.
        Returns the version name (allocated by the first shard when not
        given, then reused so every shard agrees on the name).
        """
        targets = self.shard_ids() if shards is None else list(shards)
        if not targets:
            raise ServingError("publish() needs at least one shard")
        seen: set[int] = set()
        for shard_id in targets:
            registry = self.registry(shard_id)
            if id(registry) in seen:  # shared-registry mode: publish once
                continue
            seen.add(id(registry))
            version = registry.publish(ranker, version=version)
        if activate:
            self.activate(version, shards=targets)
        return version

    def activate(self, version: str,
                 shards: list[int] | None = None) -> dict[int, ActiveModel]:
        """Hot-swap ``version`` live on some (default: all) shards.

        Shards backed by the same underlying registry (the
        :meth:`shared` arrangement) activate once and share the
        snapshot, so a fleet-wide swap loads the checkpoint one time.
        """
        targets = self.shard_ids() if shards is None else list(shards)
        activated: dict[int, ActiveModel] = {}
        result: dict[int, ActiveModel] = {}
        for shard_id in targets:
            registry = self.registry(shard_id)
            snapshot = activated.get(id(registry))
            if snapshot is None:
                snapshot = registry.activate(version)
                activated[id(registry)] = snapshot
            result[shard_id] = snapshot
        return result

    def deactivate(self, shards: list[int] | None = None) -> None:
        targets = self.shard_ids() if shards is None else list(shards)
        for shard_id in targets:
            self.registry(shard_id).deactivate()

    def subscribe(self, listener) -> None:
        """Register a lifecycle listener on every shard's registry.

        Shards backed by one shared underlying registry subscribe it
        once, so a fleet-wide deactivate fires the listener per distinct
        registry rather than per shard alias.
        """
        seen: set[int] = set()
        for shard_id in self.shard_ids():
            registry = self.registry(shard_id)
            if id(registry) in seen:
                continue
            seen.add(id(registry))
            registry.subscribe(listener)

    def snapshot(self, shard_id: int) -> ActiveModel | None:
        return self.registry(shard_id).snapshot()

    def active_versions(self) -> dict[int, str | None]:
        versions: dict[int, str | None] = {}
        for shard_id in self.shard_ids():
            active = self.registry(shard_id).snapshot()
            versions[shard_id] = active.version if active else None
        return versions

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, object]:
        """Per-shard cache statistics plus the partition summary."""
        per_shard: dict[str, object] = {}
        for shard in self.partition.shards:
            shard_id = shard.shard_id
            score = self._score_caches[shard_id]
            per_shard[shard_label(shard_id)] = {
                "nodes": shard.size,
                "boundary_nodes": len(shard.boundary),
                "candidate_cache":
                    self._candidate_caches[shard_id].stats.as_dict(),
                "score_cache": (score.stats.as_dict() if score is not None
                                else {"disabled": True}),
            }
        return {"partition": self.partition.as_dict(),
                "per_shard": per_shard}


@dataclass
class ShardLane:
    """One shard's serving resources, as indexed by the pipeline stages.

    The :class:`~repro.serving.service.RankingService` keeps one lane
    per shard (or a single lane 0 when unsharded) and threads every
    stage through the lane named by ``QueryState.shard`` — which is what
    makes scoring flushes coalesce *per (shard, snapshot) group* rather
    than per snapshot alone.
    """

    shard_id: int
    registry: ModelRegistry
    candidate_cache: CandidateCache
    score_cache: ScoreCache | None
    scorer: BatchingScorer

    def register_into(self, metrics) -> None:
        """Publish this lane's trackers into a metrics registry.

        Canonical names are keyed by the lane's shard label —
        ``cache.candidate.shard-00.hits``, ``cache.score.shard-00.*``,
        ``scoring.shard-00.batches_run`` — so a sharded service's export
        breaks every cache and scorer down per shard; the service layer
        adds the unsuffixed aggregate names on top.
        """
        label = shard_label(self.shard_id)
        metrics.register_callback(f"cache.candidate.{label}",
                                  self.candidate_cache.stats.as_dict)
        if self.score_cache is not None:
            metrics.register_callback(f"cache.score.{label}",
                                      self.score_cache.stats.as_dict)
        metrics.register_callback(f"scoring.{label}", self.scorer.as_dict)
