"""The staged serving pipeline's data model and routing policy.

Every query — whether it enters through the synchronous
:class:`~repro.serving.service.RankingService` facade or the concurrent
:class:`~repro.serving.engine.ServingEngine` front door — moves through
the same four stages:

1. **admission** — route the request to its region shard (when the
   service is sharded), then resolve the candidate configuration and
   the model snapshot that will answer it (the shard's active model, a
   per-request pinned version, or a weighted A/B traffic split);
2. **candidate generation** — cache-aware TkDI / D-TkDI enumeration on
   the request's routing graph (full network, shard subnetwork, or a
   cross-shard corridor);
3. **scoring** — coalesced batched forward passes, grouped per
   ``(shard, model snapshot)``;
4. **response assembly** — ranking, degradation, and metrics.

The stage implementations live on :class:`RankingService` (they need its
caches, scorer, and registry); this module holds what the stages operate
*on*: the mutable :class:`QueryState` record threaded through the
pipeline, plus the deterministic A/B split assignment both front doors
share.  Keeping assignment a pure function of the request is what makes
engine responses element-wise identical to synchronous ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import TYPE_CHECKING

from repro.errors import ServingError
from repro.graph.path import Path
from repro.obs.trace import Trace
from repro.ranking.training_data import TrainingDataConfig
from repro.serving.registry import ActiveModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.service import RankRequest, RankResponse
    from repro.serving.sharding import ShardRoute

__all__ = ["QueryState", "TrafficSplit", "normalise_split", "assign_split",
           "tightest_remaining_ms"]

#: A weighted A/B traffic split: ``((version, weight), ...)``.
TrafficSplit = tuple[tuple[str, float], ...]


@dataclass
class QueryState:
    """One request's mutable record as it moves through the stages.

    Exactly one of three terminal shapes emerges at assembly time:
    ``error`` set (the request itself failed, e.g. no path exists),
    ``active`` still ``None`` (no model could answer — serve the
    shortest-path fallback, with ``degraded`` carrying the cause when a
    scoring failure forced the downgrade), or ``scores`` populated (a
    full model-ranked response).
    """

    request: "RankRequest"
    #: ``time.perf_counter()`` at admission; the engine overwrites it
    #: with the submit time so queueing delay counts toward latency.
    started: float = field(default_factory=time.perf_counter)
    #: Candidate configuration after the per-request ``k`` override.
    config: TrainingDataConfig | None = None
    #: Region shard owning this request (0 on an unsharded service).
    #: The scoring stage coalesces per ``(shard, snapshot)`` group and
    #: every stage indexes its per-shard resources by this.
    shard: int = 0
    #: Shard routing decision (graph + cross-shard policy outcome);
    #: ``None`` on an unsharded service.
    route: "ShardRoute | None" = None
    #: The split label this request was routed to (a model version), or
    #: ``None`` when the plain active model answered.
    split: str | None = None
    #: Model snapshot that will score this request.
    active: ActiveModel | None = None
    paths: list[Path] = field(default_factory=list)
    cache_hit: bool = False
    scores: list[float] | None = None
    #: Request-level failure (candidate generation, bad pin): terminal.
    error: str | None = None
    #: Machine-readable failure class for structured error responses
    #: (``invalid_request``, ``deadline_exceeded``, ``shed``,
    #: ``breaker_open``, ``engine_closed``); ``None`` for legacy errors.
    error_code: str | None = None
    #: Scoring-level failure: the request degrades to the fallback.
    degraded: str | None = None
    response: "RankResponse | None" = None
    #: Per-request span recorder when this request was sampled for
    #: tracing; ``None`` (the default) keeps the whole telemetry plane
    #: a single attribute check on the hot path.
    trace: Trace | None = None
    #: ``perf_counter`` when candidate preparation finished — the start
    #: of the flush-queue wait the scoring stage closes off.
    prepared_at: float | None = None
    #: Deadline *budget* in milliseconds measured from ``started``
    #: (``None`` = no deadline).  A budget rather than an absolute
    #: instant so the engine's rebase of ``started`` to the submit time
    #: automatically charges queueing delay against the deadline.
    deadline_ms: float | None = None

    @property
    def scorable(self) -> bool:
        """Whether the scoring stage has work to do for this request."""
        return (self.error is None and self.active is not None
                and bool(self.paths))

    def remaining_ms(self, now: float | None = None) -> float | None:
        """Milliseconds left in the deadline budget (``None`` = no limit)."""
        if self.deadline_ms is None:
            return None
        if now is None:
            now = time.perf_counter()
        return self.deadline_ms - (now - self.started) * 1000.0

    def expired(self, now: float | None = None) -> bool:
        """Whether the deadline budget has run out."""
        remaining = self.remaining_ms(now)
        return remaining is not None and remaining <= 0.0

    @property
    def cross_shard(self) -> bool:
        """Whether the request's endpoints live in different shards."""
        return self.route is not None and self.route.cross


def tightest_remaining_ms(states) -> float | None:
    """The smallest remaining deadline budget across ``states``.

    ``None`` when no member carries a deadline — the bound a scoring
    group's pool dispatch must respect so the most impatient waiter in
    a coalesced batch is still answered in time.
    """
    tightest: float | None = None
    now = time.perf_counter()
    for state in states:
        remaining = state.remaining_ms(now)
        if remaining is None:
            continue
        if tightest is None or remaining < tightest:
            tightest = remaining
    return tightest


def normalise_split(split) -> TrafficSplit:
    """Validate a traffic split and normalise its weights to sum to 1.

    Accepts a mapping or an iterable of ``(version, weight)`` pairs;
    order is preserved (it defines the assignment intervals, so two
    services configured with the same split route identically).
    """
    pairs = list(split.items()) if hasattr(split, "items") else list(split)
    if not pairs:
        raise ServingError("traffic split must name at least one version")
    seen: set[str] = set()
    total = 0.0
    for version, weight in pairs:
        if not version or not isinstance(version, str):
            raise ServingError(
                f"traffic split version must be a non-empty string, "
                f"got {version!r}"
            )
        if version in seen:
            raise ServingError(
                f"traffic split names version {version!r} twice")
        seen.add(version)
        if not weight > 0.0:
            raise ServingError(
                f"traffic split weight for {version!r} must be > 0, "
                f"got {weight!r}"
            )
        total += float(weight)
    return tuple((version, float(weight) / total) for version, weight in pairs)


def _request_point(request: "RankRequest") -> float:
    """A deterministic uniform draw in ``[0, 1)`` per request identity.

    Hash-based (not RNG-based) so the same request routes to the same
    split on every front door and every replay — the property the
    engine/sync parity contract and sticky A/B assignment both need.
    ``request_id`` participates, so a workload of distinct ids spreads
    across splits even when the OD pair repeats.
    """
    key = repr((request.source, request.target, request.request_id,
                request.k)).encode("utf-8")
    digest = blake2b(key, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0 ** 64


def assign_split(request: "RankRequest", split: TrafficSplit) -> str:
    """The model version a normalised traffic split routes ``request`` to."""
    point = _request_point(request)
    edge = 0.0
    for version, weight in split:
        edge += weight
        if point < edge:
            return version
    return split[-1][0]  # float-rounding guard: the last interval owns 1.0
