"""Synthetic serving workloads: Zipf-skewed OD-hotspot query mixes.

Navigation traffic is dominated by commuter hotspots — the same few
(source, destination) pairs repeat over and over.  The generator draws a
fixed pool of hotspot OD pairs from the network and samples each request
from that pool with Zipf-distributed popularity, which is exactly the
regime caches are built for.  ``run_workload`` replays a request list
against a :class:`RankingService` and summarises latency, throughput,
and cache behaviour as a plain JSON-able dict.

Passing a :class:`~repro.graph.partition.GraphPartition` turns the
generators *multi-region*: hotspot pools are drawn per shard (pool sizes
proportional to shard size), regions get Zipf-distributed popularity of
their own (``region_zipf_exponent`` — region 0 hottest), and a tunable
``cross_shard_fraction`` of requests spans two different shards.  The
sharding benchmarks and tests share this one generator, so "the same
multi-region workload" means the same request stream everywhere.

Two drive modes exist for the concurrent engine:

* **closed loop** (:func:`run_engine_workload`) — ``concurrency``
  client threads each submit their next request the moment the previous
  response arrives, the classic saturation benchmark;
* **open loop** (:func:`generate_timed_workload` +
  :func:`replay_open_loop`) — requests carry Poisson inter-arrival
  timestamps targeting ``arrival_rate_qps``, and the replayer submits
  each one at its scheduled instant regardless of completions, which is
  how production traffic actually behaves (queueing delay shows up in
  the latency numbers instead of silently throttling the offered load).
"""

from __future__ import annotations

import threading
import time
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from contextlib import contextmanager, nullcontext

from repro.errors import NoPathError, ServingError
from repro.graph.network import RoadNetwork
from repro.graph.shortest_path import shortest_path_cost
from repro.obs.export import SnapshotExporter
from repro.rng import RngLike, make_rng
from repro.serving.instrumentation import percentile
from repro.serving.service import RankingService, RankRequest

__all__ = ["WorkloadConfig", "TimedRequest", "zipf_weights",
           "poisson_arrivals", "generate_workload", "generate_timed_workload",
           "run_workload", "run_engine_workload", "replay_open_loop"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of a synthetic query stream.

    ``arrival_rate_qps`` is only consulted by the open-loop generator:
    it sets the mean of the Poisson arrival process attached to each
    request (``None`` means back-to-back, all arrivals at t=0).
    ``region_zipf_exponent`` and ``cross_shard_fraction`` are only
    consulted when a partition is passed to the generator: the former
    skews request volume across regions (shard 0 hottest; 0 < exponent,
    higher = more skew), the latter is the probability that a request's
    endpoints lie in two different shards.
    """

    num_requests: int = 200
    num_hotspots: int = 20
    zipf_exponent: float = 1.1
    min_hop_distance: float = 1.0  # metres; rejects degenerate OD pairs
    arrival_rate_qps: float | None = None
    region_zipf_exponent: float = 1.0
    cross_shard_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.num_requests < 1:
            raise ValueError(f"num_requests must be >= 1, got {self.num_requests}")
        if self.num_hotspots < 1:
            raise ValueError(f"num_hotspots must be >= 1, got {self.num_hotspots}")
        if self.zipf_exponent <= 0.0:
            raise ValueError(
                f"zipf_exponent must be > 0, got {self.zipf_exponent}"
            )
        if self.arrival_rate_qps is not None and self.arrival_rate_qps <= 0.0:
            raise ValueError(
                f"arrival_rate_qps must be > 0, got {self.arrival_rate_qps}"
            )
        if self.region_zipf_exponent <= 0.0:
            raise ValueError(
                f"region_zipf_exponent must be > 0, "
                f"got {self.region_zipf_exponent}"
            )
        if not 0.0 <= self.cross_shard_fraction <= 1.0:
            raise ValueError(
                f"cross_shard_fraction must be in [0, 1], "
                f"got {self.cross_shard_fraction}"
            )


@dataclass(frozen=True)
class TimedRequest:
    """One open-loop request: what to ask and when to ask it.

    ``arrival_s`` is the offset from the start of the replay at which
    the request enters the system.
    """

    request: RankRequest
    arrival_s: float


def zipf_weights(n: int, exponent: float) -> np.ndarray:
    """Normalised Zipf popularity weights for ranks ``1..n``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    weights = 1.0 / np.arange(1, n + 1, dtype=float) ** exponent
    return weights / weights.sum()


def poisson_arrivals(num: int, qps: float, rng: RngLike = None) -> np.ndarray:
    """Cumulative arrival offsets (seconds) of a Poisson process.

    Inter-arrival gaps are exponential with mean ``1/qps``, so a long
    stream's offered load converges on ``qps`` queries per second —
    with the bursts and lulls real traffic has, which closed-loop
    replays structurally cannot produce.
    """
    if num < 1:
        raise ValueError(f"num must be >= 1, got {num}")
    if qps <= 0.0:
        raise ValueError(f"qps must be > 0, got {qps}")
    generator = make_rng(rng)
    gaps = generator.exponential(scale=1.0 / qps, size=num)
    return np.cumsum(gaps)


def _hotspot_pool(network: RoadNetwork, config: WorkloadConfig,
                  rng: np.random.Generator) -> list[tuple[int, int]]:
    """Reachable OD pairs acting as the workload's commuter hotspots."""
    pool = _sample_pairs(network, config, rng, network.vertex_ids(),
                         count=config.num_hotspots)
    if not pool:
        raise ValueError(
            "could not find any reachable OD pair; is the network connected?"
        )
    return pool


def _sample_pairs(network: RoadNetwork, config: WorkloadConfig,
                  rng: np.random.Generator, source_ids: list[int],
                  count: int,
                  target_ids: list[int] | None = None) -> list[tuple[int, int]]:
    """Up to ``count`` distinct reachable OD pairs, rejection-sampled.

    ``target_ids`` (defaulting to ``source_ids``) lets the multi-region
    generator draw cross-shard pairs: source from one shard's nodes,
    target from another's.  Reachability is always judged on the full
    network — the serving layer's full-network retry guarantees such
    pairs are answerable even when a shard-restricted graph is not.
    """
    targets = source_ids if target_ids is None else target_ids
    pool: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    attempts = 0
    max_attempts = max(200, 50 * count)
    while len(pool) < count and attempts < max_attempts:
        attempts += 1
        if target_ids is None:
            if len(source_ids) < 2:
                break
            source, target = (int(v) for v in rng.choice(source_ids, size=2,
                                                         replace=False))
        else:
            source = int(rng.choice(source_ids))
            target = int(rng.choice(targets))
            if source == target:
                continue
        if (source, target) in seen:
            continue
        try:
            cost = shortest_path_cost(network, source, target)
        except NoPathError:
            continue
        if cost < config.min_hop_distance:
            continue
        seen.add((source, target))
        pool.append((source, target))
    return pool


def _region_pools(network: RoadNetwork, partition, config: WorkloadConfig,
                  rng: np.random.Generator):
    """Per-shard hotspot pools plus one cross-shard pool.

    Each shard's pool size is its proportional share of
    ``num_hotspots`` (at least one); the cross pool holds
    ``num_hotspots * cross_shard_fraction`` pairs whose source shard is
    drawn with the region Zipf weights and whose target shard is drawn
    uniformly among the rest.
    """
    shards = partition.shards
    total = sum(shard.size for shard in shards)
    shard_nodes = [sorted(shard.nodes) for shard in shards]
    shard_pools: list[list[tuple[int, int]]] = []
    for shard in shards:
        share = max(1, round(config.num_hotspots * shard.size / total))
        shard_pools.append(_sample_pairs(network, config, rng,
                                         shard_nodes[shard.shard_id],
                                         count=share))
    cross_pool: list[tuple[int, int]] = []
    if config.cross_shard_fraction > 0.0 and len(shards) > 1:
        want = max(1, round(config.num_hotspots * config.cross_shard_fraction))
        region_weights = zipf_weights(len(shards),
                                      config.region_zipf_exponent)
        attempts = 0
        while len(cross_pool) < want and attempts < 50 * want:
            attempts += 1
            shard_a = int(rng.choice(len(shards), p=region_weights))
            others = [s for s in range(len(shards)) if s != shard_a]
            shard_b = int(rng.choice(others))
            pair = _sample_pairs(network, config, rng, shard_nodes[shard_a],
                                 count=1, target_ids=shard_nodes[shard_b])
            if pair and pair[0] not in cross_pool:
                cross_pool.extend(pair)
    if all(not pool for pool in shard_pools) and not cross_pool:
        raise ValueError(
            "no shard yielded a reachable OD pair above min_hop_distance; "
            "lower min_hop_distance or use fewer shards"
        )
    return shard_pools, cross_pool


def _draw_region_requests(shard_pools, cross_pool, config: WorkloadConfig,
                          rng: np.random.Generator) -> list[RankRequest]:
    populated = [s for s, pool in enumerate(shard_pools) if pool]
    region_weights = None
    if populated:
        raw = zipf_weights(len(shard_pools), config.region_zipf_exponent)
        mass = np.array([raw[s] for s in populated])
        region_weights = mass / mass.sum()
    pool_weights = [zipf_weights(len(pool), config.zipf_exponent)
                    if pool else None for pool in shard_pools]
    cross_weights = (zipf_weights(len(cross_pool), config.zipf_exponent)
                     if cross_pool else None)
    requests: list[RankRequest] = []
    for request_id in range(config.num_requests):
        draw_cross = (cross_pool and
                      (not populated
                       or rng.random() < config.cross_shard_fraction))
        if draw_cross:
            index = int(rng.choice(len(cross_pool), p=cross_weights))
            source, target = cross_pool[index]
        else:
            shard = populated[int(rng.choice(len(populated),
                                             p=region_weights))]
            pool = shard_pools[shard]
            index = int(rng.choice(len(pool), p=pool_weights[shard]))
            source, target = pool[index]
        requests.append(RankRequest(source=source, target=target,
                                    request_id=request_id))
    return requests


def generate_workload(network: RoadNetwork,
                      config: WorkloadConfig | None = None,
                      rng: RngLike = None,
                      partition=None) -> list[RankRequest]:
    """A Zipf-skewed request stream over a fixed hotspot pool.

    With a :class:`~repro.graph.partition.GraphPartition` the stream is
    *multi-region*: per-shard hotspot pools with Zipf-skewed region
    popularity and a ``config.cross_shard_fraction`` of two-shard
    requests (see :class:`WorkloadConfig`).  Without one, the classic
    single-pool stream (bit-identical to previous releases under the
    same seed).
    """
    config = config or WorkloadConfig()
    generator = make_rng(rng)
    if partition is None:
        pool = _hotspot_pool(network, config, generator)
        weights = zipf_weights(len(pool), config.zipf_exponent)
        draws = generator.choice(len(pool), size=config.num_requests,
                                 p=weights)
        return [
            RankRequest(source=pool[int(i)][0], target=pool[int(i)][1],
                        request_id=request_id)
            for request_id, i in enumerate(draws)
        ]
    shard_pools, cross_pool = _region_pools(network, partition, config,
                                            generator)
    return _draw_region_requests(shard_pools, cross_pool, config, generator)


def generate_timed_workload(network: RoadNetwork,
                            config: WorkloadConfig | None = None,
                            rng: RngLike = None,
                            partition=None) -> list[TimedRequest]:
    """The Zipf OD mix plus open-loop arrival timestamps.

    The OD draw is identical to :func:`generate_workload` under the
    same rng seed (including the multi-region mix when ``partition`` is
    given); arrivals are Poisson at ``config.arrival_rate_qps`` (all
    zero when unset, i.e. "as fast as possible").
    """
    config = config or WorkloadConfig()
    generator = make_rng(rng)
    requests = generate_workload(network, config, generator,
                                 partition=partition)
    if config.arrival_rate_qps is None:
        arrivals = np.zeros(len(requests))
    else:
        arrivals = poisson_arrivals(len(requests), config.arrival_rate_qps,
                                    generator)
    return [TimedRequest(request=request, arrival_s=float(at))
            for request, at in zip(requests, arrivals)]


def _summarise(latencies: list[float], outcomes: dict[str, int],
               candidate_hits: int, requests: int,
               elapsed: float) -> dict[str, object]:
    return {
        "requests": requests,
        "elapsed_s": elapsed,
        "throughput_qps": requests / elapsed if elapsed > 0 else 0.0,
        "latency_ms": {
            "mean": float(np.mean(latencies)) if latencies else 0.0,
            "p50": percentile(latencies, 50.0),
            "p95": percentile(latencies, 95.0),
        },
        "served_by": outcomes,
        "candidate_cache_hit_rate": (
            candidate_hits / requests if requests else 0.0
        ),
    }


@contextmanager
def _armed_faults(service: RankingService, fault_spec, fault_seed: int):
    """Arm a fault spec for the duration of one replay, then disarm.

    The ``fault_spec=`` hook every drive mode shares: chaos scenarios
    (``bench-serve --fault-spec``, ``bench_robustness``) replay a
    workload against a deliberately broken service, and the ``finally``
    guarantees hanging threads are released and the stack returns to
    dormancy even when the replay itself fails.
    """
    if fault_spec is None:
        yield None
        return
    injector = service.arm_faults(fault_spec, seed=fault_seed)
    try:
        yield injector
    finally:
        service.disarm_faults()


def _resilience_summary(service: RankingService,
                        summary: dict[str, object]) -> None:
    """Attach shed/deadline/breaker counts when any mechanism fired."""
    counts = {key: value
              for key, value in service.res_counters.as_dict().items()
              if value}
    if counts:
        summary["resilience"] = counts


@contextmanager
def _background_pressure(background_analytics):
    """Run a batch-analytics hook on a side thread for one replay.

    The mixed online+batch scenario: ``background_analytics`` is a
    callable ``(stop_event) -> summary dict`` — typically a
    :class:`repro.analytics.BackgroundAnalytics` — started when the
    replay starts and told to stop when it ends, so online latency is
    measured *while* OD / service-area tiles are running.  Yields a
    mutable box; after the block exits (hook stopped and joined) the
    box holds ``"summary"`` or ``"error"``.
    """
    if background_analytics is None:
        yield None
        return
    stop = threading.Event()
    box: dict[str, object] = {}

    def runner() -> None:
        try:
            box["summary"] = background_analytics(stop)
        except BaseException as exc:  # noqa: BLE001 - report, not raise
            box["error"] = f"{type(exc).__name__}: {exc}"

    thread = threading.Thread(target=runner, name="loadgen-analytics",
                              daemon=True)
    thread.start()
    try:
        yield box
    finally:
        stop.set()
        thread.join(30.0)
        if thread.is_alive():
            box.setdefault("error", "background analytics hook did not "
                                    "stop within 30s")


def _attach_background(summary: dict[str, object], box) -> None:
    if box is None:
        return
    summary["background_analytics"] = box.get(
        "summary", {"error": box.get("error", "hook returned nothing")})


def _timeline_exporter(metrics, metrics_out,
                       interval_s: float):
    """A running :class:`SnapshotExporter` for the replay, or a no-op.

    Every drive mode shares this hook: pass ``metrics_out`` and the
    replay leaves a JSONL timeline of the service's metric registry
    sampled at ``interval_s`` (plus a final flush) next to its summary.
    """
    if metrics_out is None:
        return nullcontext(None)
    return SnapshotExporter(metrics, metrics_out, interval_s=interval_s)


def run_workload(service: RankingService, requests: Sequence[RankRequest],
                 batch_size: int = 1, metrics_out=None,
                 metrics_interval_s: float = 0.25, fault_spec=None,
                 fault_seed: int = 0) -> dict[str, object]:
    """Replay ``requests`` and summarise what the service did.

    ``batch_size`` > 1 feeds the service in coalesced chunks (one padded
    forward pass per chunk); 1 replays strictly sequentially.
    ``metrics_out`` additionally writes a JSONL metrics timeline of the
    run (see :class:`~repro.obs.export.SnapshotExporter`).
    ``fault_spec`` (a spec string or rules, see
    :func:`~repro.serving.faults.parse_fault_spec`) arms deterministic
    fault injection for the duration of the replay.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    latencies: list[float] = []
    outcomes = {"model": 0, "fallback": 0, "error": 0}
    candidate_hits = 0
    started = time.perf_counter()
    with _armed_faults(service, fault_spec, fault_seed), \
            _timeline_exporter(service.metrics, metrics_out,
                               metrics_interval_s):
        for start in range(0, len(requests), batch_size):
            chunk = list(requests[start:start + batch_size])
            for response in service.rank_batch(chunk):
                latencies.append(response.latency_ms)
                outcomes[response.served_by] += 1
                candidate_hits += int(response.candidate_cache_hit)
    elapsed = time.perf_counter() - started
    summary = _summarise(latencies, outcomes, candidate_hits, len(requests),
                         elapsed)
    summary["batch_size"] = batch_size
    _resilience_summary(service, summary)
    summary["stats"] = service.stats()
    return summary


def run_engine_workload(engine, requests: Sequence[RankRequest],
                        concurrency: int = 32, metrics_out=None,
                        metrics_interval_s: float = 0.25, fault_spec=None,
                        fault_seed: int = 0,
                        wait_timeout_s: float | None = None,
                        background_analytics=None
                        ) -> dict[str, object]:
    """Closed-loop drive: ``concurrency`` clients hammer the engine.

    Each client thread submits its next request as soon as its previous
    one is answered, so the engine always sees about ``concurrency``
    requests in flight — the regime deadline-batched coalescing is
    built for.  Returns the same summary shape as :func:`run_workload`
    plus the engine's batch-occupancy gauges.  ``fault_spec`` arms
    deterministic fault injection for the replay; ``wait_timeout_s``
    bounds each client's wait (a request still unanswered then is
    counted under ``"hung"`` instead of blocking the client forever —
    chaos replays should always set it).  ``background_analytics``
    runs batch tiles concurrently with the clients (see
    :func:`_background_pressure`); its report lands in the summary
    under ``"background_analytics"``.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    queue = list(requests)
    cursor = threading.Lock()
    position = [0]
    latencies: list[float] = []
    outcomes = {"model": 0, "fallback": 0, "error": 0}
    hung = [0]
    refused = [0]
    candidate_hits = 0
    results_lock = threading.Lock()

    def client() -> None:
        nonlocal candidate_hits
        while True:
            with cursor:
                if position[0] >= len(queue):
                    return
                request = queue[position[0]]
                position[0] += 1
            try:
                ticket = engine.submit(request)
            except ServingError:  # injected ingress fault / closed engine
                with results_lock:
                    refused[0] += 1
                continue
            try:
                response = ticket.wait(wait_timeout_s)
            except ServingError:
                with results_lock:
                    hung[0] += 1
                continue
            with results_lock:
                latencies.append(response.latency_ms)
                outcomes[response.served_by] += 1
                candidate_hits += int(response.candidate_cache_hit)

    threads = [threading.Thread(target=client, name=f"loadgen-client-{i}")
               for i in range(min(concurrency, len(queue)))]
    started = time.perf_counter()
    with _armed_faults(engine.service, fault_spec, fault_seed), \
            _timeline_exporter(engine.service.metrics, metrics_out,
                               metrics_interval_s), \
            _background_pressure(background_analytics) as bg_box:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    elapsed = time.perf_counter() - started
    summary = _summarise(latencies, outcomes, candidate_hits, len(queue),
                         elapsed)
    summary["concurrency"] = concurrency
    summary["hung"] = hung[0]
    summary["refused"] = refused[0]
    _resilience_summary(engine.service, summary)
    summary["occupancy"] = engine.occupancy.as_dict()
    _attach_background(summary, bg_box)
    return summary


def replay_open_loop(engine, timed: Sequence[TimedRequest],
                     time_scale: float = 1.0, metrics_out=None,
                     metrics_interval_s: float = 0.25, fault_spec=None,
                     fault_seed: int = 0,
                     wait_timeout_s: float | None = None,
                     background_analytics=None
                     ) -> dict[str, object]:
    """Open-loop drive: submit each request at its arrival timestamp.

    Submissions never wait for completions, so when the engine falls
    behind the offered rate the backlog surfaces as latency rather than
    as a silently reduced request rate.  ``time_scale`` > 1 compresses
    the recorded timeline (e.g. 2.0 replays at twice the recorded QPS).
    ``fault_spec`` arms deterministic fault injection for the replay;
    ``wait_timeout_s`` bounds each ticket's collection wait (still-
    unanswered requests count under ``"hung"``).
    ``background_analytics`` runs batch tiles concurrently with the
    timeline (see :func:`_background_pressure`), so the summary's p95
    is online latency *under batch pressure*; the hook's report lands
    under ``"background_analytics"``.
    """
    if time_scale <= 0.0:
        raise ValueError(f"time_scale must be > 0, got {time_scale}")
    ordered = sorted(timed, key=lambda item: item.arrival_s)
    tickets = []
    latencies: list[float] = []
    outcomes = {"model": 0, "fallback": 0, "error": 0}
    hung = 0
    refused = 0
    candidate_hits = 0
    started = time.perf_counter()
    with _armed_faults(engine.service, fault_spec, fault_seed), \
            _timeline_exporter(engine.service.metrics, metrics_out,
                               metrics_interval_s), \
            _background_pressure(background_analytics) as bg_box:
        for item in ordered:
            due = started + item.arrival_s / time_scale
            delay = due - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            try:
                tickets.append(engine.submit(item.request))
            except ServingError:  # injected ingress fault
                refused += 1
        for ticket in tickets:
            try:
                response = ticket.wait(wait_timeout_s)
            except ServingError:
                hung += 1
                continue
            latencies.append(response.latency_ms)
            outcomes[response.served_by] += 1
            candidate_hits += int(response.candidate_cache_hit)
    elapsed = time.perf_counter() - started
    summary = _summarise(latencies, outcomes, candidate_hits, len(ordered),
                         elapsed)
    offered = (len(ordered) / (ordered[-1].arrival_s / time_scale)
               if ordered and ordered[-1].arrival_s > 0 else 0.0)
    summary["offered_qps"] = offered
    summary["time_scale"] = time_scale
    summary["hung"] = hung
    summary["refused"] = refused
    _resilience_summary(engine.service, summary)
    summary["occupancy"] = engine.occupancy.as_dict()
    _attach_background(summary, bg_box)
    return summary
