"""Synthetic serving workloads: Zipf-skewed OD-hotspot query mixes.

Navigation traffic is dominated by commuter hotspots — the same few
(source, destination) pairs repeat over and over.  The generator draws a
fixed pool of hotspot OD pairs from the network and samples each request
from that pool with Zipf-distributed popularity, which is exactly the
regime caches are built for.  ``run_workload`` replays a request list
against a :class:`RankingService` and summarises latency, throughput,
and cache behaviour as a plain JSON-able dict.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import NoPathError
from repro.graph.network import RoadNetwork
from repro.graph.shortest_path import shortest_path_cost
from repro.rng import RngLike, make_rng
from repro.serving.instrumentation import percentile
from repro.serving.service import RankingService, RankRequest

__all__ = ["WorkloadConfig", "zipf_weights", "generate_workload",
           "run_workload"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of a synthetic query stream."""

    num_requests: int = 200
    num_hotspots: int = 20
    zipf_exponent: float = 1.1
    min_hop_distance: float = 1.0  # metres; rejects degenerate OD pairs

    def __post_init__(self) -> None:
        if self.num_requests < 1:
            raise ValueError(f"num_requests must be >= 1, got {self.num_requests}")
        if self.num_hotspots < 1:
            raise ValueError(f"num_hotspots must be >= 1, got {self.num_hotspots}")
        if self.zipf_exponent <= 0.0:
            raise ValueError(
                f"zipf_exponent must be > 0, got {self.zipf_exponent}"
            )


def zipf_weights(n: int, exponent: float) -> np.ndarray:
    """Normalised Zipf popularity weights for ranks ``1..n``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    weights = 1.0 / np.arange(1, n + 1, dtype=float) ** exponent
    return weights / weights.sum()


def _hotspot_pool(network: RoadNetwork, config: WorkloadConfig,
                  rng: np.random.Generator) -> list[tuple[int, int]]:
    """Reachable OD pairs acting as the workload's commuter hotspots."""
    ids = network.vertex_ids()
    pool: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    attempts = 0
    max_attempts = max(200, 50 * config.num_hotspots)
    while len(pool) < config.num_hotspots and attempts < max_attempts:
        attempts += 1
        source, target = (int(v) for v in rng.choice(ids, size=2, replace=False))
        if (source, target) in seen:
            continue
        try:
            cost = shortest_path_cost(network, source, target)
        except NoPathError:
            continue
        if cost < config.min_hop_distance:
            continue
        seen.add((source, target))
        pool.append((source, target))
    if not pool:
        raise ValueError(
            "could not find any reachable OD pair; is the network connected?"
        )
    return pool


def generate_workload(network: RoadNetwork,
                      config: WorkloadConfig | None = None,
                      rng: RngLike = None) -> list[RankRequest]:
    """A Zipf-skewed request stream over a fixed hotspot pool."""
    config = config or WorkloadConfig()
    generator = make_rng(rng)
    pool = _hotspot_pool(network, config, generator)
    weights = zipf_weights(len(pool), config.zipf_exponent)
    draws = generator.choice(len(pool), size=config.num_requests, p=weights)
    return [
        RankRequest(source=pool[int(i)][0], target=pool[int(i)][1],
                    request_id=request_id)
        for request_id, i in enumerate(draws)
    ]


def run_workload(service: RankingService, requests: Sequence[RankRequest],
                 batch_size: int = 1) -> dict[str, object]:
    """Replay ``requests`` and summarise what the service did.

    ``batch_size`` > 1 feeds the service in coalesced chunks (one padded
    forward pass per chunk); 1 replays strictly sequentially.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    latencies: list[float] = []
    outcomes = {"model": 0, "fallback": 0, "error": 0}
    candidate_hits = 0
    started = time.perf_counter()
    for start in range(0, len(requests), batch_size):
        chunk = list(requests[start:start + batch_size])
        for response in service.rank_batch(chunk):
            latencies.append(response.latency_ms)
            outcomes[response.served_by] += 1
            candidate_hits += int(response.candidate_cache_hit)
    elapsed = time.perf_counter() - started
    return {
        "requests": len(requests),
        "batch_size": batch_size,
        "elapsed_s": elapsed,
        "throughput_qps": len(requests) / elapsed if elapsed > 0 else 0.0,
        "latency_ms": {
            "mean": float(np.mean(latencies)) if latencies else 0.0,
            "p50": percentile(latencies, 50.0),
            "p95": percentile(latencies, 95.0),
        },
        "served_by": outcomes,
        "candidate_cache_hit_rate": (
            candidate_hits / len(requests) if requests else 0.0
        ),
        "stats": service.stats(),
    }
