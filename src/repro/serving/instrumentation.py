"""Latency and throughput accounting for the serving layer.

Kept deliberately tiny: a bounded reservoir of per-request latencies
with nearest-rank percentiles, the service-level counters the ``serve``
/ ``bench-serve`` CLI commands report as JSON, per-split copies of both
for A/B serving (:class:`SplitMetrics`), per-shard request accounting
for the sharded serving plane (:class:`ShardMetrics`), and the
scoring-batch occupancy gauge (:class:`OccupancyTracker`) — with an
optional per-``(shard, snapshot)``-group breakdown — that shows whether
the concurrent engine's cross-request coalescing is actually engaging.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

__all__ = ["percentile", "shard_label", "LatencyTracker", "ServiceCounters",
           "SplitMetrics", "ShardMetrics", "OccupancyTracker"]


def shard_label(shard_id: int) -> str:
    """Canonical stats label for one shard.

    Every per-shard stats section (registry caches, request metrics,
    lane scorers, engine occupancy groups) joins on this exact string,
    so it lives here — in the dependency-free leaf module — and nowhere
    else formats it by hand.
    """
    return f"shard-{shard_id:02d}"


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 on an empty list."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, int(round(q / 100.0 * len(ordered) + 0.5)))
    return ordered[min(rank, len(ordered)) - 1]


class LatencyTracker:
    """Records per-request latencies (milliseconds), bounded memory.

    Keeps the most recent ``window`` samples for percentiles while the
    count/total stay exact over the whole lifetime.
    """

    def __init__(self, window: int = 4096) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._window = window
        self._samples: deque[float] = deque(maxlen=window)
        self._count = 0
        self._total = 0.0
        self._lock = threading.Lock()

    def record(self, latency_ms: float) -> None:
        with self._lock:
            self._count += 1
            self._total += latency_ms
            self._samples.append(latency_ms)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def mean_ms(self) -> float:
        with self._lock:
            return self._total / self._count if self._count else 0.0

    def percentile_ms(self, q: float) -> float:
        with self._lock:
            return percentile(list(self._samples), q)

    def as_dict(self) -> dict[str, float]:
        # One lock hold for the whole view: count/mean/samples come from
        # the same instant instead of racing a concurrent record().
        with self._lock:
            count, total = self._count, self._total
            samples = list(self._samples)
        return {
            "count": count,
            "mean_ms": total / count if count else 0.0,
            "p50_ms": percentile(samples, 50.0),
            "p95_ms": percentile(samples, 95.0),
        }


@dataclass
class ServiceCounters:
    """How each request was answered, plus degradations and failures."""

    requests: int = 0
    model_served: int = 0
    fallback_served: int = 0
    failed: int = 0
    hot_swaps: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def bump(self, field_name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, field_name, getattr(self, field_name) + amount)

    def as_dict(self) -> dict[str, int]:
        with self._lock:
            return {
                "requests": self.requests,
                "model_served": self.model_served,
                "fallback_served": self.fallback_served,
                "failed": self.failed,
                "hot_swaps": self.hot_swaps,
            }


#: How a response's ``served_by`` maps onto a counter field.
_OUTCOME_FIELDS = {"model": "model_served", "fallback": "fallback_served",
                   "error": "failed"}


class SplitMetrics:
    """Per-split latency and outcome accounting for A/B serving.

    A *split* is the model version a request was routed to — by the
    weighted traffic split or an explicit per-request pin.  Trackers are
    created lazily on first sight of a label, so an idle variant costs
    nothing; requests served by the plain active model (no split in
    play) are not recorded here, keeping the section a pure view of the
    experiment traffic.
    """

    def __init__(self, window: int = 4096) -> None:
        self._window = window
        self._splits: dict[str, tuple[LatencyTracker, ServiceCounters]] = {}
        self._lock = threading.Lock()

    def _for(self, split: str) -> tuple[LatencyTracker, ServiceCounters]:
        with self._lock:
            entry = self._splits.get(split)
            if entry is None:
                entry = (LatencyTracker(self._window), ServiceCounters())
                self._splits[split] = entry
            return entry

    def record(self, split: str | None, served_by: str,
               latency_ms: float) -> None:
        if split is None:
            return
        latency, counters = self._for(split)
        latency.record(latency_ms)
        counters.bump("requests")
        outcome = _OUTCOME_FIELDS.get(served_by)
        if outcome is not None:
            counters.bump(outcome)

    def labels(self) -> list[str]:
        with self._lock:
            return sorted(self._splits)

    def requests_for(self, split: str) -> int:
        with self._lock:
            entry = self._splits.get(split)
        return entry[1].requests if entry else 0

    def as_dict(self) -> dict[str, dict[str, object]]:
        with self._lock:
            entries = dict(self._splits)
        return {
            split: {"latency": latency.as_dict(),
                    "counters": counters.as_dict()}
            for split, (latency, counters) in sorted(entries.items())
        }


class ShardMetrics:
    """Per-shard request accounting for the sharded serving plane.

    Tracks how much traffic each region shard owns and how much of it
    crosses shard boundaries (the corridor-routed fraction) — the
    numbers that tell an operator whether the partition matches the
    workload.  Entries appear lazily on first sight of a shard, so an
    unsharded service (which never records) costs nothing.

    ``resilience`` labels responses the resilience plane shaped
    (``deadline_exceeded``, ``breaker_open``, ``shed``, …).  They are
    recorded as *orthogonal* ``degraded.<label>`` counters next to the
    outcome columns — every such response still lands in its
    model/fallback/error column, preserving the invariant that
    ``requests`` equals the outcome columns' sum.
    """

    def __init__(self) -> None:
        self._shards: dict[int, dict[str, int]] = {}
        self._lock = threading.Lock()

    def record(self, shard: int, cross_shard: bool, served_by: str,
               resilience: str | None = None) -> None:
        with self._lock:
            entry = self._shards.get(shard)
            if entry is None:
                entry = self._shards[shard] = {
                    "requests": 0, "cross_shard": 0,
                    "model": 0, "fallback": 0, "error": 0, "other": 0,
                }
            entry["requests"] += 1
            if cross_shard:
                entry["cross_shard"] += 1
            # An unknown outcome label still counts — under "other" — so
            # a typo upstream can't silently vanish traffic from the
            # books (requests always equals the outcome columns' sum).
            key = served_by if served_by in ("model", "fallback", "error") \
                else "other"
            entry[key] += 1
            if resilience is not None:
                label = f"degraded.{resilience}"
                entry[label] = entry.get(label, 0) + 1

    def requests_for(self, shard: int) -> int:
        with self._lock:
            entry = self._shards.get(shard)
            return entry["requests"] if entry else 0

    def as_dict(self) -> dict[str, dict[str, float]]:
        with self._lock:
            entries = {shard: dict(counts)
                       for shard, counts in self._shards.items()}
        result: dict[str, dict[str, float]] = {}
        for shard, counts in sorted(entries.items()):
            requests = counts["requests"]
            counts["cross_shard_fraction"] = (
                counts["cross_shard"] / requests if requests else 0.0)
            result[shard_label(shard)] = counts
        return result


class OccupancyTracker:
    """Mean requests / paths per scoring flush of the concurrent engine.

    Occupancy above 1 request per flush is the direct evidence that
    cross-request coalescing engaged — independent queries shared a
    fused forward pass instead of each paying the small-batch path.
    ``record`` optionally takes a per-group breakdown (the sharded
    engine passes per-shard request/path counts), reported separately
    so coalescing can be judged per ``(shard, snapshot)`` lane.
    """

    def __init__(self) -> None:
        self._flushes = 0
        self._requests = 0
        self._paths = 0
        self._groups: dict[str, list[int]] = {}
        self._lock = threading.Lock()

    def record(self, requests: int, paths: int,
               groups: dict[str, tuple[int, int]] | None = None) -> None:
        with self._lock:
            self._flushes += 1
            self._requests += requests
            self._paths += paths
            if groups:
                for label, (group_requests, group_paths) in groups.items():
                    entry = self._groups.setdefault(label, [0, 0, 0])
                    entry[0] += 1
                    entry[1] += group_requests
                    entry[2] += group_paths

    @property
    def flushes(self) -> int:
        with self._lock:
            return self._flushes

    @property
    def mean_requests(self) -> float:
        with self._lock:
            return self._requests / self._flushes if self._flushes else 0.0

    @property
    def mean_paths(self) -> float:
        with self._lock:
            return self._paths / self._flushes if self._flushes else 0.0

    def as_dict(self) -> dict[str, object]:
        with self._lock:
            flushes, requests, paths = (self._flushes, self._requests,
                                        self._paths)
            groups = {label: list(entry)
                      for label, entry in self._groups.items()}
        result: dict[str, object] = {
            "flushes": flushes,
            "requests_coalesced": requests,
            "mean_requests_per_flush": requests / flushes if flushes else 0.0,
            "mean_paths_per_flush": paths / flushes if flushes else 0.0,
        }
        if groups:
            result["groups"] = {
                label: {
                    "flushes": entry[0],
                    "mean_requests_per_flush": (
                        entry[1] / entry[0] if entry[0] else 0.0),
                    "mean_paths_per_flush": (
                        entry[2] / entry[0] if entry[0] else 0.0),
                }
                for label, entry in sorted(groups.items())
            }
        return result
