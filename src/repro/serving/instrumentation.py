"""Latency and throughput accounting for the serving layer.

Kept deliberately tiny: a bounded reservoir of per-request latencies
with nearest-rank percentiles, and the service-level counters the
``serve`` / ``bench-serve`` CLI commands report as JSON.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

__all__ = ["percentile", "LatencyTracker", "ServiceCounters"]


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 on an empty list."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, int(round(q / 100.0 * len(ordered) + 0.5)))
    return ordered[min(rank, len(ordered)) - 1]


class LatencyTracker:
    """Records per-request latencies (milliseconds), bounded memory.

    Keeps the most recent ``window`` samples for percentiles while the
    count/total stay exact over the whole lifetime.
    """

    def __init__(self, window: int = 4096) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._window = window
        self._samples: deque[float] = deque(maxlen=window)
        self._count = 0
        self._total = 0.0
        self._lock = threading.Lock()

    def record(self, latency_ms: float) -> None:
        with self._lock:
            self._count += 1
            self._total += latency_ms
            self._samples.append(latency_ms)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean_ms(self) -> float:
        return self._total / self._count if self._count else 0.0

    def percentile_ms(self, q: float) -> float:
        with self._lock:
            return percentile(list(self._samples), q)

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean_ms": self.mean_ms,
            "p50_ms": self.percentile_ms(50.0),
            "p95_ms": self.percentile_ms(95.0),
        }


@dataclass
class ServiceCounters:
    """How each request was answered, plus degradations and failures."""

    requests: int = 0
    model_served: int = 0
    fallback_served: int = 0
    failed: int = 0
    hot_swaps: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def bump(self, field_name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, field_name, getattr(self, field_name) + amount)

    def as_dict(self) -> dict[str, int]:
        return {
            "requests": self.requests,
            "model_served": self.model_served,
            "fallback_served": self.fallback_served,
            "failed": self.failed,
            "hot_swaps": self.hot_swaps,
        }
