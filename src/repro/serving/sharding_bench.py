"""Sharded-serving benchmark: the shard plane vs the single-graph engine.

Times the PR-5 shard plane on a *multi-region* workload (per-shard Zipf
hotspot pools, a tunable cross-shard fraction — the regime a
city-and-beyond deployment actually sees) and writes the result as
``BENCH_sharding.json``:

* **multi-region throughput** — the same workload closed-loop through
  the unsharded :class:`ServingEngine` (PR 4's arrangement) and through
  a sharded service (one registry + caches + scorer per region, flushes
  coalesced per *(shard, snapshot)* group), with per-shard cache
  hit-rates and request accounting showing the isolation;
* **parity** — same-shard responses must be element-wise identical to
  the unsharded service's (the exact-mode guarantee: same rankings,
  scores within float32 roundoff); cross-shard corridor responses are
  reported as an agreement rate, not a requirement;
* **local routing** — the opt-in ``local_candidates=True`` mode
  (candidate generation on shard subnetworks), with its throughput and
  its same-shard agreement rate, quantifying the boundary
  approximation that exact mode avoids;
* **single-region floor** — a workload confined to one region through
  both engines: sharding must not tax the deployment that doesn't need
  it.

Consumed by ``benchmarks/bench_sharding.py`` (standalone + pytest smoke
mode) and the ``bench-sharding`` CLI subcommand, mirroring
``serving_bench`` / ``core.scoring_bench`` / ``graph.routing_bench``.
"""

from __future__ import annotations

import json
import math
import tempfile
import time
from dataclasses import asdict, dataclass, replace
from pathlib import Path as FilePath

import numpy as np

from repro.errors import DataError
from repro.graph.builders import north_jutland_like
from repro.graph.partition import partition_network
from repro.ranking.training_data import Strategy, TrainingDataConfig
from repro.serving.engine import ServingEngine
from repro.serving.instrumentation import percentile
from repro.serving.loadgen import (
    WorkloadConfig,
    generate_workload,
    run_engine_workload,
)
from repro.serving.registry import ModelRegistry
from repro.serving.service import RankingService, ServingConfig
from repro.serving.serving_bench import PARITY_LIMIT, build_random_ranker
from repro.serving.sharding import ShardedRegistry

__all__ = [
    "ShardingBenchConfig",
    "smoke_config",
    "full_config",
    "apply_overrides",
    "run_sharding_benchmark",
    "validate_report",
    "write_report",
]

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ShardingBenchConfig:
    """Knobs of one sharding benchmark run."""

    num_towns: int = 6
    seed: int = 11
    num_shards: int = 4
    partition_method: str = "voronoi"
    embedding_dim: int = 64
    hidden_size: int = 64
    fc_hidden: int = 32
    k: int = 8
    diversity_threshold: float = 0.8
    examine_limit: int = 100
    num_requests: int = 400
    num_hotspots: int = 40
    zipf_exponent: float = 1.1
    region_zipf_exponent: float = 1.0
    cross_shard_fraction: float = 0.3
    #: Same-shard hotspots are in-town trips; keep the floor below a
    #: town diameter or the per-region pools come up empty.
    min_hop_distance: float = 500.0
    candidate_cache_size: int = 2048
    score_cache_size: int = 8192
    concurrency: int = 16
    flush_deadline_ms: float = 4.0
    max_batch_size: int = 128
    repeats: int = 3
    preset: str = "full"

    def __post_init__(self) -> None:
        if self.num_towns < 2:
            raise ValueError(f"num_towns must be >= 2, got {self.num_towns}")
        if self.num_shards < 2:
            raise ValueError(
                f"num_shards must be >= 2 (the point of the benchmark), "
                f"got {self.num_shards}")
        if self.num_requests < 1 or self.num_hotspots < 1:
            raise ValueError("num_requests and num_hotspots must be >= 1")
        if self.concurrency < 1 or self.repeats < 1:
            raise ValueError("concurrency and repeats must be >= 1")
        if not 0.0 <= self.cross_shard_fraction <= 1.0:
            raise ValueError(
                f"cross_shard_fraction must be in [0, 1], "
                f"got {self.cross_shard_fraction}")


def smoke_config() -> ShardingBenchConfig:
    """Tiny preset for the tier-1 pytest wrapper: two regions, a small
    model, few requests — a couple of seconds, stable under CI jitter
    via best-of-repeats timing."""
    return ShardingBenchConfig(num_towns=2, seed=7, num_shards=2,
                               embedding_dim=32, hidden_size=32, fc_hidden=16,
                               k=3, examine_limit=30, num_requests=80,
                               num_hotspots=12, cross_shard_fraction=0.25,
                               min_hop_distance=300.0,
                               candidate_cache_size=512,
                               score_cache_size=2048, concurrency=8,
                               flush_deadline_ms=1.0, max_batch_size=24,
                               repeats=2, preset="smoke")


def full_config() -> ShardingBenchConfig:
    """The headline preset behind the committed ``BENCH_sharding.json``."""
    return ShardingBenchConfig()


def apply_overrides(
    config: ShardingBenchConfig,
    requests: int | None = None,
    shards: int | None = None,
    cross_fraction: float | None = None,
    concurrency: int | None = None,
    k: int | None = None,
    seed: int | None = None,
) -> ShardingBenchConfig:
    """Apply the command-line overrides shared by the ``bench-sharding``
    CLI subcommand and the standalone benchmark entry point."""
    overrides: dict[str, object] = {}
    if requests is not None:
        overrides["num_requests"] = requests
    if shards is not None:
        overrides["num_shards"] = shards
    if cross_fraction is not None:
        overrides["cross_shard_fraction"] = cross_fraction
    if concurrency is not None:
        overrides["concurrency"] = concurrency
    if k is not None:
        overrides["k"] = k
    if seed is not None:
        overrides["seed"] = seed
    return replace(config, **overrides) if overrides else config


# ----------------------------------------------------------------------
# Fixture assembly
# ----------------------------------------------------------------------
def _candidates(config: ShardingBenchConfig) -> TrainingDataConfig:
    return TrainingDataConfig(strategy=Strategy.D_TKDI, k=config.k,
                              diversity_threshold=config.diversity_threshold,
                              examine_limit=config.examine_limit)


def _serving_config(config: ShardingBenchConfig,
                    local_candidates: bool = False) -> ServingConfig:
    return ServingConfig(
        candidates=_candidates(config),
        candidate_cache_size=config.candidate_cache_size,
        score_cache_size=config.score_cache_size,
        max_batch_size=config.max_batch_size,
        concurrency=config.concurrency,
        flush_deadline_ms=config.flush_deadline_ms,
        local_candidates=local_candidates,
    )


def _sharded_service(config: ShardingBenchConfig, network, partition,
                     root: FilePath, ranker,
                     local_candidates: bool = False) -> RankingService:
    sharded = ShardedRegistry(
        root, network, partition,
        candidate_cache_size=config.candidate_cache_size,
        score_cache_size=config.score_cache_size)
    sharded.publish(ranker, version="bench-a", activate=True)
    return RankingService(network, sharded,
                          _serving_config(config, local_candidates))


def _best_engine_run(config: ShardingBenchConfig, service, workload) -> dict:
    """Closed-loop drive, best elapsed over ``repeats`` (fresh engine
    each repeat so close/drain costs are not carried across runs)."""
    best: dict = {}
    for _ in range(config.repeats):
        engine = ServingEngine(service, concurrency=config.concurrency,
                               flush_deadline_ms=config.flush_deadline_ms,
                               max_batch_size=config.max_batch_size)
        summary = run_engine_workload(engine, workload,
                                      concurrency=config.concurrency)
        engine.close()
        if not best or summary["elapsed_s"] < best["elapsed_s"]:
            best = summary
    return best


def _latency_block(latencies: list[float]) -> dict[str, float]:
    return {
        "mean": float(np.mean(latencies)) if latencies else 0.0,
        "p50": percentile(latencies, 50.0),
        "p95": percentile(latencies, 95.0),
    }


def _compare(sharded_responses, unsharded_responses, workload, partition):
    """Element-wise response comparison, split by same-/cross-shard."""
    same_total = same_mismatch = 0
    cross_total = cross_match = 0
    max_diff = 0.0
    for request, mine, theirs in zip(workload, sharded_responses,
                                     unsharded_responses):
        identical = (mine.served_by == theirs.served_by
                     and mine.model_version == theirs.model_version
                     and [r.path.vertices for r in mine.results]
                     == [r.path.vertices for r in theirs.results])
        if partition.same_shard(request.source, request.target):
            same_total += 1
            if not identical:
                same_mismatch += 1
                continue
            for a, b in zip(mine.results, theirs.results):
                max_diff = max(max_diff, abs(a.score - b.score))
        else:
            cross_total += 1
            cross_match += int(identical)
    return {
        "same_shard_requests": same_total,
        "mismatched_same_shard": same_mismatch,
        "max_abs_score_diff_same_shard": max_diff,
        "cross_shard_requests": cross_total,
        "cross_shard_agreement": (cross_match / cross_total
                                  if cross_total else 1.0),
    }


def _per_shard_view(service: RankingService) -> dict[str, dict]:
    """Per-shard hit-rates / traffic from a sharded service's stats."""
    per_shard = service.stats()["sharding"]["per_shard"]
    view: dict[str, dict] = {}
    for label, entry in sorted(per_shard.items()):
        requests = entry.get("requests", {})
        view[label] = {
            "nodes": entry.get("nodes", 0),
            "requests": requests.get("requests", 0),
            "cross_shard": requests.get("cross_shard", 0),
            "candidate_cache_hit_rate":
                entry["candidate_cache"]["hit_rate"],
            "score_cache_hit_rate":
                entry["score_cache"].get("hit_rate", 0.0),
            "batches_run": entry.get("scoring", {}).get("batches_run", 0),
            "paths_scored": entry.get("scoring", {}).get("paths_scored", 0),
        }
    return view


# ----------------------------------------------------------------------
# The benchmark
# ----------------------------------------------------------------------
def run_sharding_benchmark(config: ShardingBenchConfig | None = None) -> dict:
    """Benchmark the shard plane at the configured scale."""
    config = config or full_config()
    network = north_jutland_like(num_towns=config.num_towns, seed=config.seed)
    partition = partition_network(network, config.num_shards,
                                  method=config.partition_method,
                                  rng=config.seed)
    workload_config = WorkloadConfig(
        num_requests=config.num_requests, num_hotspots=config.num_hotspots,
        zipf_exponent=config.zipf_exponent,
        region_zipf_exponent=config.region_zipf_exponent,
        cross_shard_fraction=config.cross_shard_fraction,
        min_hop_distance=config.min_hop_distance)
    workload = generate_workload(network, workload_config, rng=config.seed,
                                 partition=partition)
    cross_requests = sum(
        1 for request in workload
        if not partition.same_shard(request.source, request.target))

    # One set of weights behind every arm: parity compares like with like.
    ranker = build_random_ranker(
        network, embedding_dim=config.embedding_dim,
        hidden_size=config.hidden_size, fc_hidden=config.fc_hidden,
        candidates=_candidates(config), seed=0)

    with tempfile.TemporaryDirectory() as tmp_root:
        root = FilePath(tmp_root)

        # -- the two arms ---------------------------------------------
        unsharded_registry = ModelRegistry(root / "unsharded", network)
        unsharded_registry.publish(ranker, version="bench-a")
        unsharded = RankingService(network, unsharded_registry,
                                   _serving_config(config))
        unsharded.activate("bench-a")

        sharded = _sharded_service(config, network, partition,
                                   root / "sharded", ranker)

        # -- multi-region closed loop ---------------------------------
        unsharded.warm_up(workload)
        sharded.warm_up(workload)
        unsharded_run = _best_engine_run(config, unsharded, workload)
        sharded_run = _best_engine_run(config, sharded, workload)

        # -- parity (synchronous, deterministic) ----------------------
        unsharded_responses = unsharded.rank_batch(workload)
        sharded_responses = sharded.rank_batch(workload)
        parity = _compare(sharded_responses, unsharded_responses, workload,
                          partition)
        per_shard = _per_shard_view(sharded)

        # -- opt-in local routing (boundary-approximate) --------------
        local = _sharded_service(config, network, partition, root / "local",
                                 ranker, local_candidates=True)
        local.warm_up(workload)
        local_run = _best_engine_run(config, local, workload)
        local_parity = _compare(local.rank_batch(workload),
                                unsharded_responses, workload, partition)

        # -- single-region floor --------------------------------------
        dominant = max(partition.shards, key=lambda shard: shard.size)
        single_workload = generate_workload(
            partition.subnetwork(dominant.shard_id),
            replace(workload_config, cross_shard_fraction=0.0),
            rng=config.seed)
        unsharded.warm_up(single_workload)
        sharded.warm_up(single_workload)
        single_unsharded = _best_engine_run(config, unsharded,
                                            single_workload)
        single_sharded = _best_engine_run(config, sharded, single_workload)

    report = {
        "schema_version": SCHEMA_VERSION,
        "preset": config.preset,
        "config": asdict(config),
        "network": {"vertices": network.num_vertices,
                    "edges": network.num_edges},
        "partition": partition.as_dict(),
        "multi_region": {
            "requests": len(workload),
            "cross_shard_requests": cross_requests,
            "unsharded": {
                "elapsed_s": unsharded_run["elapsed_s"],
                "throughput_qps": unsharded_run["throughput_qps"],
                "latency_ms": unsharded_run["latency_ms"],
            },
            "sharded": {
                "elapsed_s": sharded_run["elapsed_s"],
                "throughput_qps": sharded_run["throughput_qps"],
                "latency_ms": sharded_run["latency_ms"],
                "occupancy": sharded_run["occupancy"],
            },
            "throughput_ratio": (
                sharded_run["throughput_qps"]
                / unsharded_run["throughput_qps"]
                if unsharded_run["throughput_qps"] > 0 else math.inf),
            "per_shard": per_shard,
        },
        "parity": parity,
        "local_routing": {
            "throughput_qps": local_run["throughput_qps"],
            "throughput_ratio_vs_unsharded": (
                local_run["throughput_qps"]
                / unsharded_run["throughput_qps"]
                if unsharded_run["throughput_qps"] > 0 else math.inf),
            "same_shard_agreement": (
                1.0 - (local_parity["mismatched_same_shard"]
                       / local_parity["same_shard_requests"])
                if local_parity["same_shard_requests"] else 1.0),
        },
        "single_region": {
            "requests": len(single_workload),
            "region": dominant.shard_id,
            "unsharded_qps": single_unsharded["throughput_qps"],
            "sharded_qps": single_sharded["throughput_qps"],
            "throughput_ratio": (
                single_sharded["throughput_qps"]
                / single_unsharded["throughput_qps"]
                if single_unsharded["throughput_qps"] > 0 else math.inf),
        },
    }
    report["headline"] = {
        "num_shards": partition.num_shards,
        "multi_region_sharded_qps": sharded_run["throughput_qps"],
        "multi_region_throughput_ratio":
            report["multi_region"]["throughput_ratio"],
        "single_region_throughput_ratio":
            report["single_region"]["throughput_ratio"],
        "same_shard_mismatches": parity["mismatched_same_shard"],
        "min_shard_candidate_hit_rate": min(
            (entry["candidate_cache_hit_rate"]
             for entry in per_shard.values()), default=0.0),
    }
    validate_report(report)
    return report


# ----------------------------------------------------------------------
# Report schema
# ----------------------------------------------------------------------
_TOP_KEYS = ("schema_version", "preset", "config", "network", "partition",
             "multi_region", "parity", "local_routing", "single_region",
             "headline")
_NUMERIC_BLOCKS = {
    "multi_region": ("requests", "cross_shard_requests", "throughput_ratio"),
    "parity": ("same_shard_requests", "mismatched_same_shard",
               "max_abs_score_diff_same_shard", "cross_shard_requests",
               "cross_shard_agreement"),
    "local_routing": ("throughput_qps", "throughput_ratio_vs_unsharded",
                      "same_shard_agreement"),
    "single_region": ("requests", "unsharded_qps", "sharded_qps",
                      "throughput_ratio"),
    "headline": ("num_shards", "multi_region_sharded_qps",
                 "multi_region_throughput_ratio",
                 "single_region_throughput_ratio", "same_shard_mismatches",
                 "min_shard_candidate_hit_rate"),
}


def validate_report(report: dict) -> None:
    """Check a report parses as valid ``BENCH_sharding.json``.

    Raises :class:`DataError` on a malformed document, a same-shard
    parity violation, or a degenerate (< 2 shard) run; used both when a
    report is produced and by the smoke test against re-parsed JSON.
    """
    if report.get("schema_version") != SCHEMA_VERSION:
        raise DataError(
            f"unexpected schema_version {report.get('schema_version')!r}")
    missing = [key for key in _TOP_KEYS if key not in report]
    if missing:
        raise DataError(f"report missing keys: {missing}")
    for block, keys in _NUMERIC_BLOCKS.items():
        for key in keys:
            value = report[block].get(key)
            if not isinstance(value, (int, float)) or not math.isfinite(value):
                raise DataError(
                    f"{block}.{key} must be a finite number, got {value!r}")
    if report["headline"]["num_shards"] < 2:
        raise DataError("sharding report must cover >= 2 shards")
    per_shard = report["multi_region"]["per_shard"]
    if len(per_shard) < 2:
        raise DataError("per-shard breakdown must cover >= 2 shards")
    for label, entry in per_shard.items():
        rate = entry.get("candidate_cache_hit_rate")
        if not isinstance(rate, (int, float)) or not math.isfinite(rate):
            raise DataError(
                f"per_shard[{label}].candidate_cache_hit_rate must be a "
                f"finite number, got {rate!r}")
    parity = report["parity"]
    if parity["mismatched_same_shard"] != 0:
        raise DataError(
            f"same-shard parity violation: "
            f"{parity['mismatched_same_shard']} sharded responses differ "
            f"from the unsharded service's")
    if not parity["max_abs_score_diff_same_shard"] <= PARITY_LIMIT:
        raise DataError(
            f"same-shard parity violation: max_abs_score_diff_same_shard="
            f"{parity['max_abs_score_diff_same_shard']!r}")


def write_report(report: dict, path: str | FilePath) -> FilePath:
    """Validate and write the report; returns the output path."""
    validate_report(report)
    out = FilePath(path)
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return out
