"""Coalesced scoring: one padded forward pass for many queued requests.

Per-query scoring wastes the batch dimension — a typical query carries
only ``k`` ≈ 5 candidate paths, so the GRU runs at batch 5.  The
:class:`BatchingScorer` queues the candidate lists of many concurrent
requests, concatenates them into padded batches of up to
``max_batch_size`` paths (``core.batching.encode_paths``), runs one
forward pass per batch, and scatters the scores back to each request's
ticket.  Because the recurrence is masked, padded steps propagate the
hidden state unchanged and every path's score is *identical* to what
sequential per-query scoring would produce.

Duplicate paths inside one flush are scored once, and a
:class:`~repro.serving.cache.ScoreCache` (keyed by model version) lets
repeat paths skip the forward pass across flushes.

Two batch-shape optimisations keep padded work proportional to real
work: flushed paths are *length-sorted* before chunking (each chunk pads
to its own maximum), and ``score_paths`` itself dispatches through the
fused scoring backend with per-bucket padding (see
:mod:`repro.nn.fused` and ``repro.core.batching.encode_path_buckets``).
"""

from __future__ import annotations

import threading
from collections.abc import Sequence

import numpy as np

from repro.core.model import PathRank
from repro.errors import ServingError
from repro.graph.path import Path
from repro.serving.cache import ScoreCache

__all__ = ["ScoreTicket", "BatchingScorer"]


class ScoreTicket:
    """Handle returned by :meth:`BatchingScorer.submit`.

    ``scores`` becomes available after the next :meth:`flush`; reading
    it earlier raises :class:`ServingError`.
    """

    __slots__ = ("paths", "_scores")

    def __init__(self, paths: Sequence[Path]) -> None:
        self.paths = list(paths)
        self._scores: np.ndarray | None = None

    @property
    def ready(self) -> bool:
        return self._scores is not None

    @property
    def scores(self) -> np.ndarray:
        if self._scores is None:
            raise ServingError("ticket not scored yet; call flush() first")
        return self._scores


class BatchingScorer:
    """Queues candidate lists and scores them in coalesced batches."""

    def __init__(self, max_batch_size: int = 64,
                 score_cache: ScoreCache | None = None) -> None:
        if max_batch_size < 1:
            raise ServingError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        self.max_batch_size = max_batch_size
        self.score_cache = score_cache
        self._pending: list[ScoreTicket] = []
        self._lock = threading.RLock()
        # Forward-pass accounting, for instrumentation and benchmarks.
        self.batches_run = 0
        self.paths_scored = 0
        self.cache_hits = 0
        #: Chaos seam (``scorer.flush`` injection point): armed by
        #: :meth:`RankingService.arm_faults`, ``None`` keeps the flush
        #: hot path at a single attribute check.
        self.faults = None

    def as_dict(self) -> dict[str, int]:
        """Forward-pass counters as one consistent snapshot.

        Taken under the scorer lock so a concurrent flush can't show a
        batch whose paths haven't been added yet — the view stats() and
        the metrics registry publish.
        """
        with self._lock:
            return {
                "batches_run": self.batches_run,
                "paths_scored": self.paths_scored,
                "cache_hits": self.cache_hits,
            }

    def pending_requests(self) -> int:
        return len(self._pending)

    def pending_paths(self) -> int:
        return sum(len(ticket.paths) for ticket in self._pending)

    def submit(self, paths: Sequence[Path]) -> ScoreTicket:
        ticket = ScoreTicket(paths)
        with self._lock:
            self._pending.append(ticket)
        return ticket

    def flush(self, model: PathRank, model_version: str | None = None) -> int:
        """Score every queued ticket; returns the number of forward batches.

        Scores are identical to per-query sequential scoring: the masked
        recurrence makes each path's result independent of its batch
        neighbours and of padding length.  Batches are drawn from a
        length-sorted order (plus per-bucket padding inside
        ``score_paths``), so mixed-length flushes pad to local maxima
        rather than the longest queued path.

        Concurrent callers should prefer :meth:`score_many`: a bare
        ``submit`` + ``flush`` pair lets another thread's flush claim the
        ticket and score it under *that thread's* model snapshot.
        """
        with self._lock:
            tickets, self._pending = self._pending, []
        if not tickets:
            return 0
        if self.faults is not None:
            self.faults.fire("scorer.flush")

        # The score cache is keyed by model version; with no version to
        # key on, two different models would silently share entries, so
        # the cache only participates when a version is supplied.
        use_cache = self.score_cache is not None and model_version is not None

        # Deduplicate by vertex sequence, then consult the score cache
        # for the whole flush at once (one lock round-trip).
        unique: dict[tuple[int, ...], Path] = {}
        for ticket in tickets:
            for path in ticket.paths:
                unique.setdefault(path.vertices, path)
        resolved: dict[tuple[int, ...], float] = {}
        if use_cache:
            resolved = self.score_cache.lookup_many(model_version,
                                                    list(unique.values()))
            self.cache_hits += len(resolved)
            for key in resolved:
                del unique[key]

        batches_before = self.batches_run
        # Length-sort before chunking so each fixed-size batch pads to
        # its *local* maximum instead of the flush-wide one: one
        # 120-vertex outlier then costs only its own batch.  Scores are
        # scattered back through `resolved`, so ordering is free.
        to_score = sorted(unique.values(), key=lambda path: path.num_vertices)
        chunks = [to_score[start:start + self.max_batch_size]
                  for start in range(0, len(to_score), self.max_batch_size)]
        # Models that can score several chunks concurrently (the
        # execution plane's pool proxy) expose ``score_paths_many``;
        # everything upstream of the forward pass — dedup, the score
        # cache, counters — is identical on both dispatch paths.
        score_chunks = getattr(model, "score_paths_many", None)
        if score_chunks is not None and chunks:
            all_scores = score_chunks(chunks)
        else:
            all_scores = (model.score_paths(chunk) for chunk in chunks)
        for chunk, scores in zip(chunks, all_scores):
            self.batches_run += 1
            self.paths_scored += len(chunk)
            scored = list(zip(chunk, scores.tolist()))
            for path, score in scored:
                resolved[path.vertices] = score
            if use_cache:
                self.score_cache.store_many(model_version, scored)

        for ticket in tickets:
            ticket._scores = np.array(
                [resolved[path.vertices] for path in ticket.paths], dtype=float
            )
        return self.batches_run - batches_before

    def score_many(self, model: PathRank,
                   candidate_lists: Sequence[Sequence[Path]],
                   model_version: str | None = None) -> list[np.ndarray]:
        """Atomically coalesce and score a group of candidate lists.

        Holding the lock across submit + flush guarantees the whole
        group is scored by *this* model, even when other threads are
        scoring against a different (hot-swapped) snapshot concurrently.
        """
        with self._lock:
            tickets = [self.submit(paths) for paths in candidate_lists]
            self.flush(model, model_version)
        return [ticket.scores for ticket in tickets]

    def score_paths(self, model: PathRank, paths: Sequence[Path],
                    model_version: str | None = None) -> np.ndarray:
        """Submit-and-flush convenience for a single candidate list."""
        return self.score_many(model, [paths], model_version)[0]
