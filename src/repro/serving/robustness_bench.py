"""Robustness benchmark: the resilience plane under injected failures.

Drives the PR-7 resilience plane (deadline budgets, bounded admission
with shedding, per-lane circuit breakers, deterministic retry) through
the seedable fault layer of :mod:`repro.serving.faults` and writes the
result as ``BENCH_robustness.json``:

* **dormant overhead + parity** — the same workload closed-loop through
  a control service (breakers off, no deadline) and a fully armed one
  (generous deadline, bounded queue, breakers, retry) with **no faults
  injected**: responses must be element-wise identical and throughput
  within a few percent — resilience must be free until something fails;
* **killed lane** — one region shard's scorer fails every call
  (``score@N:error``): the lane's breaker must trip, tripped traffic
  must route to the global shortest-path fallback, availability
  (model- or fallback-served) must stay >= 99% with **zero hung
  requests**, and after the fault is disarmed the breaker must recover
  through half-open probes;
* **slow scorer** — the hottest lane's scoring pass stalls past the
  request deadline (``score@N:delay``): affected requests terminate
  with structured ``deadline_exceeded`` errors at bounded latency
  instead of hanging clients, and the latency-SLO breaker trips on the
  slow-but-successful groups;
* **overload shedding** — an open-loop replay at ``overload_factor``
  times the measured sustainable rate against a bounded admission
  queue (capacity pinned by a deterministic ``prepare:delay`` stall
  armed in both the measurement and the replay): excess load is shed
  by policy (reject-with-retry-after or degrade-to-fallback) while
  admitted requests keep answering.

Consumed by ``benchmarks/bench_robustness.py`` (standalone + pytest
smoke mode) and the ``bench-robustness`` CLI subcommand, mirroring
``sharding_bench`` / ``serving_bench`` / ``core.scoring_bench``.
"""

from __future__ import annotations

import json
import math
import tempfile
import time
from dataclasses import asdict, dataclass, replace
from pathlib import Path as FilePath

from repro.errors import DataError
from repro.graph.builders import north_jutland_like
from repro.graph.partition import partition_network
from repro.ranking.training_data import Strategy, TrainingDataConfig
from repro.serving.engine import ServingEngine
from repro.serving.loadgen import (
    WorkloadConfig,
    generate_timed_workload,
    generate_workload,
    replay_open_loop,
    run_engine_workload,
)
from repro.serving.registry import ModelRegistry
from repro.serving.resilience import ResilienceConfig
from repro.serving.service import RankingService, ServingConfig
from repro.serving.serving_bench import PARITY_LIMIT, build_random_ranker
from repro.serving.sharding import ShardedRegistry

__all__ = [
    "RobustnessBenchConfig",
    "smoke_config",
    "full_config",
    "apply_overrides",
    "run_robustness_benchmark",
    "validate_report",
    "write_report",
]

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class RobustnessBenchConfig:
    """Knobs of one robustness benchmark run."""

    num_towns: int = 6
    seed: int = 11
    num_shards: int = 4
    partition_method: str = "voronoi"
    embedding_dim: int = 64
    hidden_size: int = 64
    fc_hidden: int = 32
    k: int = 8
    diversity_threshold: float = 0.8
    examine_limit: int = 100
    num_requests: int = 400
    num_hotspots: int = 40
    zipf_exponent: float = 1.1
    region_zipf_exponent: float = 1.0
    cross_shard_fraction: float = 0.3
    min_hop_distance: float = 500.0
    candidate_cache_size: int = 2048
    score_cache_size: int = 8192
    concurrency: int = 16
    flush_deadline_ms: float = 4.0
    max_batch_size: int = 128
    repeats: int = 3
    #: Armed-but-dormant arm: every mechanism live, none triggerable.
    dormant_deadline_ms: float = 120_000.0
    dormant_max_queue: int = 4096
    #: Chaos-arm breaker tuning: small windows so the trip/recover cycle
    #: fits in a benchmark run, not a production hour.
    breaker_window: int = 16
    breaker_min_samples: int = 4
    breaker_failure_rate: float = 0.5
    breaker_cooldown_ms: float = 300.0
    retry_attempts: int = 1
    retry_base_ms: float = 1.0
    #: Slow-scorer scenario: the injected stall must overshoot the
    #: deadline (so expiry is deterministic) and the latency SLO (so the
    #: breaker sees the slowness even though scoring succeeds).
    slow_deadline_ms: float = 60.0
    slow_delay_ms: float = 100.0
    breaker_latency_ms: float = 50.0
    #: Overload scenario: offered rate as a multiple of the measured
    #: closed-loop sustainable rate, against a bounded admission queue.
    #: The same per-request prepare stall is armed while measuring
    #: capacity and while replaying, so "2x sustainable" is
    #: deterministic instead of riding on cache warmth and CI machine
    #: speed.  The stall sits at *prepare* — what the admission-side
    #: worker pool does — so offered > capacity genuinely backs up the
    #: bounded inbox instead of an internal flush queue.
    overload_factor: float = 2.0
    overload_stall_ms: float = 25.0
    overload_max_queue: int = 32
    shed_policy: str = "reject"
    #: Client-side wait bound: chaos replays must never block forever.
    wait_timeout_s: float = 30.0
    #: Post-disarm recovery replay (victim-shard requests, small chunks
    #: so the half-open breaker sees several probe groups).
    recovery_requests: int = 24
    recovery_batch: int = 2
    preset: str = "full"

    def __post_init__(self) -> None:
        if self.num_towns < 2:
            raise ValueError(f"num_towns must be >= 2, got {self.num_towns}")
        if self.num_shards < 2:
            raise ValueError(
                f"num_shards must be >= 2 (the killed-lane scenario needs "
                f"a healthy lane to survive on), got {self.num_shards}")
        if self.num_requests < 1 or self.num_hotspots < 1:
            raise ValueError("num_requests and num_hotspots must be >= 1")
        if self.concurrency < 1 or self.repeats < 1:
            raise ValueError("concurrency and repeats must be >= 1")
        if self.overload_factor <= 1.0:
            raise ValueError(
                f"overload_factor must be > 1 (the point is overload), "
                f"got {self.overload_factor}")
        if self.slow_delay_ms <= self.slow_deadline_ms:
            raise ValueError(
                "slow_delay_ms must exceed slow_deadline_ms so the "
                "slow-scorer scenario deterministically expires requests")
        if self.wait_timeout_s <= 0.0:
            raise ValueError(
                f"wait_timeout_s must be > 0, got {self.wait_timeout_s}")
        if self.recovery_requests < 1 or self.recovery_batch < 1:
            raise ValueError(
                "recovery_requests and recovery_batch must be >= 1")


def smoke_config() -> RobustnessBenchConfig:
    """Tiny preset for the tier-1 pytest wrapper: two regions, a small
    model, short stalls and cooldowns — a few seconds end to end."""
    return RobustnessBenchConfig(
        num_towns=2, seed=7, num_shards=2, embedding_dim=32, hidden_size=32,
        fc_hidden=16, k=3, examine_limit=30, num_requests=80, num_hotspots=12,
        cross_shard_fraction=0.25, min_hop_distance=300.0,
        candidate_cache_size=512, score_cache_size=2048, concurrency=8,
        flush_deadline_ms=1.0, max_batch_size=24, repeats=2,
        breaker_window=8, breaker_min_samples=3, breaker_cooldown_ms=150.0,
        slow_deadline_ms=40.0, slow_delay_ms=80.0, breaker_latency_ms=30.0,
        overload_stall_ms=20.0, overload_max_queue=8, wait_timeout_s=15.0,
        recovery_requests=12, preset="smoke")


def full_config() -> RobustnessBenchConfig:
    """The headline preset behind the committed ``BENCH_robustness.json``."""
    return RobustnessBenchConfig()


def apply_overrides(
    config: RobustnessBenchConfig,
    requests: int | None = None,
    shards: int | None = None,
    concurrency: int | None = None,
    k: int | None = None,
    seed: int | None = None,
) -> RobustnessBenchConfig:
    """Apply the command-line overrides shared by the ``bench-robustness``
    CLI subcommand and the standalone benchmark entry point."""
    overrides: dict[str, object] = {}
    if requests is not None:
        overrides["num_requests"] = requests
    if shards is not None:
        overrides["num_shards"] = shards
    if concurrency is not None:
        overrides["concurrency"] = concurrency
    if k is not None:
        overrides["k"] = k
    if seed is not None:
        overrides["seed"] = seed
    return replace(config, **overrides) if overrides else config


# ----------------------------------------------------------------------
# Fixture assembly
# ----------------------------------------------------------------------
def _candidates(config: RobustnessBenchConfig) -> TrainingDataConfig:
    return TrainingDataConfig(strategy=Strategy.D_TKDI, k=config.k,
                              diversity_threshold=config.diversity_threshold,
                              examine_limit=config.examine_limit)


def _serving_config(config: RobustnessBenchConfig,
                    resilience: ResilienceConfig) -> ServingConfig:
    return ServingConfig(
        candidates=_candidates(config),
        candidate_cache_size=config.candidate_cache_size,
        score_cache_size=config.score_cache_size,
        max_batch_size=config.max_batch_size,
        concurrency=config.concurrency,
        flush_deadline_ms=config.flush_deadline_ms,
        resilience=resilience,
    )


def _control_resilience() -> ResilienceConfig:
    """The PR-6 arrangement: no deadline, no bound, no breakers."""
    return ResilienceConfig(breaker_enabled=False)


def _armed_resilience(config: RobustnessBenchConfig) -> ResilienceConfig:
    """Every mechanism live but untriggerable: the overhead being paid
    is exactly what a cautious production deployment would pay."""
    return ResilienceConfig(
        deadline_ms=config.dormant_deadline_ms,
        max_queue=config.dormant_max_queue,
        shed_policy=config.shed_policy,
        breaker_window=config.breaker_window,
        breaker_min_samples=config.breaker_min_samples,
        breaker_failure_rate=config.breaker_failure_rate,
        breaker_cooldown_ms=config.breaker_cooldown_ms,
        retry_attempts=config.retry_attempts,
        retry_base_ms=config.retry_base_ms,
    )


def _chaos_resilience(config: RobustnessBenchConfig,
                      deadline_ms: float | None = None,
                      latency_slo_ms: float | None = None,
                      max_queue: int = 0) -> ResilienceConfig:
    return ResilienceConfig(
        deadline_ms=deadline_ms,
        max_queue=max_queue,
        shed_policy=config.shed_policy,
        breaker_window=config.breaker_window,
        breaker_min_samples=config.breaker_min_samples,
        breaker_failure_rate=config.breaker_failure_rate,
        breaker_latency_ms=latency_slo_ms,
        breaker_cooldown_ms=config.breaker_cooldown_ms,
        retry_attempts=config.retry_attempts,
        retry_base_ms=config.retry_base_ms,
    )


def _unsharded_service(config: RobustnessBenchConfig, network, ranker,
                       root: FilePath,
                       resilience: ResilienceConfig) -> RankingService:
    registry = ModelRegistry(root, network)
    registry.publish(ranker, version="bench-a")
    service = RankingService(network, registry,
                             _serving_config(config, resilience))
    service.activate("bench-a")
    return service


def _sharded_service(config: RobustnessBenchConfig, network, partition,
                     root: FilePath, ranker,
                     resilience: ResilienceConfig) -> RankingService:
    sharded = ShardedRegistry(
        root, network, partition,
        candidate_cache_size=config.candidate_cache_size,
        score_cache_size=config.score_cache_size)
    sharded.publish(ranker, version="bench-a", activate=True)
    return RankingService(network, sharded,
                          _serving_config(config, resilience))


def _engine(config: RobustnessBenchConfig, service) -> ServingEngine:
    return ServingEngine(service, concurrency=config.concurrency,
                         flush_deadline_ms=config.flush_deadline_ms,
                         max_batch_size=config.max_batch_size)


def _best_engine_run(config: RobustnessBenchConfig, service,
                     workload) -> dict:
    """Closed-loop drive, best elapsed over ``repeats`` (fresh engine
    each repeat so close/drain costs are not carried across runs)."""
    best: dict = {}
    for _ in range(config.repeats):
        engine = _engine(config, service)
        summary = run_engine_workload(engine, workload,
                                      concurrency=config.concurrency)
        engine.close()
        if not best or summary["elapsed_s"] < best["elapsed_s"]:
            best = summary
    return best


def _availability(summary: dict) -> float:
    """Fraction of requests answered exactly or degraded (never hung)."""
    served = summary["served_by"]
    answered = served.get("model", 0) + served.get("fallback", 0)
    total = summary["requests"]
    return answered / total if total else 1.0


def _run_view(summary: dict) -> dict:
    view = {
        "requests": summary["requests"],
        "elapsed_s": summary["elapsed_s"],
        "throughput_qps": summary["throughput_qps"],
        "latency_ms": summary["latency_ms"],
        "served_by": summary["served_by"],
        "availability": _availability(summary),
    }
    for key in ("hung", "refused", "resilience", "offered_qps",
                "time_scale"):
        if key in summary:
            view[key] = summary[key]
    return view


def _compare(mine, theirs) -> tuple[int, float]:
    """Element-wise response comparison: mismatches + max score drift."""
    mismatches = 0
    max_diff = 0.0
    for a, b in zip(mine, theirs):
        identical = (a.served_by == b.served_by
                     and a.model_version == b.model_version
                     and [r.path.vertices for r in a.results]
                     == [r.path.vertices for r in b.results])
        if not identical:
            mismatches += 1
            continue
        for mine_r, theirs_r in zip(a.results, b.results):
            max_diff = max(max_diff, abs(mine_r.score - theirs_r.score))
    return mismatches, max_diff


def _victim_shard(service: RankingService, workload) -> int:
    """The shard owning the most requests: kill the hottest lane, so the
    scenario stresses the availability guarantee, not a corner."""
    counts: dict[int, int] = {}
    for request in workload:
        shard = service.router.route(request.source, request.target).shard
        counts[shard] = counts.get(shard, 0) + 1
    return max(counts, key=counts.get)


def _victim_requests(service: RankingService, workload, victim: int,
                     limit: int) -> list:
    picked = []
    for request in workload:
        if service.router.route(request.source,
                                request.target).shard == victim:
            picked.append(request)
            if len(picked) >= limit:
                break
    return picked


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
def _dormant_scenario(config: RobustnessBenchConfig, network, workload,
                      ranker, root: FilePath) -> dict:
    """No faults: an armed resilience plane must cost ~nothing and must
    not change a single response."""
    control = _unsharded_service(config, network, ranker, root / "control",
                                 _control_resilience())
    armed = _unsharded_service(config, network, ranker, root / "armed",
                               _armed_resilience(config))
    control.warm_up(workload)
    armed.warm_up(workload)
    control_run = _best_engine_run(config, control, workload)
    armed_run = _best_engine_run(config, armed, workload)
    mismatches, max_diff = _compare(armed.rank_batch(workload),
                                    control.rank_batch(workload))
    ratio = (armed_run["throughput_qps"] / control_run["throughput_qps"]
             if control_run["throughput_qps"] > 0 else math.inf)
    return {
        "requests": len(workload),
        "control": _run_view(control_run),
        "armed": _run_view(armed_run),
        "throughput_ratio": ratio,
        "mismatches": mismatches,
        "max_abs_score_diff": max_diff,
        "armed_counters": armed.res_counters.as_dict(),
    }


def _killed_lane_scenario(config: RobustnessBenchConfig, network, partition,
                          workload, ranker, root: FilePath) -> dict:
    """One lane's scorer fails every call: the breaker must trip, traffic
    must keep answering, and the lane must recover once the fault clears."""
    service = _sharded_service(config, network, partition, root / "killed",
                               ranker, _chaos_resilience(config))
    service.warm_up(workload)
    victim = _victim_shard(service, workload)
    engine = _engine(config, service)
    summary = run_engine_workload(engine, workload,
                                  concurrency=config.concurrency,
                                  fault_spec=f"score@{victim}:error",
                                  fault_seed=config.seed,
                                  wait_timeout_s=config.wait_timeout_s)
    engine.close()
    tripped = service.breakers[victim].as_dict()

    # Fault disarmed (the replay's context manager did it): wait out the
    # cooldown, then probe the lane back to health with small sync
    # chunks — each chunk is one scoring group, i.e. one half-open probe.
    time.sleep(config.breaker_cooldown_ms / 1000.0 + 0.05)
    probes = _victim_requests(service, workload, victim,
                              config.recovery_requests)
    recovery_ok = 0
    for start in range(0, len(probes), config.recovery_batch):
        chunk = probes[start:start + config.recovery_batch]
        recovery_ok += sum(response.served_by == "model"
                           for response in service.rank_batch(chunk))
    recovered = service.breakers[victim].as_dict()
    return {
        "victim_shard": victim,
        "fault_spec": f"score@{victim}:error",
        "run": _run_view(summary),
        "availability": _availability(summary),
        "hung": summary["hung"],
        "breaker_after_fault": tripped,
        "breaker_after_recovery": recovered,
        "recovery": {
            "requests": len(probes),
            "model_served": recovery_ok,
            "state": recovered["state"],
            "recoveries": recovered["recoveries"],
        },
    }


def _slow_scorer_scenario(config: RobustnessBenchConfig, network, partition,
                          workload, ranker, root: FilePath) -> dict:
    """The hottest lane stalls past the deadline: requests must expire
    with structured errors at bounded latency, and the latency SLO must
    trip the breaker even though scoring keeps succeeding."""
    resilience = _chaos_resilience(config,
                                   deadline_ms=config.slow_deadline_ms,
                                   latency_slo_ms=config.breaker_latency_ms)
    service = _sharded_service(config, network, partition, root / "slow",
                               ranker, resilience)
    service.warm_up(workload)
    victim = _victim_shard(service, workload)
    spec = f"score@{victim}:delay={config.slow_delay_ms:g}"
    engine = _engine(config, service)
    summary = run_engine_workload(engine, workload,
                                  concurrency=config.concurrency,
                                  fault_spec=spec, fault_seed=config.seed,
                                  wait_timeout_s=config.wait_timeout_s)
    engine.close()
    resilience_counts = summary.get("resilience", {})
    return {
        "victim_shard": victim,
        "fault_spec": spec,
        "deadline_ms": config.slow_deadline_ms,
        "injected_delay_ms": config.slow_delay_ms,
        "run": _run_view(summary),
        "hung": summary["hung"],
        "deadline_exceeded": resilience_counts.get("deadline_exceeded", 0),
        "p95_ms": summary["latency_ms"]["p95"],
        "breaker": service.breakers[victim].as_dict(),
    }


def _overload_scenario(config: RobustnessBenchConfig, network, partition,
                       workload_config: WorkloadConfig, workload, ranker,
                       root: FilePath) -> dict:
    """Open-loop at ``overload_factor`` times the sustainable rate: the
    bounded queue must shed the excess by policy, never hang it.

    The same ``prepare:delay`` stall is armed while measuring capacity
    (on an *unbounded* twin — shed rejections return instantly and
    would inflate a bounded service's closed-loop "throughput") and
    while replaying, so the worker pool's capacity is pinned by the
    deterministic stall rather than by cache warmth: "2x sustainable"
    is then actually an overload on any machine, and the backlog lands
    on the bounded inbox the shed policy guards (a *scoring* stall
    would back up the flush queue instead, past the admission bound).
    """
    stall = f"prepare:delay={config.overload_stall_ms:g}"
    unbounded = _sharded_service(config, network, partition,
                                 root / "overload-base", ranker,
                                 _chaos_resilience(config))
    unbounded.warm_up(workload)
    engine = _engine(config, unbounded)
    baseline = run_engine_workload(engine, workload,
                                   concurrency=config.concurrency,
                                   fault_spec=stall, fault_seed=config.seed,
                                   wait_timeout_s=config.wait_timeout_s)
    engine.close()
    sustainable_qps = baseline["throughput_qps"]
    # The stall bounds true capacity analytically: each of the engine's
    # ``concurrency`` workers spends >= stall_ms preparing one request,
    # so capacity <= concurrency / stall regardless of machine speed.
    # Offering ``overload_factor`` times that ceiling (or the measured
    # rate, whichever is higher) therefore guarantees a real overload —
    # 2x a closed-loop measurement alone would not, because closed-loop
    # clients idle while waiting and under-measure pool capacity.
    capacity_qps = config.concurrency * 1000.0 / config.overload_stall_ms
    offered_qps = max(sustainable_qps, capacity_qps) * config.overload_factor

    resilience = _chaos_resilience(config,
                                   max_queue=config.overload_max_queue)
    service = _sharded_service(config, network, partition, root / "overload",
                               ranker, resilience)
    service.warm_up(workload)
    timed = generate_timed_workload(
        network, replace(workload_config, arrival_rate_qps=offered_qps),
        rng=config.seed, partition=partition)
    engine = _engine(config, service)
    summary = replay_open_loop(engine, timed, fault_spec=stall,
                               fault_seed=config.seed,
                               wait_timeout_s=config.wait_timeout_s)
    engine.close()

    counters = service.res_counters.as_dict()
    shed_rejected = counters["shed_rejected"]
    shed_degraded = counters["shed_degraded"]
    served = summary["served_by"]
    answered = served.get("model", 0) + served.get("fallback", 0)
    non_shed = summary["requests"] - shed_rejected
    return {
        "sustainable_qps": sustainable_qps,
        "capacity_ceiling_qps": capacity_qps,
        "offered_qps": offered_qps,
        "overload_factor": config.overload_factor,
        "stall_ms": config.overload_stall_ms,
        "max_queue": config.overload_max_queue,
        "shed_policy": config.shed_policy,
        "run": _run_view(summary),
        "hung": summary["hung"],
        "shed_rejected": shed_rejected,
        "shed_degraded": shed_degraded,
        "shed_total": shed_rejected + shed_degraded,
        "non_shed_availability": (answered / non_shed if non_shed else 1.0),
    }


# ----------------------------------------------------------------------
# The benchmark
# ----------------------------------------------------------------------
def run_robustness_benchmark(
        config: RobustnessBenchConfig | None = None) -> dict:
    """Benchmark the resilience plane at the configured scale."""
    config = config or full_config()
    network = north_jutland_like(num_towns=config.num_towns, seed=config.seed)
    partition = partition_network(network, config.num_shards,
                                  method=config.partition_method,
                                  rng=config.seed)
    workload_config = WorkloadConfig(
        num_requests=config.num_requests, num_hotspots=config.num_hotspots,
        zipf_exponent=config.zipf_exponent,
        region_zipf_exponent=config.region_zipf_exponent,
        cross_shard_fraction=config.cross_shard_fraction,
        min_hop_distance=config.min_hop_distance)
    workload = generate_workload(network, workload_config, rng=config.seed,
                                 partition=partition)

    # One set of weights behind every arm: parity compares like with like.
    ranker = build_random_ranker(
        network, embedding_dim=config.embedding_dim,
        hidden_size=config.hidden_size, fc_hidden=config.fc_hidden,
        candidates=_candidates(config), seed=0)

    with tempfile.TemporaryDirectory() as tmp_root:
        root = FilePath(tmp_root)
        dormant = _dormant_scenario(config, network, workload, ranker, root)
        killed = _killed_lane_scenario(config, network, partition, workload,
                                       ranker, root)
        slow = _slow_scorer_scenario(config, network, partition, workload,
                                     ranker, root)
        overload = _overload_scenario(config, network, partition,
                                      workload_config, workload, ranker,
                                      root)

    report = {
        "schema_version": SCHEMA_VERSION,
        "preset": config.preset,
        "config": asdict(config),
        "network": {"vertices": network.num_vertices,
                    "edges": network.num_edges},
        "partition": partition.as_dict(),
        "dormant": dormant,
        "killed_lane": killed,
        "slow_scorer": slow,
        "overload": overload,
    }
    report["headline"] = {
        "dormant_throughput_ratio": dormant["throughput_ratio"],
        "dormant_mismatches": dormant["mismatches"],
        "killed_lane_availability": killed["availability"],
        "killed_lane_hung": killed["hung"],
        "breaker_trips": killed["breaker_after_fault"]["trips"],
        "breaker_recoveries": killed["recovery"]["recoveries"],
        "deadline_exceeded": slow["deadline_exceeded"],
        "slow_scorer_p95_ms": slow["p95_ms"],
        "shed_total": overload["shed_total"],
        "overload_non_shed_availability": overload["non_shed_availability"],
    }
    validate_report(report)
    return report


# ----------------------------------------------------------------------
# Report schema
# ----------------------------------------------------------------------
_TOP_KEYS = ("schema_version", "preset", "config", "network", "partition",
             "dormant", "killed_lane", "slow_scorer", "overload", "headline")
_NUMERIC_BLOCKS = {
    "dormant": ("requests", "throughput_ratio", "mismatches",
                "max_abs_score_diff"),
    "killed_lane": ("victim_shard", "availability", "hung"),
    "slow_scorer": ("victim_shard", "hung", "deadline_exceeded", "p95_ms"),
    "overload": ("sustainable_qps", "offered_qps", "shed_rejected",
                 "shed_degraded", "shed_total", "non_shed_availability",
                 "hung"),
    "headline": ("dormant_throughput_ratio", "dormant_mismatches",
                 "killed_lane_availability", "killed_lane_hung",
                 "breaker_trips", "breaker_recoveries", "deadline_exceeded",
                 "slow_scorer_p95_ms", "shed_total",
                 "overload_non_shed_availability"),
}

#: The headline availability floor under a killed lane.
AVAILABILITY_FLOOR = 0.99


def validate_report(report: dict) -> None:
    """Check a report parses as valid ``BENCH_robustness.json``.

    Raises :class:`DataError` on a malformed document or a violated
    resilience guarantee: a dormant-parity mismatch, a hung request
    anywhere, sub-floor availability under the killed lane, a breaker
    that never tripped or never recovered, a deadline that never fired,
    or an overload run that never shed.  Used both when a report is
    produced and by the smoke test against re-parsed JSON.
    """
    if report.get("schema_version") != SCHEMA_VERSION:
        raise DataError(
            f"unexpected schema_version {report.get('schema_version')!r}")
    missing = [key for key in _TOP_KEYS if key not in report]
    if missing:
        raise DataError(f"report missing keys: {missing}")
    for block, keys in _NUMERIC_BLOCKS.items():
        for key in keys:
            value = report[block].get(key)
            if not isinstance(value, (int, float)) or not math.isfinite(value):
                raise DataError(
                    f"{block}.{key} must be a finite number, got {value!r}")
    headline = report["headline"]
    if headline["dormant_mismatches"] != 0:
        raise DataError(
            f"dormant parity violation: {headline['dormant_mismatches']} "
            f"responses differ between the armed and control services "
            f"with no faults injected")
    if not report["dormant"]["max_abs_score_diff"] <= PARITY_LIMIT:
        raise DataError(
            f"dormant parity violation: max_abs_score_diff="
            f"{report['dormant']['max_abs_score_diff']!r}")
    hung = (headline["killed_lane_hung"] + report["slow_scorer"]["hung"]
            + report["overload"]["hung"])
    if hung != 0:
        raise DataError(
            f"{hung} requests hung past the client wait bound; the "
            f"resilience plane must never leave a caller blocked")
    if headline["killed_lane_availability"] < AVAILABILITY_FLOOR:
        raise DataError(
            f"killed-lane availability "
            f"{headline['killed_lane_availability']:.4f} below the "
            f"{AVAILABILITY_FLOOR} floor")
    if headline["breaker_trips"] < 1:
        raise DataError(
            "the killed lane's circuit breaker never tripped")
    if headline["breaker_recoveries"] < 1:
        raise DataError(
            "the killed lane's circuit breaker never recovered after "
            "the fault was disarmed")
    if headline["deadline_exceeded"] < 1:
        raise DataError(
            "the slow-scorer scenario never expired a request deadline")
    if headline["shed_total"] < 1:
        raise DataError(
            "the overload scenario never shed a request; the admission "
            "bound did not engage")
    if headline["overload_non_shed_availability"] < AVAILABILITY_FLOOR:
        raise DataError(
            f"overload non-shed availability "
            f"{headline['overload_non_shed_availability']:.4f} below the "
            f"{AVAILABILITY_FLOOR} floor")


def write_report(report: dict, path: str | FilePath) -> FilePath:
    """Validate and write the report; returns the output path."""
    validate_report(report)
    out = FilePath(path)
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return out
