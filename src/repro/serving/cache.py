"""Bounded LRU caches for the serving hot path.

Two things dominate per-query latency: candidate generation (Yen /
diversified enumeration over the graph) and the model forward pass.
Commuter traffic is heavily skewed toward a small pool of OD hotspots,
so both steps repeat constantly.  :class:`CandidateCache` memoises
candidate sets per ``(source, target, strategy, k)`` query signature;
:class:`ScoreCache` memoises per-path model scores keyed by the path's
vertex sequence *and the model version*, so a hot-swap never serves a
stale score.

All caches are thread-safe and strictly bounded; eviction is
least-recently-used.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Hashable, Sequence
from dataclasses import dataclass

from repro.errors import ConfigError, ServingError
from repro.graph.network import RoadNetwork
from repro.graph.path import Path
from repro.ranking.training_data import TrainingDataConfig
from repro.serving.pipeline import normalise_split

__all__ = ["CacheStats", "LRUCache", "CandidateCache", "ScoreCache",
           "carve_budget"]

_MISSING = object()


def carve_budget(total: int, weights: Sequence[float]) -> list[int]:
    """Proportional integer shares of a shared cache budget, each >= 1.

    Shares are carved from the remaining budget — leaving one entry for
    every later share — so the result stays within ``total`` whenever
    the budget covers the floors
    (``sum(shares) <= max(total, len(weights))``).  The single
    allocation rule behind both the per-shard cache budgets
    (:func:`repro.serving.sharding.split_budget`) and the per-split
    score-cache quota segments.
    """
    if total < 1:
        raise ConfigError(f"budget must be >= 1, got {total}")
    mass = float(sum(weights))
    if mass <= 0.0:
        raise ConfigError("budget weights must sum to > 0")
    shares: list[int] = []
    taken = 0
    for position, weight in enumerate(weights):
        still_to_serve = len(weights) - position - 1
        ideal = int(total * float(weight) / mass)
        shares.append(max(1, min(ideal, total - taken - still_to_serve)))
        taken += shares[-1]
    return shares


@dataclass
class CacheStats:
    """Counters every cache exposes for instrumentation."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Accumulate ``other`` into this record (returns self).

        The aggregation point for every multi-segment view (score-cache
        quota segments, per-shard lane roll-ups): new counters added
        here propagate to all of them.
        """
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        return self

    @classmethod
    def merged(cls, stats: "Sequence[CacheStats]") -> "CacheStats":
        total = cls()
        for entry in stats:
            total.merge(entry)
        return total


class LRUCache:
    """A thread-safe, bounded least-recently-used mapping.

    ``get`` refreshes recency; ``put`` evicts the least recently used
    entry once ``capacity`` is exceeded.  Statistics are cumulative and
    survive :meth:`clear`.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable, default: object = None) -> object:
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.stats.misses += 1
                return default
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def get_many(self, keys: Sequence[Hashable]) -> dict[Hashable, object]:
        """Present entries for ``keys`` under one lock acquisition.

        Returns only the keys that were found (recency refreshed, stats
        counted per key).  The batched scorer uses this so a flush of
        hundreds of paths costs one lock round-trip, not one per path —
        which matters once concurrent workers share the cache.
        """
        found: dict[Hashable, object] = {}
        with self._lock:
            for key in keys:
                value = self._entries.get(key, _MISSING)
                if value is _MISSING:
                    self.stats.misses += 1
                    continue
                self._entries.move_to_end(key)
                self.stats.hits += 1
                found[key] = value
        return found

    def put_many(self, items: Sequence[tuple[Hashable, object]]) -> None:
        """Store many entries under one lock acquisition (LRU-evicting)."""
        with self._lock:
            for key, value in items:
                if key in self._entries:
                    self._entries.move_to_end(key)
                self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def peek(self, key: Hashable, default: object = None) -> object:
        """Read without touching recency or statistics (for tests/metrics)."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            return default if value is _MISSING else value

    def put(self, key: Hashable, value: object) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def keys(self) -> list[Hashable]:
        """Current keys, least recently used first."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class CandidateCache:
    """Memoises candidate generation per query signature.

    Candidate sets depend only on the graph and the generation
    configuration, never on the model, so entries stay valid across
    model hot-swaps.  When constructed with the ``network``, every key
    also embeds :attr:`RoadNetwork.fingerprint`, so a mutated graph
    (edge added/removed, weight changed via remove + re-add) can never
    serve stale candidates: old entries simply stop matching and age out
    via LRU.  Without a network the caller owns invalidation via
    :meth:`clear`.

    :meth:`lookup` / :meth:`store` accept a per-call ``network``
    override: the sharded serving plane generates candidates on varying
    graphs (a shard subnetwork, a cross-shard corridor, or the full
    network on a reachability retry) and keys each entry by the graph
    actually used, so one per-shard cache holds all three shapes without
    collisions.
    """

    def __init__(self, capacity: int = 1024,
                 network: RoadNetwork | None = None) -> None:
        self._cache = LRUCache(capacity)
        self._network = network

    @staticmethod
    def key_for(source: int, target: int, config: TrainingDataConfig,
                network: RoadNetwork | None = None) -> tuple:
        # Every field that changes the generated candidate set must be in
        # the key; threshold and examine_limit both alter D-TkDI output,
        # and the network fingerprint pins the graph content itself.
        key = (source, target, config.strategy.value, config.k,
               config.diversity_threshold, config.examine_limit)
        if network is not None:
            key += (network.fingerprint,)
        return key

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    def __len__(self) -> int:
        return len(self._cache)

    def lookup(self, source: int, target: int, config: TrainingDataConfig,
               network: RoadNetwork | None = None) -> list[Path] | None:
        cached = self._cache.get(
            self.key_for(source, target, config, network or self._network))
        return None if cached is None else list(cached)

    def store(self, source: int, target: int, config: TrainingDataConfig,
              paths: Sequence[Path],
              network: RoadNetwork | None = None) -> None:
        self._cache.put(
            self.key_for(source, target, config, network or self._network),
            tuple(paths))

    def clear(self) -> None:
        self._cache.clear()


class ScoreCache:
    """Memoises per-path model scores, keyed by model version.

    Featurisation and scoring of a path are deterministic given the
    model weights, so a path seen under the same model version can skip
    the forward pass entirely.  Keys embed the version string; after a
    hot-swap old entries simply stop matching and age out via LRU.

    ``quotas`` makes the cache *split-aware*: a ``{version: weight}``
    mapping (or ``(version, weight)`` pairs, e.g. a normalised
    ``ServingConfig.traffic_split``) carves the capacity into one LRU
    segment per named version, sized proportionally to its weight, plus
    a shared segment for every other version.  A low-traffic A/B
    variant's entries then live in their own segment and can never be
    evicted by the majority split's churn.
    """

    #: Fraction of a quota-segmented cache's capacity held back for the
    #: shared segment, so versions *outside* the split (per-request
    #: pins, canary one-offs) keep a working cache instead of the
    #: single-entry sliver that normalised quota weights would leave.
    SHARED_FRACTION = 8

    def __init__(self, capacity: int = 8192, quotas=None) -> None:
        self._segments: dict[str, LRUCache] = {}
        if quotas:
            # Same validation/normalisation as the traffic split itself
            # — quotas are a {version: weight} of the same shape — but
            # surfaced as the cache layer's ConfigError.
            try:
                pairs = normalise_split(quotas)
            except ServingError as exc:
                raise ConfigError(f"invalid score-cache quotas: {exc}") \
                    from None
            self._quotas = pairs
            shared_reserve = max(1, capacity // self.SHARED_FRACTION)
            shares = carve_budget(
                max(capacity - shared_reserve, len(pairs)),
                [weight for _, weight in pairs])
            for (version, _), share in zip(pairs, shares):
                self._segments[version] = LRUCache(share)
            # Unquoted versions (explicit pins outside the split) share
            # the held-back remainder, never a quoted segment.
            self._cache = LRUCache(max(capacity - sum(shares), 1))
        else:
            self._quotas = None
            self._cache = LRUCache(capacity)

    def _segment(self, version: str | None) -> LRUCache:
        if version is not None:
            quoted = self._segments.get(version)
            if quoted is not None:
                return quoted
        return self._cache

    @property
    def capacity(self) -> int:
        """Total entry budget across the shared and quota segments."""
        return self._cache.capacity + sum(
            cache.capacity for cache in self._segments.values())

    @property
    def has_quotas(self) -> bool:
        return bool(self._segments)

    @property
    def quotas(self):
        """The normalised ``((version, weight), ...)`` quota pairs, or
        ``None`` — comparable across caches because construction runs
        every input through the same normalisation."""
        return self._quotas

    @staticmethod
    def key_for(version: str | None, path: Path) -> tuple:
        return (version, path.vertices)

    @property
    def stats(self) -> CacheStats:
        """Cumulative statistics, aggregated over all quota segments."""
        if not self._segments:
            return self._cache.stats
        return CacheStats.merged(
            [cache.stats
             for cache in [self._cache, *self._segments.values()]])

    def quota_stats(self) -> dict[str, dict[str, float]]:
        """Per-segment statistics (empty when no quotas are configured)."""
        if not self._segments:
            return {}
        stats = {version: cache.stats.as_dict()
                 for version, cache in sorted(self._segments.items())}
        stats["(shared)"] = self._cache.stats.as_dict()
        return stats

    def __len__(self) -> int:
        return len(self._cache) + sum(
            len(cache) for cache in self._segments.values())

    def lookup(self, version: str | None, path: Path) -> float | None:
        return self._segment(version).get(self.key_for(version, path))

    def lookup_many(self, version: str | None,
                    paths: Sequence[Path]) -> dict[tuple[int, ...], float]:
        """Cached scores for ``paths``, keyed by vertex sequence.

        One lock acquisition for the whole group (all paths of one call
        share a version, hence a segment); absent paths are simply
        missing from the result.
        """
        keys = [self.key_for(version, path) for path in paths]
        found = self._segment(version).get_many(keys)
        return {key[1]: value for key, value in found.items()}

    def store(self, version: str | None, path: Path, score: float) -> None:
        self._segment(version).put(self.key_for(version, path), float(score))

    def store_many(self, version: str | None,
                   scored: Sequence[tuple[Path, float]]) -> None:
        self._segment(version).put_many(
            [(self.key_for(version, path), float(score))
             for path, score in scored])

    def clear(self) -> None:
        self._cache.clear()
        for cache in self._segments.values():
            cache.clear()
