"""Bounded LRU caches for the serving hot path.

Two things dominate per-query latency: candidate generation (Yen /
diversified enumeration over the graph) and the model forward pass.
Commuter traffic is heavily skewed toward a small pool of OD hotspots,
so both steps repeat constantly.  :class:`CandidateCache` memoises
candidate sets per ``(source, target, strategy, k)`` query signature;
:class:`ScoreCache` memoises per-path model scores keyed by the path's
vertex sequence *and the model version*, so a hot-swap never serves a
stale score.

All caches are thread-safe and strictly bounded; eviction is
least-recently-used.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Hashable, Sequence
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.graph.network import RoadNetwork
from repro.graph.path import Path
from repro.ranking.training_data import TrainingDataConfig

__all__ = ["CacheStats", "LRUCache", "CandidateCache", "ScoreCache"]

_MISSING = object()


@dataclass
class CacheStats:
    """Counters every cache exposes for instrumentation."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class LRUCache:
    """A thread-safe, bounded least-recently-used mapping.

    ``get`` refreshes recency; ``put`` evicts the least recently used
    entry once ``capacity`` is exceeded.  Statistics are cumulative and
    survive :meth:`clear`.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable, default: object = None) -> object:
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.stats.misses += 1
                return default
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def get_many(self, keys: Sequence[Hashable]) -> dict[Hashable, object]:
        """Present entries for ``keys`` under one lock acquisition.

        Returns only the keys that were found (recency refreshed, stats
        counted per key).  The batched scorer uses this so a flush of
        hundreds of paths costs one lock round-trip, not one per path —
        which matters once concurrent workers share the cache.
        """
        found: dict[Hashable, object] = {}
        with self._lock:
            for key in keys:
                value = self._entries.get(key, _MISSING)
                if value is _MISSING:
                    self.stats.misses += 1
                    continue
                self._entries.move_to_end(key)
                self.stats.hits += 1
                found[key] = value
        return found

    def put_many(self, items: Sequence[tuple[Hashable, object]]) -> None:
        """Store many entries under one lock acquisition (LRU-evicting)."""
        with self._lock:
            for key, value in items:
                if key in self._entries:
                    self._entries.move_to_end(key)
                self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def peek(self, key: Hashable, default: object = None) -> object:
        """Read without touching recency or statistics (for tests/metrics)."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            return default if value is _MISSING else value

    def put(self, key: Hashable, value: object) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def keys(self) -> list[Hashable]:
        """Current keys, least recently used first."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class CandidateCache:
    """Memoises candidate generation per query signature.

    Candidate sets depend only on the graph and the generation
    configuration, never on the model, so entries stay valid across
    model hot-swaps.  When constructed with the ``network``, every key
    also embeds :attr:`RoadNetwork.fingerprint`, so a mutated graph
    (edge added/removed, weight changed via remove + re-add) can never
    serve stale candidates: old entries simply stop matching and age out
    via LRU.  Without a network the caller owns invalidation via
    :meth:`clear`.
    """

    def __init__(self, capacity: int = 1024,
                 network: RoadNetwork | None = None) -> None:
        self._cache = LRUCache(capacity)
        self._network = network

    @staticmethod
    def key_for(source: int, target: int, config: TrainingDataConfig,
                network: RoadNetwork | None = None) -> tuple:
        # Every field that changes the generated candidate set must be in
        # the key; threshold and examine_limit both alter D-TkDI output,
        # and the network fingerprint pins the graph content itself.
        key = (source, target, config.strategy.value, config.k,
               config.diversity_threshold, config.examine_limit)
        if network is not None:
            key += (network.fingerprint,)
        return key

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    def __len__(self) -> int:
        return len(self._cache)

    def lookup(self, source: int, target: int,
               config: TrainingDataConfig) -> list[Path] | None:
        cached = self._cache.get(
            self.key_for(source, target, config, self._network))
        return None if cached is None else list(cached)

    def store(self, source: int, target: int, config: TrainingDataConfig,
              paths: Sequence[Path]) -> None:
        self._cache.put(self.key_for(source, target, config, self._network),
                        tuple(paths))

    def clear(self) -> None:
        self._cache.clear()


class ScoreCache:
    """Memoises per-path model scores, keyed by model version.

    Featurisation and scoring of a path are deterministic given the
    model weights, so a path seen under the same model version can skip
    the forward pass entirely.  Keys embed the version string; after a
    hot-swap old entries simply stop matching and age out via LRU.
    """

    def __init__(self, capacity: int = 8192) -> None:
        self._cache = LRUCache(capacity)

    @staticmethod
    def key_for(version: str | None, path: Path) -> tuple:
        return (version, path.vertices)

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    def __len__(self) -> int:
        return len(self._cache)

    def lookup(self, version: str | None, path: Path) -> float | None:
        return self._cache.get(self.key_for(version, path))

    def lookup_many(self, version: str | None,
                    paths: Sequence[Path]) -> dict[tuple[int, ...], float]:
        """Cached scores for ``paths``, keyed by vertex sequence.

        One lock acquisition for the whole group; absent paths are
        simply missing from the result.
        """
        keys = [self.key_for(version, path) for path in paths]
        found = self._cache.get_many(keys)
        return {key[1]: value for key, value in found.items()}

    def store(self, version: str | None, path: Path, score: float) -> None:
        self._cache.put(self.key_for(version, path), float(score))

    def store_many(self, version: str | None,
                   scored: Sequence[tuple[Path, float]]) -> None:
        self._cache.put_many([(self.key_for(version, path), float(score))
                              for path, score in scored])

    def clear(self) -> None:
        self._cache.clear()
