"""Deterministic, seedable fault injection for the serving stack.

Chaos testing is only useful when a failing scenario can be replayed
exactly, so this layer is deterministic end to end: whether a rule
fires on a given hit is a hash draw over ``(seed, rule, hit_counter)``
— no RNG state, no wall clock — and every firing is counted so a test
or bench can assert precisely how much chaos it caused.

A :class:`FaultInjector` holds a list of :class:`FaultRule` records and
is consulted at *named injection points* threaded through the serving
stack (``service.py``, ``engine.py``, ``batching.py``, ``sharding.py``):

===================  =====================================================
point                fires
===================  =====================================================
``admit``            per request, during admission
``prepare``          per request, during candidate generation
``score``            per scoring group, inside the scoring attempt
                     (so retries re-draw and breakers see the failure)
``assemble``         per request, during response assembly
``engine.submit``    per request, at the engine front door
``engine.flush``     per flush batch, in the engine's scoring step
``scorer.flush``     per batch, inside :class:`BatchingScorer.flush`
``route``            per request, in :class:`ShardRouter.route`
``exec.worker``      per pool dispatch, in :class:`WorkerPool.submit` —
                     an ``error`` firing is translated into a real
                     ``SIGKILL`` of a live worker process, so the
                     genuine death-detection/respawn path runs
===================  =====================================================

Rules support three kinds: ``delay`` (latency spike of ``delay_ms``),
``error`` (raise :class:`~repro.errors.FaultInjected` — a
:class:`ServingError`, so the stack retries / trips breakers / degrades
exactly as for a real transient failure), and ``hang`` (block on an
event until :meth:`FaultInjector.disarm` releases it — how tests prove
nothing waits forever).  Rules can be scoped to one shard, rate-limited
(``rate``), warmup-skipped (``after``) and budget-capped (``count``).

The whole layer is **dormant by default**: a service without an armed
injector (``service.faults is None``) pays only an attribute check per
stage, and ``benchmarks/bench_robustness.py`` pins exact response
parity plus near-zero overhead for that state.

Specs are written ``point[@shard]:kind[:key=value,...]`` joined by
semicolons, e.g.::

    score@1:error                    # kill shard lane 1's scorer
    prepare:delay:delay_ms=20        # 20 ms latency spike on prepare
    score:error:rate=0.25,count=10   # 25% failures, at most 10
    engine.flush:hang                # hang a flush until disarm()

and parse via :func:`parse_fault_spec` (used by ``--fault-spec``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from hashlib import blake2b

from repro.errors import ConfigError, FaultInjected

__all__ = ["FAULT_KINDS", "INJECTION_POINTS", "FaultRule", "FaultInjector",
           "parse_fault_spec", "format_fault_spec"]

#: Supported fault behaviours.
FAULT_KINDS = ("delay", "error", "hang")

#: Named injection points wired through the serving stack.
INJECTION_POINTS = ("admit", "prepare", "score", "assemble",
                    "engine.submit", "engine.flush", "scorer.flush", "route",
                    "exec.worker")


@dataclass(frozen=True)
class FaultRule:
    """One armed fault: where, what, and how often.

    ``rate`` is the per-hit firing probability (decided by a
    deterministic hash draw, see :meth:`FaultInjector.fire`);
    ``after`` skips the first N hits entirely (warmup); ``count``
    caps total firings (``None`` = unlimited); ``shard`` restricts the
    rule to one shard lane (``None`` = all).
    """

    point: str
    kind: str
    delay_ms: float = 0.0
    rate: float = 1.0
    count: int | None = None
    after: int = 0
    shard: int | None = None

    def __post_init__(self) -> None:
        if self.point not in INJECTION_POINTS:
            raise ConfigError(
                f"unknown injection point {self.point!r}; "
                f"expected one of {INJECTION_POINTS}")
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}")
        if self.kind == "delay" and self.delay_ms <= 0.0:
            raise ConfigError(
                f"delay fault needs delay_ms > 0, got {self.delay_ms}")
        if self.delay_ms < 0.0:
            raise ConfigError(f"delay_ms must be >= 0, got {self.delay_ms}")
        if not 0.0 < self.rate <= 1.0:
            raise ConfigError(f"rate must be in (0, 1], got {self.rate}")
        if self.count is not None and self.count < 1:
            raise ConfigError(f"count must be >= 1 (or None), got {self.count}")
        if self.after < 0:
            raise ConfigError(f"after must be >= 0, got {self.after}")
        if self.shard is not None and self.shard < 0:
            raise ConfigError(f"shard must be >= 0 (or None), got {self.shard}")


class FaultInjector:
    """Evaluates armed :class:`FaultRule` records at injection points.

    Thread-safe; one injector is shared by the whole serving stack.
    Each rule keeps a *hit* counter (times a matching point was
    reached) and a *fired* counter (times it actually acted), and the
    fire decision for hit ``n`` is the hash draw
    ``blake2b((seed, rule_index, n)) / 2**64 < rate`` — replays with
    the same seed and request order inject identical chaos.
    """

    def __init__(self, rules, seed: int = 0) -> None:
        self.rules = tuple(rules)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._hits = [0] * len(self.rules)
        self._fired = [0] * len(self.rules)
        #: Set by :meth:`disarm`; hang faults wait on it.
        self._released = threading.Event()
        self._hanging = 0

    @classmethod
    def from_spec(cls, spec, seed: int = 0) -> "FaultInjector":
        """Build from a spec string, an iterable of rules, or another
        injector (re-armed fresh with the given seed)."""
        if isinstance(spec, FaultInjector):
            return cls(spec.rules, seed=seed)
        if isinstance(spec, str):
            return cls(parse_fault_spec(spec), seed=seed)
        return cls(spec, seed=seed)

    @property
    def armed(self) -> bool:
        return bool(self.rules) and not self._released.is_set()

    def _draw(self, index: int, hit: int) -> float:
        digest = blake2b(repr((self.seed, index, hit)).encode("utf-8"),
                         digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2.0 ** 64

    def fire(self, point: str, shard: int | None = None) -> None:
        """Evaluate all rules matching ``point`` (and ``shard``).

        Called from the serving hot path; returns immediately when
        disarmed or when no rule matches.  May sleep (``delay``),
        raise :class:`FaultInjected` (``error``) or block until
        :meth:`disarm` (``hang``).
        """
        if not self.armed:
            return
        actions: list[FaultRule] = []
        with self._lock:
            for index, rule in enumerate(self.rules):
                if rule.point != point:
                    continue
                if rule.shard is not None and shard is not None \
                        and rule.shard != shard:
                    continue
                hit = self._hits[index]
                self._hits[index] += 1
                if hit < rule.after:
                    continue
                if rule.count is not None and self._fired[index] >= rule.count:
                    continue
                if self._draw(index, hit) >= rule.rate:
                    continue
                self._fired[index] += 1
                actions.append(rule)
        # Act outside the lock so a hang/delay never blocks other rules.
        for rule in actions:
            if rule.kind == "delay":
                time.sleep(rule.delay_ms / 1000.0)
            elif rule.kind == "hang":
                with self._lock:
                    self._hanging += 1
                try:
                    self._released.wait()
                finally:
                    with self._lock:
                        self._hanging -= 1
        for rule in actions:
            if rule.kind == "error":
                raise FaultInjected(
                    f"injected fault at {point!r}"
                    + (f" (shard {shard})" if shard is not None else ""))

    def disarm(self) -> None:
        """Stop all future firings and release every hanging thread."""
        self._released.set()

    @property
    def hanging(self) -> int:
        """Threads currently blocked inside a ``hang`` fault."""
        with self._lock:
            return self._hanging

    def stats(self) -> dict[str, object]:
        with self._lock:
            return {
                "armed": self.armed,
                "hanging": self._hanging,
                "rules": [
                    {"point": rule.point, "kind": rule.kind,
                     "shard": rule.shard,
                     "hits": self._hits[index],
                     "fired": self._fired[index]}
                    for index, rule in enumerate(self.rules)
                ],
            }


def _parse_value(key: str, raw: str):
    if key in ("delay_ms", "rate"):
        return float(raw)
    if key in ("count", "after", "shard"):
        return int(raw)
    raise ConfigError(f"unknown fault rule option {key!r}")


def parse_fault_spec(text: str) -> tuple[FaultRule, ...]:
    """Parse ``point[@shard]:kind[:key=value,...]`` rules joined by ``;``.

    ``delay`` accepts the shorthand ``point:delay=<ms>`` in place of
    ``point:delay:delay_ms=<ms>``.  Raises :class:`ConfigError` on any
    malformed rule so a bad ``--fault-spec`` fails fast at the CLI.
    """
    rules: list[FaultRule] = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) < 2:
            raise ConfigError(
                f"fault rule {chunk!r} must look like point:kind[:options]")
        target, kind = parts[0].strip(), parts[1].strip()
        options = ":".join(parts[2:]).strip()
        shard: int | None = None
        if "@" in target:
            target, _, shard_text = target.partition("@")
            try:
                shard = int(shard_text)
            except ValueError:
                raise ConfigError(
                    f"fault rule {chunk!r} has a non-integer shard "
                    f"{shard_text!r}") from None
        kwargs: dict[str, object] = {}
        if "=" in kind:  # shorthand: point:delay=20
            kind, _, raw = kind.partition("=")
            if kind != "delay":
                raise ConfigError(
                    f"fault rule {chunk!r}: only delay supports the "
                    f"kind=value shorthand")
            kwargs["delay_ms"] = float(raw)
        for option in filter(None, (o.strip() for o in options.split(","))):
            if "=" not in option:
                raise ConfigError(
                    f"fault rule {chunk!r} option {option!r} must be "
                    f"key=value")
            key, _, raw = option.partition("=")
            try:
                kwargs[key.strip()] = _parse_value(key.strip(), raw.strip())
            except ValueError:
                raise ConfigError(
                    f"fault rule {chunk!r} option {option!r} has a "
                    f"malformed value") from None
        if shard is not None:
            kwargs["shard"] = shard
        try:
            rules.append(FaultRule(point=target, kind=kind, **kwargs))
        except TypeError:
            raise ConfigError(
                f"fault rule {chunk!r} repeats or misuses an option") from None
    if not rules:
        raise ConfigError(f"fault spec {text!r} contains no rules")
    return tuple(rules)


def format_fault_spec(rules) -> str:
    """Render rules back to the spec grammar (inverse of the parser)."""
    chunks = []
    for rule in rules:
        target = rule.point if rule.shard is None \
            else f"{rule.point}@{rule.shard}"
        options = []
        if rule.kind == "delay":
            options.append(f"delay_ms={rule.delay_ms:g}")
        if rule.rate != 1.0:
            options.append(f"rate={rule.rate:g}")
        if rule.count is not None:
            options.append(f"count={rule.count}")
        if rule.after:
            options.append(f"after={rule.after}")
        chunk = f"{target}:{rule.kind}"
        if options:
            chunk += ":" + ",".join(options)
        chunks.append(chunk)
    return ";".join(chunks)
