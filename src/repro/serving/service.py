"""The `RankingService` facade: online query answering over one network.

Ties the serving pieces together: candidate generation behind a
:class:`CandidateCache`, scoring behind a :class:`BatchingScorer` with a
version-keyed :class:`ScoreCache`, the model itself behind a
:class:`ModelRegistry` snapshot, and per-request latency / outcome
instrumentation.  When no model is active (or scoring fails with a
library error) the service degrades gracefully to the shortest path
instead of failing the request.

Internally the service is a **staged pipeline** over
:class:`~repro.serving.pipeline.QueryState` records:

* :meth:`RankingService.admit` — resolve the candidate configuration
  and the model snapshot (active, pinned, or A/B-split) for a request;
* :meth:`RankingService.prepare` — cache-aware candidate generation;
* :meth:`RankingService.score_states` — coalesced scoring of many
  states, grouped by model snapshot, with per-request degradation when
  a batch fails;
* :meth:`RankingService.assemble` — ranking, fallback, and metrics.

:meth:`rank_batch` simply runs the stages back to back; the concurrent
:class:`~repro.serving.engine.ServingEngine` drives the *same* stage
methods from worker threads with deadline-based flushing, which is what
makes its responses element-wise identical to the synchronous path.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field, replace

from repro.core.ranker import generate_candidates, rank_paths
from repro.errors import ReproError, ServingError
from repro.graph.network import RoadNetwork
from repro.graph.path import Path
from repro.graph.shortest_path import shortest_path
from repro.nn.fused import resolve_scoring_backend
from repro.ranking.training_data import TrainingDataConfig
from repro.serving.batching import BatchingScorer
from repro.serving.cache import CandidateCache, ScoreCache
from repro.serving.instrumentation import (
    LatencyTracker,
    ServiceCounters,
    SplitMetrics,
)
from repro.serving.pipeline import (
    QueryState,
    TrafficSplit,
    assign_split,
    normalise_split,
)
from repro.serving.registry import ActiveModel, ModelRegistry

__all__ = ["ServingConfig", "RankRequest", "RankedPath", "RankResponse",
           "RankingService"]

_UNRESOLVED = object()  # admit() sentinel: "look the snapshot up yourself"


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of one :class:`RankingService` instance.

    ``traffic_split`` (a ``{version: weight}`` mapping or ``(version,
    weight)`` pairs) routes each request to one of several published
    model versions with probability proportional to its weight —
    deterministically per request identity, so replays and the
    concurrent engine route identically.  ``score_cache_size=0``
    disables score memoisation (every request pays the forward pass;
    mainly for benchmarks isolating scoring work).  ``concurrency`` and
    ``flush_deadline_ms`` are defaults for
    :class:`~repro.serving.engine.ServingEngine` front doors built on
    top of this service.
    """

    candidates: TrainingDataConfig = field(default_factory=TrainingDataConfig)
    candidate_cache_size: int = 1024
    score_cache_size: int = 8192
    max_batch_size: int = 64
    fallback_to_shortest: bool = True
    latency_window: int = 4096
    traffic_split: TrafficSplit | None = None
    concurrency: int = 4
    flush_deadline_ms: float = 2.0

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.score_cache_size < 0:
            raise ValueError(
                f"score_cache_size must be >= 0, got {self.score_cache_size}"
            )
        if self.concurrency < 1:
            raise ValueError(
                f"concurrency must be >= 1, got {self.concurrency}"
            )
        if self.flush_deadline_ms < 0.0:
            raise ValueError(
                f"flush_deadline_ms must be >= 0, got {self.flush_deadline_ms}"
            )
        if self.traffic_split is not None:
            # Normalised once here; dataclass frozen-ness is bypassed the
            # sanctioned way since __post_init__ is part of construction.
            object.__setattr__(self, "traffic_split",
                               normalise_split(self.traffic_split))


@dataclass(frozen=True)
class RankRequest:
    """One live (source, destination) query.

    ``k`` overrides the service's configured candidate-set size for this
    request only (it participates in the candidate-cache key).
    ``model_version`` pins the request to a specific published model
    version, overriding both the active model and any traffic split.
    """

    source: int
    target: int
    k: int | None = None
    request_id: int | None = None
    model_version: str | None = None


@dataclass(frozen=True)
class RankedPath:
    """One ranked suggestion: position 1 is the top recommendation."""

    path: Path
    score: float
    position: int


@dataclass(frozen=True)
class RankResponse:
    """Outcome of one request, with serving provenance attached."""

    request: RankRequest
    results: tuple[RankedPath, ...]
    served_by: str  # "model" | "fallback" | "error"
    model_version: str | None
    candidate_cache_hit: bool
    latency_ms: float
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.served_by != "error"

    @property
    def top(self) -> RankedPath | None:
        return self.results[0] if self.results else None


class RankingService:
    """Answers ranking queries against the registry's active model."""

    def __init__(self, network: RoadNetwork, registry: ModelRegistry,
                 config: ServingConfig | None = None) -> None:
        self.network = network
        self.registry = registry
        self.config = config or ServingConfig()
        # Keyed by the network fingerprint too, so a graph mutation (e.g.
        # a live incident closing a road) invalidates entries implicitly.
        self.candidate_cache = CandidateCache(self.config.candidate_cache_size,
                                              network=network)
        self.score_cache = (ScoreCache(self.config.score_cache_size)
                            if self.config.score_cache_size > 0 else None)
        self.scorer = BatchingScorer(self.config.max_batch_size,
                                     score_cache=self.score_cache)
        self.latency = LatencyTracker(self.config.latency_window)
        self.counters = ServiceCounters()
        self.split_metrics = SplitMetrics(self.config.latency_window)

    # ------------------------------------------------------------------
    # Stage 1: admission
    # ------------------------------------------------------------------
    def admit(self, request: RankRequest,
              default: ActiveModel | None | object = _UNRESOLVED) -> QueryState:
        """Open a :class:`QueryState` and route it to a model snapshot.

        ``default`` lets a batch caller take one registry snapshot for
        every unsplit request (so a concurrent hot-swap cannot divide a
        batch across versions); pinned and split-routed requests resolve
        their own snapshot regardless.
        """
        state = QueryState(request=request)
        try:
            state.config = self._candidate_config(request)
        except ValueError as exc:  # hostile per-request k override
            state.error = str(exc)
            return state
        version = request.model_version
        if version is None and self.config.traffic_split is not None:
            version = assign_split(request, self.config.traffic_split)
        try:
            if version is not None:
                state.active, state.split = self.registry.resolve(version), version
            elif default is _UNRESOLVED:
                state.active = self.registry.snapshot()
            else:
                state.active = default
        except ServingError as exc:  # unpublished pin / stale split target
            state.error = str(exc)
        return state

    def _candidate_config(self, request: RankRequest) -> TrainingDataConfig:
        base = self.config.candidates
        if request.k is None or request.k == base.k:
            return base
        return replace(base, k=request.k,
                       examine_limit=max(base.examine_limit, request.k))

    # ------------------------------------------------------------------
    # Stage 2: candidate generation (cache-aware)
    # ------------------------------------------------------------------
    def prepare(self, state: QueryState) -> QueryState:
        """Fill in candidate paths; skipped for doomed/fallback states.

        Candidate enumeration is wasted work when only the shortest-path
        fallback can answer, so a state with no snapshot passes through.
        """
        if state.error is not None or state.active is None:
            return state
        try:
            state.paths, state.cache_hit = self._candidates(state.request,
                                                            state.config)
        except ReproError as exc:
            state.error = str(exc)
        return state

    def _candidates(self, request: RankRequest,
                    config: TrainingDataConfig) -> tuple[list[Path], bool]:
        cached = self.candidate_cache.lookup(request.source, request.target,
                                             config)
        if cached is not None:
            return cached, True
        paths = generate_candidates(self.network, request.source,
                                    request.target, config)
        self.candidate_cache.store(request.source, request.target, config,
                                   paths)
        return paths, False

    # ------------------------------------------------------------------
    # Stage 3: coalesced scoring
    # ------------------------------------------------------------------
    def score_states(self, states: Sequence[QueryState]) -> None:
        """Score every scorable state, one coalesced pass per snapshot.

        States are grouped by their model snapshot (A/B splits and
        hot-swaps can mix snapshots within one batch) and each group is
        scored atomically through the :class:`BatchingScorer`.  A batch
        failure degrades *only* the affected requests: each member is
        retried individually, and only the ones that still fail fall
        back to the shortest path.
        """
        groups: dict[int, list[QueryState]] = {}
        for state in states:
            if state.scorable:
                groups.setdefault(state.active.generation, []).append(state)
        for members in groups.values():
            active = members[0].active
            try:
                scored = self.scorer.score_many(
                    active.model, [state.paths for state in members],
                    active.version)
            except ReproError:
                self._score_individually(members)
            else:
                for state, scores in zip(members, scored):
                    state.scores = scores.tolist()

    def _score_individually(self, states: Sequence[QueryState]) -> None:
        """Retry a failed batch one request at a time.

        Isolates the poison request(s): a path that breaks the forward
        pass takes down its own request only, and everything else in the
        flush still gets model-served.
        """
        for state in states:
            active = state.active
            try:
                scores = self.scorer.score_paths(active.model, state.paths,
                                                 active.version)
            except ReproError as exc:
                state.active = None
                state.degraded = str(exc)
            else:
                state.scores = scores.tolist()

    # ------------------------------------------------------------------
    # Stage 4: response assembly
    # ------------------------------------------------------------------
    def assemble(self, state: QueryState, record: bool = True,
                 completed: float | None = None) -> RankResponse:
        """Terminate a state into a :class:`RankResponse` (+ metrics).

        ``completed`` (a ``perf_counter`` value) lets a deferred caller
        pin the latency clock to when the pipeline actually finished the
        request, rather than when the caller got around to collecting
        the response.
        """
        end = completed if completed is not None else time.perf_counter()
        elapsed_ms = (end - state.started) * 1000.0
        if state.error is not None:
            response = self._error_response(state.request, state.error,
                                            state.cache_hit, elapsed_ms,
                                            record)
        elif state.active is None:
            response = self._fallback_response(state.request, state.cache_hit,
                                               elapsed_ms, state.degraded,
                                               record)
        else:
            response = self._model_response(state, elapsed_ms, record)
        if record:
            self.latency.record(response.latency_ms)
            self.counters.bump("requests")
            self.split_metrics.record(state.split, response.served_by,
                                      response.latency_ms)
        state.response = response
        return response

    # ------------------------------------------------------------------
    # Serving facade
    # ------------------------------------------------------------------
    def rank(self, request: RankRequest) -> RankResponse:
        """Answer one query; never raises for per-request failures."""
        return self.rank_batch([request])[0]

    def rank_batch(self, requests: Sequence[RankRequest]) -> list[RankResponse]:
        """Answer many queries with one coalesced scoring pass per model.

        The default snapshot is taken once for the whole batch, so a
        concurrent hot-swap cannot split the unsplit portion of a batch
        across versions.
        """
        if not requests:
            return []
        default = self.registry.snapshot()
        states = [self.admit(request, default=default) for request in requests]
        for state in states:
            self.prepare(state)
        self.score_states(states)
        return [self.assemble(state) for state in states]

    def warm_up(self, requests: Sequence[RankRequest]) -> int:
        """Replay a recorded query mix through the caches, off the books.

        Runs the candidate and scoring stages for every distinct request
        so the candidate cache (and score cache, when enabled) are hot
        before live traffic arrives — the deploy-time cure for the cold
        p95 cliff.  Nothing is recorded in the latency/counter metrics;
        returns the number of requests replayed.
        """
        seen: set[tuple] = set()
        states = []
        for request in requests:
            key = (request.source, request.target, request.k,
                   request.model_version)
            if key in seen:
                continue
            seen.add(key)
            states.append(self.admit(request))
        for state in states:
            self.prepare(state)
        self.score_states(states)
        for state in states:
            self.assemble(state, record=False)
        return len(states)

    def _model_response(self, state: QueryState, elapsed_ms: float,
                        record: bool) -> RankResponse:
        ranked = rank_paths(state.paths, state.scores)
        results = tuple(
            RankedPath(path=path, score=score, position=position)
            for position, (path, score) in enumerate(ranked, start=1)
        )
        if record:
            self.counters.bump("model_served")
        return RankResponse(request=state.request, results=results,
                            served_by="model",
                            model_version=state.active.version,
                            candidate_cache_hit=state.cache_hit,
                            latency_ms=elapsed_ms)

    def _fallback_response(self, request: RankRequest, hit: bool,
                           elapsed_ms: float, cause: str | None,
                           record: bool = True) -> RankResponse:
        if not self.config.fallback_to_shortest:
            reason = cause or "no active model"
            return self._error_response(
                request, f"{reason} (fallback disabled)", hit, elapsed_ms,
                record)
        try:
            path = shortest_path(self.network, request.source, request.target)
        except ReproError as exc:
            return self._error_response(request, str(exc), hit, elapsed_ms,
                                        record)
        if record:
            self.counters.bump("fallback_served")
        results = (RankedPath(path=path, score=0.0, position=1),)
        return RankResponse(request=request, results=results,
                            served_by="fallback", model_version=None,
                            candidate_cache_hit=hit,
                            latency_ms=elapsed_ms, error=cause)

    def _error_response(self, request: RankRequest, error: str, hit: bool,
                        elapsed_ms: float, record: bool = True) -> RankResponse:
        if record:
            self.counters.bump("failed")
        return RankResponse(request=request, results=(), served_by="error",
                            model_version=None, candidate_cache_hit=hit,
                            latency_ms=elapsed_ms, error=error)

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def activate(self, version: str) -> ActiveModel:
        """Hot-swap to ``version`` (in-flight batches keep their snapshot)."""
        active = self.registry.activate(version)
        self.counters.bump("hot_swaps")
        return active

    def stats(self) -> dict[str, object]:
        """Everything ``serve --json`` and the load benchmark report."""
        active = self.registry.snapshot()
        score_cache = (self.score_cache.stats.as_dict()
                       if self.score_cache is not None
                       else {"disabled": True})
        return {
            "active_version": active.version if active else None,
            "counters": self.counters.as_dict(),
            "latency": self.latency.as_dict(),
            "splits": self.split_metrics.as_dict(),
            "candidate_cache": self.candidate_cache.stats.as_dict(),
            "score_cache": score_cache,
            "scoring": {
                "batches_run": self.scorer.batches_run,
                "paths_scored": self.scorer.paths_scored,
                "max_batch_size": self.scorer.max_batch_size,
                "backend": resolve_scoring_backend(),
            },
        }
