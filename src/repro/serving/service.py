"""The `RankingService` facade: online query answering over one network.

Ties the serving pieces together: candidate generation behind a
:class:`CandidateCache`, scoring behind a :class:`BatchingScorer` with a
version-keyed :class:`ScoreCache`, the model itself behind a
:class:`ModelRegistry` snapshot, and per-request latency / outcome
instrumentation.  When no model is active (or scoring fails with a
library error) the service degrades gracefully to the shortest path
instead of failing the request.

Internally the service is a **staged pipeline** over
:class:`~repro.serving.pipeline.QueryState` records:

* :meth:`RankingService.admit` — route the request to its region shard
  (sharded services), then resolve the candidate configuration and the
  model snapshot (active, pinned, or A/B-split) for it;
* :meth:`RankingService.prepare` — cache-aware candidate generation on
  the request's routing graph;
* :meth:`RankingService.score_states` — coalesced scoring of many
  states, grouped per *(shard, model snapshot)*, with per-request
  degradation when a batch fails;
* :meth:`RankingService.assemble` — ranking, fallback, and metrics.

:meth:`rank_batch` simply runs the stages back to back; the concurrent
:class:`~repro.serving.engine.ServingEngine` drives the *same* stage
methods from worker threads with deadline-based flushing, which is what
makes its responses element-wise identical to the synchronous path.

**Shard plane.**  Every stage indexes its resources through a per-shard
:class:`~repro.serving.sharding.ShardLane` (registry, candidate cache,
score cache, scorer).  An unsharded service is the one-lane degenerate
case — lane 0 over the full network — so the classic
``RankingService(network, registry)`` construction behaves exactly as
before.  Constructing the service with a
:class:`~repro.serving.sharding.ShardedRegistry` instead activates the
plane: a :class:`~repro.serving.sharding.ShardRouter` tags each request
with its owning shard at admission, candidate generation runs on the
request's routing graph (full network by default, shard subnetwork
under ``local_candidates``, cross-shard corridor), and scoring batches
coalesce per shard lane.

**Execution plane.**  ``ServingConfig.execution`` selects how the
CPU-bound stages run: ``"inline"`` (the default — behaviour identical
to before the plane existed), ``"threads"`` (independent scoring
groups fan out across threads), or ``"processes"`` (an
:class:`~repro.exec.plane.ExecutionPlane` of worker processes attached
zero-copy to shared-memory CSR and weight segments executes candidate
generation and the padded forward passes, sidestepping the GIL).  Every
offload degrades to its inline path on pool failure, so the plane never
lowers availability.  See ``docs/parallelism.md``.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Sequence
from dataclasses import dataclass, field, replace

from repro.core.ranker import generate_candidates, rank_paths
from repro.errors import ExecError, NoPathError, ReproError, ServingError
from repro.graph.csr import csr_if_built
from repro.graph.network import RoadNetwork
from repro.graph.path import Path
from repro.graph.shortest_path import shortest_path
from repro.nn.fused import compiled_if_cached, resolve_scoring_backend
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.ranking.training_data import TrainingDataConfig
from repro.serving.batching import BatchingScorer
from repro.serving.cache import CacheStats, CandidateCache, ScoreCache
from repro.serving.faults import FaultInjector, parse_fault_spec
from repro.serving.instrumentation import (
    LatencyTracker,
    ServiceCounters,
    ShardMetrics,
    SplitMetrics,
    shard_label,
)
from repro.serving.pipeline import (
    QueryState,
    TrafficSplit,
    assign_split,
    normalise_split,
    tightest_remaining_ms,
)
from repro.serving.registry import ActiveModel, ModelRegistry
from repro.serving.resilience import (
    CircuitBreaker,
    ResilienceConfig,
    ResilienceCounters,
    retry_backoff,
)
from repro.serving.sharding import (
    CROSS_SHARD_POLICIES,
    ShardedRegistry,
    ShardLane,
    ShardRouter,
)

__all__ = ["EXECUTION_MODES", "ServingConfig", "RankRequest", "RankedPath",
           "RankResponse", "RankingService"]

_UNRESOLVED = object()  # admit() sentinel: "look the snapshot up yourself"

#: Execution-plane modes: ``"inline"`` scores groups sequentially in the
#: calling thread (the historical behaviour, and the default);
#: ``"threads"`` fans independent *(shard, snapshot)* groups across
#: ad-hoc threads; ``"processes"`` additionally offloads candidate
#: generation and the padded forward passes to a pool of worker
#: processes over shared-memory hot-state (:mod:`repro.exec`).
EXECUTION_MODES = ("inline", "threads", "processes")


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of one :class:`RankingService` instance.

    ``traffic_split`` (a ``{version: weight}`` mapping or ``(version,
    weight)`` pairs) routes each request to one of several published
    model versions with probability proportional to its weight —
    deterministically per request identity, so replays and the
    concurrent engine route identically.  ``score_cache_size=0``
    disables score memoisation (every request pays the forward pass;
    mainly for benchmarks isolating scoring work) — on a sharded
    service too, where cache *capacities* otherwise come from the
    :class:`~repro.serving.sharding.ShardedRegistry`'s global budget
    rather than the ``*_cache_size`` fields here.
    ``score_cache_quotas`` makes the score cache split-aware: the
    default ``"auto"`` derives per-version segment quotas from
    ``traffic_split`` (so a 5% variant keeps 5% of the cache to itself
    instead of being churned out by the majority split), ``None``
    disables segmentation, and an explicit ``{version: weight}`` map
    pins custom quotas.  ``concurrency`` and ``flush_deadline_ms`` are
    defaults for :class:`~repro.serving.engine.ServingEngine` front
    doors built on top of this service.  ``cross_shard_policy`` /
    ``local_candidates`` configure the
    :class:`~repro.serving.sharding.ShardRouter` of a sharded service
    (inert otherwise): cross-shard queries route through the
    boundary-stitched corridor subgraph (``"corridor"``) or the full
    network (``"fallback"``), and ``local_candidates=True`` opts
    same-shard candidate generation onto the shard subnetwork (faster,
    boundary-approximate; the default keeps it on the full network so
    same-shard rankings exactly match an unsharded service's).  An
    explicitly injected ``router=`` carries its *own* policy and
    overrides both fields.
    """

    candidates: TrainingDataConfig = field(default_factory=TrainingDataConfig)
    candidate_cache_size: int = 1024
    score_cache_size: int = 8192
    max_batch_size: int = 64
    fallback_to_shortest: bool = True
    latency_window: int = 4096
    traffic_split: TrafficSplit | None = None
    score_cache_quotas: object = "auto"
    concurrency: int = 4
    #: Engine flush deadline in milliseconds, or ``"auto"`` to let the
    #: engine derive it continuously from the observed arrival rate and
    #: per-path scoring cost (see
    #: :class:`~repro.serving.engine.AdaptiveFlushPolicy`).
    flush_deadline_ms: float | str = 2.0
    cross_shard_policy: str = "corridor"
    local_candidates: bool = False
    #: Run each cross-shard corridor route through its
    #: :class:`~repro.graph.partition.CorridorCertificate` first:
    #: certified queries keep the small corridor graph, the rest widen
    #: to the full network (exactness over speed).  Outcome counters
    #: surface under ``stats()["sharding"]["routing"]``.
    certify_corridors: bool = False
    #: Fraction of requests carrying a per-stage trace (0 disables
    #: tracing entirely; 1.0 traces every request).  Sampled traces feed
    #: the ``serving.stage.*`` histograms and the slow-request exemplar
    #: buffer in ``stats()["trace"]``.
    trace_sample: float = 0.0
    #: Slow-request exemplars retained (top-K by latency, full span
    #: breakdown each).
    trace_exemplars: int = 16
    #: Resilience plane: deadlines, admission bounds + shed policy,
    #: per-lane circuit breakers, retry backoff.  The defaults keep
    #: every mechanism dormant or free (see
    #: :class:`~repro.serving.resilience.ResilienceConfig`).
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    #: Chaos testing: a fault-spec string (see
    #: :func:`~repro.serving.faults.parse_fault_spec`) or a tuple of
    #: :class:`~repro.serving.faults.FaultRule` records armed at
    #: construction.  ``None`` (the default) keeps the fault layer
    #: dormant — a single attribute check per stage.
    fault_spec: object = None
    #: Determinism seed for the fault layer's firing draws.
    fault_seed: int = 0
    #: Execution plane (see :data:`EXECUTION_MODES`).  The default
    #: ``"inline"`` keeps the plane fully dormant: no worker processes,
    #: no shared-memory segments, and stage behaviour bit-identical to
    #: a service built before the plane existed.
    execution: str = "inline"
    #: Worker processes behind ``execution="processes"`` (ignored
    #: otherwise).
    workers: int = 2

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.score_cache_size < 0:
            raise ValueError(
                f"score_cache_size must be >= 0, got {self.score_cache_size}"
            )
        if self.concurrency < 1:
            raise ValueError(
                f"concurrency must be >= 1, got {self.concurrency}"
            )
        if isinstance(self.flush_deadline_ms, str):
            if self.flush_deadline_ms != "auto":
                raise ValueError(
                    f"flush_deadline_ms must be a number or 'auto', "
                    f"got {self.flush_deadline_ms!r}"
                )
        elif self.flush_deadline_ms < 0.0:
            raise ValueError(
                f"flush_deadline_ms must be >= 0, got {self.flush_deadline_ms}"
            )
        if self.execution not in EXECUTION_MODES:
            raise ValueError(
                f"execution must be one of {EXECUTION_MODES}, "
                f"got {self.execution!r}"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ValueError(
                f"trace_sample must be in [0, 1], got {self.trace_sample}"
            )
        if self.trace_exemplars < 0:
            raise ValueError(
                f"trace_exemplars must be >= 0, got {self.trace_exemplars}"
            )
        if self.cross_shard_policy not in CROSS_SHARD_POLICIES:
            raise ValueError(
                f"cross_shard_policy must be one of {CROSS_SHARD_POLICIES}, "
                f"got {self.cross_shard_policy!r}"
            )
        if self.traffic_split is not None:
            # Normalised once here; dataclass frozen-ness is bypassed the
            # sanctioned way since __post_init__ is part of construction.
            object.__setattr__(self, "traffic_split",
                               normalise_split(self.traffic_split))
        if self.score_cache_quotas is not None \
                and self.score_cache_quotas != "auto":
            object.__setattr__(self, "score_cache_quotas",
                               normalise_split(self.score_cache_quotas))
        if isinstance(self.fault_spec, str):
            # Parse eagerly so a malformed --fault-spec fails at
            # construction, not on the first request.
            object.__setattr__(self, "fault_spec",
                               parse_fault_spec(self.fault_spec))

    def resolved_score_quotas(self) -> TrafficSplit | None:
        """The per-split score-cache quotas this config asks for."""
        if self.score_cache_quotas == "auto":
            return self.traffic_split
        return self.score_cache_quotas


@dataclass(frozen=True)
class RankRequest:
    """One live (source, destination) query.

    ``k`` overrides the service's configured candidate-set size for this
    request only (it participates in the candidate-cache key).
    ``model_version`` pins the request to a specific published model
    version, overriding both the active model and any traffic split.
    ``deadline_ms`` caps this request's end-to-end budget (overriding
    ``ServingConfig.resilience.deadline_ms``); when it expires the
    request terminates with a structured ``deadline_exceeded`` error
    instead of occupying later pipeline stages.
    """

    source: int
    target: int
    k: int | None = None
    request_id: int | None = None
    model_version: str | None = None
    deadline_ms: float | None = None


@dataclass(frozen=True)
class RankedPath:
    """One ranked suggestion: position 1 is the top recommendation."""

    path: Path
    score: float
    position: int


@dataclass(frozen=True)
class RankResponse:
    """Outcome of one request, with serving provenance attached."""

    request: RankRequest
    results: tuple[RankedPath, ...]
    served_by: str  # "model" | "fallback" | "error"
    model_version: str | None
    candidate_cache_hit: bool
    latency_ms: float
    error: str | None = None
    #: Region shard that owned the request (0 on unsharded services).
    shard: int = 0
    #: Machine-readable failure class when the resilience plane shaped
    #: this response (``invalid_request``, ``deadline_exceeded``,
    #: ``shed``, ``breaker_open``, ``engine_closed``); ``None`` for
    #: healthy responses and legacy errors.
    error_code: str | None = None
    #: Backoff hint attached to shed/deadline rejections: how long the
    #: caller should wait before resubmitting.
    retry_after_ms: float | None = None

    @property
    def ok(self) -> bool:
        return self.served_by != "error"

    @property
    def top(self) -> RankedPath | None:
        return self.results[0] if self.results else None


class RankingService:
    """Answers ranking queries against the registry's active model(s)."""

    def __init__(self, network: RoadNetwork,
                 registry: ModelRegistry | ShardedRegistry,
                 config: ServingConfig | None = None, *,
                 router: ShardRouter | None = None) -> None:
        self.network = network
        self.registry = registry
        self.config = config or ServingConfig()
        if isinstance(registry, ShardedRegistry):
            # Sharded plane: one lane per region shard; caches live in
            # the ShardedRegistry (global budget), scorers here.
            self.sharded: ShardedRegistry | None = registry
            # An injected router must agree with the registry on the
            # partition (shard ids index the lanes); its routing policy
            # is its own and overrides the config's policy fields.
            if router is not None \
                    and router.partition is not registry.partition:
                raise ServingError(
                    "router and sharded registry were built over different "
                    "partitions; their shard ids cannot agree")
            self.router: ShardRouter | None = router if router is not None \
                else ShardRouter(
                    network, registry.partition,
                    cross_policy=self.config.cross_shard_policy,
                    local_candidates=self.config.local_candidates,
                    certify_corridors=self.config.certify_corridors)
            quotas = self.config.resolved_score_quotas()
            self._lanes: dict[int, ShardLane] = {}
            for shard_id in registry.shard_ids():
                # Cache *capacities* live on the ShardedRegistry (the
                # global budget), but ``score_cache_size=0`` keeps its
                # documented meaning — this service scores every request
                # through the forward pass even if the registry carries
                # caches for other services — and so does the
                # on-by-default split-quota segmentation: a registry
                # whose caches are unsegmented (or segmented for a
                # *different* split) gets its shard's budget rebuilt as
                # a segmented cache private to this service, so the
                # isolation guarantee tracks this service's split.
                score_cache = (registry.score_cache(shard_id)
                               if self.config.score_cache_size > 0 else None)
                if score_cache is not None and quotas \
                        and score_cache.quotas != quotas:
                    score_cache = ScoreCache(score_cache.capacity,
                                             quotas=quotas)
                self._lanes[shard_id] = ShardLane(
                    shard_id=shard_id,
                    registry=registry.registry(shard_id),
                    candidate_cache=registry.candidate_cache(shard_id),
                    score_cache=score_cache,
                    scorer=BatchingScorer(self.config.max_batch_size,
                                          score_cache=score_cache),
                )
            self.candidate_cache = None
            self.score_cache = None
            self.scorer = None
        else:
            if router is not None:
                raise ServingError(
                    "router= requires a ShardedRegistry; an unsharded "
                    "service has no shard plane to route on")
            self.sharded = None
            self.router = None
            # Keyed by the network fingerprint too, so a graph mutation
            # (e.g. a live incident closing a road) invalidates entries
            # implicitly.
            self.candidate_cache = CandidateCache(
                self.config.candidate_cache_size, network=network)
            self.score_cache = (
                ScoreCache(self.config.score_cache_size,
                           quotas=self.config.resolved_score_quotas())
                if self.config.score_cache_size > 0 else None)
            self.scorer = BatchingScorer(self.config.max_batch_size,
                                         score_cache=self.score_cache)
            self._lanes = {0: ShardLane(0, registry, self.candidate_cache,
                                        self.score_cache, self.scorer)}
        self.latency = LatencyTracker(self.config.latency_window)
        self.counters = ServiceCounters()
        self.split_metrics = SplitMetrics(self.config.latency_window)
        self.shard_metrics = ShardMetrics()
        # Resilience plane: per-lane circuit breakers over scoring-group
        # outcomes, shared shed/deadline/retry accounting, and the
        # (dormant-by-default) fault-injection seam.
        self.resilience = self.config.resilience
        self.res_counters = ResilienceCounters()
        self.breakers: dict[int, CircuitBreaker] = (
            {shard_id: CircuitBreaker(self.resilience)
             for shard_id in self._lanes}
            if self.resilience.breaker_enabled else {})
        self.faults: FaultInjector | None = None
        # arm_faults below reaches for the execution plane, which is
        # only stood up further down — dormant until then.
        self.plane = None
        if self.config.fault_spec is not None:
            self.arm_faults(self.config.fault_spec,
                            seed=self.config.fault_seed)
        # The unified telemetry plane: every tracker above registers
        # into this registry under its canonical dotted name, and the
        # tracer feeds per-stage histograms + slow-request exemplars
        # into the same namespace.
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(sample=self.config.trace_sample,
                             max_exemplars=self.config.trace_exemplars,
                             metrics=self.metrics)
        self._latency_hist = self.metrics.histogram("serving.latency")
        # Execution plane: dormant unless asked for.  "threads" needs no
        # machinery (score_states fans groups out with ad-hoc threads);
        # "processes" stands up shared-memory hot-state plus a warm
        # worker pool, and subscribes to registry lifecycle events so a
        # deactivated version's weight segments are unlinked promptly.
        if self.config.execution == "processes":
            from repro.exec.plane import ExecutionPlane
            self.plane = ExecutionPlane(network, workers=self.config.workers,
                                        faults=self.faults,
                                        metrics=self.metrics)
            if self.sharded is not None:
                self.sharded.subscribe(self._on_registry_event)
            else:
                registry.subscribe(self._on_registry_event)
        self._register_metrics()

    def _register_metrics(self) -> None:
        """Publish every tracker under its canonical metric name.

        Existing trackers keep their own locked state; the registry
        pulls them through callbacks at export time, so recording stays
        exactly as cheap as before this plane existed.
        """
        metrics = self.metrics
        # Flattens to serving.requests / serving.model_served / ... next
        # to the serving.latency histogram observed at assembly.
        metrics.register_callback("serving", self.counters.as_dict)
        metrics.register_callback("split", self.split_metrics.as_dict)
        metrics.register_callback("shard", self.shard_metrics.as_dict)
        metrics.register_callback(
            "cache.candidate",
            lambda: CacheStats.merged(
                [lane.candidate_cache.stats for lane in self.lanes()]
            ).as_dict())
        metrics.register_callback("cache.score", self._score_cache_view)
        metrics.register_callback("scoring", self._scoring_view)
        metrics.register_callback("kernel.routing", self._routing_kernel_view)
        metrics.register_callback("kernel.ch", self._ch_kernel_view)
        metrics.register_callback("kernel.scoring", self._scoring_kernel_view)
        metrics.register_callback("resilience", self._resilience_view)
        if self.plane is not None:
            # exec.pool.* / exec.arena.* next to the exec.roundtrip_ms /
            # exec.overhead_ms / exec.occupancy histograms the pool
            # records directly into this registry.
            metrics.register_callback("exec", self.plane.stats)
        if self.sharded is not None:
            for lane in self.lanes():
                lane.register_into(metrics)

    def _score_cache_view(self) -> dict[str, object]:
        stats = [lane.score_cache.stats for lane in self.lanes()
                 if lane.score_cache is not None]
        if not stats:
            return {"disabled": True}
        return CacheStats.merged(stats).as_dict()

    def _scoring_view(self) -> dict[str, int]:
        totals = {"batches_run": 0, "paths_scored": 0, "cache_hits": 0}
        for lane in self.lanes():
            for key, value in lane.scorer.as_dict().items():
                totals[key] += value
        return totals

    def _resilience_view(self) -> dict[str, object]:
        """``resilience.*``: shed/deadline/breaker/retry accounting.

        Flattens to ``resilience.shed_rejected``,
        ``resilience.deadline_exceeded``, …, plus per-lane breaker
        state under ``resilience.breaker.shard-NN.*`` and fault-layer
        counters under ``resilience.faults.*`` while armed.
        """
        view: dict[str, object] = dict(self.res_counters.as_dict())
        if self.breakers:
            view["breaker"] = {
                shard_label(shard_id): breaker.as_dict()
                for shard_id, breaker in sorted(self.breakers.items())
            }
        if self.faults is not None:
            stats = self.faults.stats()
            view["faults"] = {
                "armed": stats["armed"],
                "hanging": stats["hanging"],
                "fired": sum(rule["fired"] for rule in stats["rules"]),
            }
        return view

    # ------------------------------------------------------------------
    # Fault injection (chaos testing)
    # ------------------------------------------------------------------
    def arm_faults(self, spec, seed: int = 0) -> FaultInjector:
        """Arm a fault spec across the whole stack (service, lanes, router).

        ``spec`` is a spec string, an iterable of
        :class:`~repro.serving.faults.FaultRule` records, or an existing
        injector (re-armed fresh).  Returns the live injector so tests
        can inspect firing counts.  An engine built over this service
        picks the injector up through ``service.faults``.
        """
        injector = FaultInjector.from_spec(spec, seed=seed)
        self.faults = injector
        for lane in self.lanes():
            lane.scorer.faults = injector
        if self.router is not None:
            self.router.faults = injector
        if self.plane is not None:
            self.plane.set_faults(injector)
        return injector

    def disarm_faults(self) -> None:
        """Release hanging threads and return the stack to dormancy."""
        if self.faults is not None:
            self.faults.disarm()
        self.faults = None
        for lane in self.lanes():
            lane.scorer.faults = None
        if self.router is not None:
            self.router.faults = None
        if self.plane is not None:
            self.plane.set_faults(None)

    def _on_registry_event(self, event: str, version: str) -> None:
        """Registry lifecycle hook: prune a dead version's shared weights."""
        if event == "deactivate" and self.plane is not None:
            self.plane.on_deactivate(version)

    def _fire_fault(self, point: str, shard: int | None = None) -> None:
        """Hot-path guard: one attribute check when no injector is armed."""
        if self.faults is not None:
            self.faults.fire(point, shard=shard)

    def _routing_kernel_view(self) -> dict[str, int]:
        """``kernel.routing.*``: the network's CSR search-effort counters.

        Empty (contributing nothing to the export) until something
        actually routed through the CSR kernel — the view must never
        *build* a kernel.
        """
        kernel = csr_if_built(self.network)
        return kernel.profile_counters() if kernel is not None else {}

    def _ch_kernel_view(self) -> dict[str, float]:
        """``kernel.ch.*``: contraction-hierarchy build/query counters.

        Empty until a hierarchy exists on the full network's kernel —
        like the routing view, this must never build one.
        """
        kernel = csr_if_built(self.network)
        if kernel is None:
            return {}
        totals = kernel.ch_profile_counters()
        return totals if totals["hierarchies"] else {}

    def _scoring_kernel_view(self) -> dict[str, object]:
        """``kernel.scoring.*``: fused forward profiles of live snapshots.

        Sums the compiled-kernel profile over every distinct resident
        snapshot (shards can share one); empty when nothing is compiled
        (e.g. the module backend is active).
        """
        totals: dict[str, float] = {}
        seen: set[int] = set()
        for lane in self.lanes():
            active = lane.registry.snapshot()
            if active is None:
                continue
            compiled = compiled_if_cached(active.model)
            if compiled is None or id(compiled) in seen:
                continue
            seen.add(id(compiled))
            for key, value in compiled.profile_counters().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    # ------------------------------------------------------------------
    # Stage 1: admission
    # ------------------------------------------------------------------
    def admit(self, request: RankRequest,
              default: object = _UNRESOLVED) -> QueryState:
        """Open a :class:`QueryState`, tag its shard, route it to a model.

        ``default`` lets a batch caller take one registry snapshot for
        every unsplit request (so a concurrent hot-swap cannot divide a
        batch across versions): pass an :class:`ActiveModel` (or
        ``None``) to impose it, or a mutable ``dict`` that admit fills
        with one snapshot per shard on first sight — the sharded batch
        equivalent.  Pinned and split-routed requests resolve their own
        snapshot regardless.
        """
        state = QueryState(request=request)
        if request.deadline_ms is not None:
            state.deadline_ms = request.deadline_ms
        else:
            state.deadline_ms = self.resilience.deadline_ms
        trace = state.trace = self.tracer.maybe_start()
        if self.faults is not None:
            try:
                self.faults.fire("admit", shard=None)
            except ReproError as exc:
                state.error = str(exc)
                return state
        if not self._validate(state):
            return state
        try:
            state.config = self._candidate_config(request)
        except ValueError as exc:  # hostile per-request k override
            state.error = str(exc)
            return state
        if self.router is not None:
            route_began = time.perf_counter() if trace is not None else 0.0
            try:
                state.route = self.router.route(request.source,
                                                request.target)
            except ReproError as exc:  # vertex outside the network
                state.error = str(exc)
                return state
            state.shard = state.route.shard
            if trace is not None:
                trace.add("shard_route", route_began, time.perf_counter(),
                          shard=state.shard, cross=state.route.cross)
        lane = self._lanes[state.shard]
        version = request.model_version
        if version is None and self.config.traffic_split is not None:
            version = assign_split(request, self.config.traffic_split)
        split_began = time.perf_counter() if trace is not None else 0.0
        try:
            if version is not None:
                state.active = lane.registry.resolve(version)
                state.split = version
            elif isinstance(default, dict):
                if state.shard not in default:
                    default[state.shard] = lane.registry.snapshot()
                state.active = default[state.shard]
            elif default is _UNRESOLVED:
                state.active = lane.registry.snapshot()
            else:
                state.active = default
        except ServingError as exc:  # unpublished pin / stale split target
            state.error = str(exc)
        if trace is not None:
            end = time.perf_counter()
            trace.add("split_assign", split_began, end, split=state.split)
            trace.add("admit", trace.started, end)
        return state

    def _validate(self, state: QueryState) -> bool:
        """Refuse malformed requests at the front door.

        An unknown endpoint or a non-positive ``k`` can never be served
        — not even by the shortest-path fallback — so it terminates
        here with a structured ``invalid_request`` error instead of
        tripping the fallback or leaking a ``KeyError`` from the CSR
        kernel deeper in the stack.
        """
        request = state.request
        problem = None
        if not isinstance(request.source, int) \
                or not self.network.has_vertex(request.source):
            problem = f"unknown source vertex {request.source!r}"
        elif not isinstance(request.target, int) \
                or not self.network.has_vertex(request.target):
            problem = f"unknown target vertex {request.target!r}"
        elif request.k is not None and request.k < 1:
            problem = f"k must be >= 1, got {request.k!r}"
        elif request.deadline_ms is not None and request.deadline_ms <= 0.0:
            problem = f"deadline_ms must be > 0, got {request.deadline_ms!r}"
        if problem is None:
            return True
        state.error = problem
        state.error_code = "invalid_request"
        self.res_counters.bump("invalid_requests")
        return False

    def _expire(self, state: QueryState) -> None:
        """Terminate a state whose deadline budget ran out."""
        state.error = (f"deadline of {state.deadline_ms:g} ms exceeded "
                       f"before a response was ready")
        state.error_code = "deadline_exceeded"
        state.active = None
        self.res_counters.bump("deadline_exceeded")

    def _candidate_config(self, request: RankRequest) -> TrainingDataConfig:
        base = self.config.candidates
        if request.k is None or request.k == base.k:
            return base
        return replace(base, k=request.k,
                       examine_limit=max(base.examine_limit, request.k))

    # ------------------------------------------------------------------
    # Stage 2: candidate generation (cache-aware)
    # ------------------------------------------------------------------
    def prepare(self, state: QueryState) -> QueryState:
        """Fill in candidate paths; skipped for doomed/fallback states.

        Candidate enumeration is wasted work when only the shortest-path
        fallback can answer, so a state with no snapshot passes through.
        """
        if state.error is not None or state.active is None:
            return state
        if state.expired():
            self._expire(state)
            return state
        trace = state.trace
        began = time.perf_counter() if trace is not None else 0.0
        try:
            if self.faults is not None:
                self.faults.fire("prepare", shard=state.shard)
            state.paths, state.cache_hit = self._candidates(state)
        except ReproError as exc:
            state.error = str(exc)
        if trace is not None:
            state.prepared_at = time.perf_counter()
            trace.add("candidates", began, state.prepared_at,
                      cache_hit=state.cache_hit, paths=len(state.paths))
        return state

    def _candidates(self, state: QueryState) -> tuple[list[Path], bool]:
        request, config = state.request, state.config
        lane = self._lanes[state.shard]
        graph = state.route.graph if state.route is not None else self.network
        cached = lane.candidate_cache.lookup(request.source, request.target,
                                             config, network=graph)
        if cached is not None:
            return cached, True
        try:
            paths = self._generate_candidates(state, graph)
        except NoPathError:
            if state.route is None or not state.route.local:
                raise
            # The shard-restricted graph (subnetwork or corridor) found
            # no path; the full network is the authority on
            # reachability, and its answer matches the unsharded one.
            paths = generate_candidates(self.network, request.source,
                                        request.target, config)
        lane.candidate_cache.store(request.source, request.target, config,
                                   paths, network=graph)
        return paths, False

    def _generate_candidates(self, state: QueryState, graph) -> list[Path]:
        """Cold candidate generation, offloaded to the pool when possible.

        Only full-network queries dispatch (the workers attached the
        full network's CSR; shard subnetworks and corridors stay
        inline), and a pool failure falls back to inline generation —
        the plane is a throughput optimisation, never an availability
        risk.  :class:`~repro.errors.NoPathError` from a worker is the
        *query's* answer and propagates exactly as inline.
        """
        request, config = state.request, state.config
        if self.plane is not None and graph is self.network:
            try:
                return self.plane.candidates_for(state)
            except ExecError:
                pass
        return generate_candidates(graph, request.source, request.target,
                                   config)

    # ------------------------------------------------------------------
    # Stage 3: coalesced scoring
    # ------------------------------------------------------------------
    def score_states(self, states: Sequence[QueryState]) -> None:
        """Score every scorable state, one coalesced pass per group.

        States are grouped per *(shard, model snapshot)* — A/B splits,
        hot-swaps, and shard routing can all mix within one batch — and
        each group is scored atomically through its shard's
        :class:`BatchingScorer`.  A batch failure degrades *only* the
        affected requests: each member is retried individually, and only
        the ones that still fail fall back to the shortest path — so a
        poison path in one shard's flush never touches another shard's
        group.
        """
        groups: dict[tuple[int, int], list[QueryState]] = {}
        for state in states:
            if state.error is None and state.expired():
                self._expire(state)
                continue
            if state.scorable:
                groups.setdefault((state.shard, state.active.generation),
                                  []).append(state)
        if len(groups) > 1 and self.config.execution != "inline":
            # Parallel group execution: the groups are independent by
            # construction (disjoint states, per-shard scorers/caches/
            # breakers), so a flush mixing shards or snapshots scores
            # them concurrently instead of serialising behind the
            # largest.  Under "processes" the threads merely wait on
            # pool tickets, overlapping the workers' forward passes.
            threads = [
                threading.Thread(target=self._score_states_group,
                                 args=(shard_id, members),
                                 name=f"score-group-{shard_id}")
                for (shard_id, _), members in groups.items()
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        else:
            for (shard_id, _), members in groups.items():
                self._score_states_group(shard_id, members)

    def _score_states_group(self, shard_id: int,
                            members: list[QueryState]) -> None:
        """Score one *(shard, snapshot)* group end to end (thread-safe)."""
        lane = self._lanes[shard_id]
        breaker = self.breakers.get(shard_id)
        if breaker is not None and not breaker.allow():
            # The lane is tripped (or out of half-open probe slots):
            # route its requests straight to the global fallback
            # without touching the scorer.
            for state in members:
                state.active = None
                state.degraded = (f"circuit breaker open on "
                                  f"{shard_label(shard_id)}")
                state.error_code = "breaker_open"
            self.res_counters.bump("breaker_degraded", len(members))
            return
        active = members[0].active
        traced = [state for state in members if state.trace is not None]
        began = time.perf_counter() if traced else 0.0
        scored = self._score_group(lane, breaker, members, active)
        if scored is not None:
            for state, scores in zip(members, scored):
                state.scores = scores.tolist()
        if traced:
            end = time.perf_counter()
            group_paths = sum(len(state.paths) for state in members)
            for state in traced:
                if state.prepared_at is not None:
                    # Time parked between candidate generation and
                    # this group's scoring pass (deadline batching).
                    state.trace.add("flush_wait", state.prepared_at,
                                    began)
                state.trace.add("score", began, end,
                                group_requests=len(members),
                                group_paths=group_paths)

    def _score_group(self, lane: ShardLane, breaker: CircuitBreaker | None,
                     members: Sequence[QueryState], active: ActiveModel):
        """One group's scoring attempt: retry, breaker accounting, faults.

        Transient :class:`ReproError` failures (including injected ones)
        are retried up to ``retry_attempts`` times with deterministic
        jittered exponential backoff — but never past the tightest
        member deadline.  The final outcome is recorded on the lane's
        breaker (group latency included, so a latency SLO can trip it),
        and a terminal failure falls back to per-request isolation via
        :meth:`_score_individually`.
        """
        began = time.perf_counter()
        attempt = 0
        model = active.model
        if self.plane is not None and self.plane.scoring_enabled:
            # Swap in the pool-dispatching proxy: BatchingScorer still
            # runs dedup/caching/chunking in this process, but each
            # chunk's forward pass executes on a worker, bounded by the
            # group's tightest member deadline.  A plane failure here
            # (segment publish) just keeps the inline model.
            try:
                model = self.plane.scoring_proxy(
                    active, deadline_ms=tightest_remaining_ms(members))
            except ExecError:
                model = active.model
        while True:
            try:
                if self.faults is not None:
                    self.faults.fire("score", shard=lane.shard_id)
                scored = lane.scorer.score_many(
                    model, [state.paths for state in members],
                    active.version)
            except ReproError:
                if attempt < self.resilience.retry_attempts:
                    delay_s = retry_backoff(
                        attempt + 1, self.resilience,
                        key=(lane.shard_id, active.generation, attempt))
                    budget = [state.remaining_ms() for state in members]
                    tightest = min((ms for ms in budget if ms is not None),
                                   default=None)
                    if tightest is None or delay_s * 1000.0 < tightest:
                        attempt += 1
                        self.res_counters.bump("retries")
                        if delay_s > 0.0:
                            time.sleep(delay_s)
                        continue
                if breaker is not None:
                    breaker.record_failure()
                self._score_individually(lane, members)
                return None
            else:
                if attempt:
                    self.res_counters.bump("retry_successes")
                if breaker is not None:
                    breaker.record_success(
                        (time.perf_counter() - began) * 1000.0)
                return scored

    def _score_individually(self, lane: ShardLane,
                            states: Sequence[QueryState]) -> None:
        """Retry a failed batch one request at a time.

        Isolates the poison request(s): a path that breaks the forward
        pass takes down its own request only, and everything else in the
        flush still gets model-served.
        """
        for state in states:
            active = state.active
            try:
                scores = lane.scorer.score_paths(active.model, state.paths,
                                                 active.version)
            except ReproError as exc:
                state.active = None
                state.degraded = str(exc)
            else:
                state.scores = scores.tolist()

    # ------------------------------------------------------------------
    # Stage 4: response assembly
    # ------------------------------------------------------------------
    def assemble(self, state: QueryState, record: bool = True,
                 completed: float | None = None) -> RankResponse:
        """Terminate a state into a :class:`RankResponse` (+ metrics).

        ``completed`` (a ``perf_counter`` value) lets a deferred caller
        pin the latency clock to when the pipeline actually finished the
        request, rather than when the caller got around to collecting
        the response.
        """
        end = completed if completed is not None else time.perf_counter()
        elapsed_ms = (end - state.started) * 1000.0
        trace = state.trace
        assemble_began = time.perf_counter() if trace is not None else 0.0
        if state.error is None and state.expired(end):
            self._expire(state)
        if self.faults is not None and state.error is None:
            try:
                self.faults.fire("assemble", shard=state.shard)
            except ReproError as exc:
                state.error = str(exc)
        if state.error is not None:
            response = self._error_response(state, state.error, elapsed_ms,
                                            record)
        elif state.active is None:
            response = self._fallback_response(state, elapsed_ms, record)
        else:
            response = self._model_response(state, elapsed_ms, record)
        if record:
            self.latency.record(response.latency_ms)
            self._latency_hist.observe(response.latency_ms)
            self.counters.bump("requests")
            self.split_metrics.record(state.split, response.served_by,
                                      response.latency_ms)
            if self.router is not None and state.route is not None:
                # No route means no owning shard (e.g. an unknown
                # vertex): recording it would misattribute the error to
                # shard 0's accounting.
                self.shard_metrics.record(state.shard, state.cross_shard,
                                          response.served_by,
                                          resilience=state.error_code)
        if trace is not None:
            trace.add("assemble", assemble_began, time.perf_counter())
            if record:
                request = state.request
                self.tracer.finish(
                    trace, response.latency_ms,
                    request=f"{request.source}->{request.target}",
                    request_id=request.request_id,
                    served_by=response.served_by,
                    cache_hit=response.candidate_cache_hit,
                    shard=state.shard, split=state.split)
        state.response = response
        return response

    # ------------------------------------------------------------------
    # Serving facade
    # ------------------------------------------------------------------
    def rank(self, request: RankRequest) -> RankResponse:
        """Answer one query; never raises for per-request failures."""
        return self.rank_batch([request])[0]

    def rank_batch(self, requests: Sequence[RankRequest]) -> list[RankResponse]:
        """Answer many queries with one coalesced pass per (shard, model).

        The default snapshot is taken once per shard for the whole
        batch, so a concurrent hot-swap cannot split the unsplit portion
        of a batch across versions.
        """
        if not requests:
            return []
        defaults: dict[int, ActiveModel | None] = {}
        states = [self.admit(request, default=defaults)
                  for request in requests]
        for state in states:
            self.prepare(state)
        self.score_states(states)
        return [self.assemble(state) for state in states]

    def warm_up(self, requests: Sequence[RankRequest]) -> int:
        """Replay a recorded query mix through the caches, off the books.

        Runs the candidate and scoring stages for every distinct request
        so the candidate caches (and score caches, when enabled) are hot
        before live traffic arrives — the deploy-time cure for the cold
        p95 cliff.  Nothing is recorded in the latency/counter metrics;
        returns the number of requests replayed.
        """
        seen: set[tuple] = set()
        states = []
        for request in requests:
            key = (request.source, request.target, request.k,
                   request.model_version)
            if key in seen:
                continue
            seen.add(key)
            states.append(self.admit(request))
        for state in states:
            self.prepare(state)
        self.score_states(states)
        for state in states:
            self.assemble(state, record=False)
        return len(states)

    def _model_response(self, state: QueryState, elapsed_ms: float,
                        record: bool) -> RankResponse:
        ranked = rank_paths(state.paths, state.scores)
        results = tuple(
            RankedPath(path=path, score=score, position=position)
            for position, (path, score) in enumerate(ranked, start=1)
        )
        if record:
            self.counters.bump("model_served")
        return RankResponse(request=state.request, results=results,
                            served_by="model",
                            model_version=state.active.version,
                            candidate_cache_hit=state.cache_hit,
                            latency_ms=elapsed_ms, shard=state.shard)

    def _fallback_response(self, state: QueryState, elapsed_ms: float,
                           record: bool = True) -> RankResponse:
        request, cause = state.request, state.degraded
        if not self.config.fallback_to_shortest:
            reason = cause or "no active model"
            return self._error_response(
                state, f"{reason} (fallback disabled)", elapsed_ms, record)
        try:
            # Always the full network: the fallback is the floor of
            # service quality, and shard-local reachability must never
            # lower it.
            path = shortest_path(self.network, request.source, request.target)
        except ReproError as exc:
            return self._error_response(state, str(exc), elapsed_ms, record)
        if record:
            self.counters.bump("fallback_served")
        results = (RankedPath(path=path, score=0.0, position=1),)
        return RankResponse(request=request, results=results,
                            served_by="fallback", model_version=None,
                            candidate_cache_hit=state.cache_hit,
                            latency_ms=elapsed_ms, error=cause,
                            shard=state.shard, error_code=state.error_code)

    def _error_response(self, state: QueryState, error: str,
                        elapsed_ms: float,
                        record: bool = True) -> RankResponse:
        if record:
            self.counters.bump("failed")
        retry_after = None
        if state.error_code in ("deadline_exceeded", "shed"):
            retry_after = self.resilience.retry_after_ms
        return RankResponse(request=state.request, results=(),
                            served_by="error", model_version=None,
                            candidate_cache_hit=state.cache_hit,
                            latency_ms=elapsed_ms, error=error,
                            shard=state.shard, error_code=state.error_code,
                            retry_after_ms=retry_after)

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear down the execution plane (idempotent; inline no-op).

        Stops the worker processes and unlinks every shared-memory
        segment this service published.  The service itself keeps
        answering afterwards — stages fall back to their inline paths —
        so closing is safe mid-traffic.
        """
        plane, self.plane = self.plane, None
        if plane is not None:
            plane.close()

    def __enter__(self) -> "RankingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def activate(self, version: str, shards: list[int] | None = None):
        """Hot-swap to ``version`` (in-flight batches keep their snapshot).

        On a sharded service this activates the version on every shard
        (or just ``shards``) and returns the per-shard snapshot map.
        """
        if self.sharded is not None:
            actives = self.sharded.activate(version, shards=shards)
        else:
            actives = self.registry.activate(version)
        self.counters.bump("hot_swaps")
        return actives

    def lane(self, shard_id: int) -> ShardLane:
        """The per-shard resource bundle (lane 0 on unsharded services)."""
        try:
            return self._lanes[shard_id]
        except KeyError:
            raise ServingError(
                f"no shard {shard_id}; service has lanes "
                f"{sorted(self._lanes)}") from None

    def lanes(self) -> list[ShardLane]:
        return [self._lanes[shard_id] for shard_id in sorted(self._lanes)]

    def stats(self) -> dict[str, object]:
        """Everything ``serve --json`` and the load benchmark report.

        Aggregate cache/scoring numbers keep their PR-4 shape in both
        modes (summed across lanes when sharded); a sharded service adds
        a ``"sharding"`` section with the partition summary and the
        per-shard breakdown.
        """
        lanes = self.lanes()
        score_stats = [lane.score_cache.stats for lane in lanes
                       if lane.score_cache is not None]
        scoring = self._scoring_view()
        scoring["max_batch_size"] = self.config.max_batch_size
        scoring["backend"] = resolve_scoring_backend()
        result: dict[str, object] = {
            "active_version": self._active_version_view(),
            "counters": self.counters.as_dict(),
            "latency": self.latency.as_dict(),
            "splits": self.split_metrics.as_dict(),
            "candidate_cache": CacheStats.merged(
                [lane.candidate_cache.stats for lane in lanes]).as_dict(),
            "score_cache": (CacheStats.merged(score_stats).as_dict()
                            if score_stats else {"disabled": True}),
            "scoring": scoring,
            "resilience": self._resilience_stats(),
        }
        if self.config.execution != "inline":
            # Only when the plane is non-dormant: existing consumers pin
            # the shape of the default stats payload.
            execution: dict[str, object] = {"mode": self.config.execution}
            if self.plane is not None:
                execution["workers"] = self.config.workers
                execution.update(self.plane.stats())
            result["execution"] = execution
        if self.tracer.enabled:
            # Only when tracing is on: the section is meaningless (all
            # zeros) otherwise, and existing consumers pin the shape of
            # the default stats payload.
            result["trace"] = self.tracer.as_dict()
        quota_views = {}
        for lane in lanes:
            if lane.score_cache is None:
                continue
            view = lane.score_cache.quota_stats()
            if view:
                quota_views[shard_label(lane.shard_id)] = view
        if quota_views:
            if self.sharded is None:
                result["score_cache_splits"] = quota_views[shard_label(0)]
            else:
                result["score_cache_splits"] = quota_views
        if self.sharded is not None:
            sharding = self.sharded.stats()
            if self.router is not None:
                sharding["routing"] = dict(self.router.route_counters)
                sharding["routing"]["certify_corridors"] = \
                    self.router.certify_corridors
            per_shard = sharding["per_shard"]
            for label, counts in self.shard_metrics.as_dict().items():
                per_shard.setdefault(label, {})["requests"] = counts
            for lane in lanes:
                label = shard_label(lane.shard_id)
                entry = per_shard.setdefault(label, {})
                entry["scoring"] = lane.scorer.as_dict()
                # The lane's view wins over the registry's: the lane may
                # run a quota-segmented rebuild (or no cache at all)
                # while the registry still holds the unsegmented budget.
                entry["score_cache"] = (
                    lane.score_cache.stats.as_dict()
                    if lane.score_cache is not None else {"disabled": True})
            result["sharding"] = sharding
        return result

    def _resilience_stats(self) -> dict[str, object]:
        result: dict[str, object] = {
            "config": {
                "deadline_ms": self.resilience.deadline_ms,
                "max_queue": self.resilience.max_queue,
                "shed_policy": self.resilience.shed_policy,
                "breaker_enabled": self.resilience.breaker_enabled,
                "retry_attempts": self.resilience.retry_attempts,
            },
            "counters": self.res_counters.as_dict(),
        }
        if self.breakers:
            result["breakers"] = {
                shard_label(shard_id): breaker.as_dict()
                for shard_id, breaker in sorted(self.breakers.items())
            }
        if self.faults is not None:
            result["faults"] = self.faults.stats()
        return result

    def _active_version_view(self):
        if self.sharded is not None:
            return {shard_label(shard_id): version
                    for shard_id, version
                    in self.sharded.active_versions().items()}
        active = self.registry.snapshot()
        return active.version if active else None
