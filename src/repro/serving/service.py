"""The `RankingService` facade: online query answering over one network.

Ties the serving pieces together: candidate generation behind a
:class:`CandidateCache`, scoring behind a :class:`BatchingScorer` with a
version-keyed :class:`ScoreCache`, the model itself behind a
:class:`ModelRegistry` snapshot, and per-request latency / outcome
instrumentation.  When no model is active (or scoring fails with a
library error) the service degrades gracefully to the shortest path
instead of failing the request.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field, replace

from repro.core.ranker import generate_candidates
from repro.errors import ReproError
from repro.graph.network import RoadNetwork
from repro.graph.path import Path
from repro.graph.shortest_path import shortest_path
from repro.nn.fused import resolve_scoring_backend
from repro.ranking.training_data import TrainingDataConfig
from repro.serving.batching import BatchingScorer
from repro.serving.cache import CandidateCache, ScoreCache
from repro.serving.instrumentation import LatencyTracker, ServiceCounters
from repro.serving.registry import ActiveModel, ModelRegistry

__all__ = ["ServingConfig", "RankRequest", "RankedPath", "RankResponse",
           "RankingService"]


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of one :class:`RankingService` instance."""

    candidates: TrainingDataConfig = field(default_factory=TrainingDataConfig)
    candidate_cache_size: int = 1024
    score_cache_size: int = 8192
    max_batch_size: int = 64
    fallback_to_shortest: bool = True
    latency_window: int = 4096

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )


@dataclass(frozen=True)
class RankRequest:
    """One live (source, destination) query.

    ``k`` overrides the service's configured candidate-set size for this
    request only (it participates in the candidate-cache key).
    """

    source: int
    target: int
    k: int | None = None
    request_id: int | None = None


@dataclass(frozen=True)
class RankedPath:
    """One ranked suggestion: position 1 is the top recommendation."""

    path: Path
    score: float
    position: int


@dataclass(frozen=True)
class RankResponse:
    """Outcome of one request, with serving provenance attached."""

    request: RankRequest
    results: tuple[RankedPath, ...]
    served_by: str  # "model" | "fallback" | "error"
    model_version: str | None
    candidate_cache_hit: bool
    latency_ms: float
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.served_by != "error"

    @property
    def top(self) -> RankedPath | None:
        return self.results[0] if self.results else None


class RankingService:
    """Answers ranking queries against the registry's active model."""

    def __init__(self, network: RoadNetwork, registry: ModelRegistry,
                 config: ServingConfig | None = None) -> None:
        self.network = network
        self.registry = registry
        self.config = config or ServingConfig()
        # Keyed by the network fingerprint too, so a graph mutation (e.g.
        # a live incident closing a road) invalidates entries implicitly.
        self.candidate_cache = CandidateCache(self.config.candidate_cache_size,
                                              network=network)
        self.score_cache = ScoreCache(self.config.score_cache_size)
        self.scorer = BatchingScorer(self.config.max_batch_size,
                                     score_cache=self.score_cache)
        self.latency = LatencyTracker(self.config.latency_window)
        self.counters = ServiceCounters()

    # ------------------------------------------------------------------
    # Candidate step
    # ------------------------------------------------------------------
    def _candidate_config(self, request: RankRequest) -> TrainingDataConfig:
        base = self.config.candidates
        if request.k is None or request.k == base.k:
            return base
        return replace(base, k=request.k,
                       examine_limit=max(base.examine_limit, request.k))

    def _candidates(self, request: RankRequest,
                    config: TrainingDataConfig) -> tuple[list[Path], bool]:
        cached = self.candidate_cache.lookup(request.source, request.target,
                                             config)
        if cached is not None:
            return cached, True
        paths = generate_candidates(self.network, request.source,
                                    request.target, config)
        self.candidate_cache.store(request.source, request.target, config,
                                   paths)
        return paths, False

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def rank(self, request: RankRequest) -> RankResponse:
        """Answer one query; never raises for per-request failures."""
        return self.rank_batch([request])[0]

    def rank_batch(self, requests: Sequence[RankRequest]) -> list[RankResponse]:
        """Answer many queries with one coalesced scoring pass.

        The model snapshot is taken once for the whole batch, so a
        concurrent hot-swap cannot split the batch across versions.
        """
        if not requests:
            return []
        started = time.perf_counter()
        active = self.registry.snapshot()

        prepared: list[tuple[RankRequest, list[Path], bool, str | None]] = []
        if active is None:
            # Candidate enumeration is wasted work when only the
            # shortest-path fallback can answer.
            prepared = [(request, [], False, None) for request in requests]
        else:
            for request in requests:
                config = self._candidate_config(request)
                try:
                    paths, hit = self._candidates(request, config)
                    prepared.append((request, paths, hit, None))
                except ReproError as exc:
                    prepared.append((request, [], False, str(exc)))

        scores_by_row: dict[int, object] = {}
        flush_error = None
        if active is not None:
            scorable = [(row, paths) for row, (_, paths, _, error)
                        in enumerate(prepared) if error is None]
            try:
                scored = self.scorer.score_many(
                    active.model, [paths for _, paths in scorable],
                    active.version)
            except ReproError as exc:
                active, flush_error = None, str(exc)
            else:
                scores_by_row = {row: scores for (row, _), scores
                                 in zip(scorable, scored)}

        responses = []
        for row, (request, paths, hit, error) in enumerate(prepared):
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            if error is not None:
                responses.append(self._error_response(request, error,
                                                      hit, elapsed_ms))
            elif active is None:
                responses.append(self._fallback_response(
                    request, hit, elapsed_ms, flush_error))
            else:
                responses.append(self._model_response(
                    request, paths, scores_by_row[row], active, hit,
                    elapsed_ms))
        for response in responses:
            self.latency.record(response.latency_ms)
            self.counters.bump("requests")
        return responses

    def _model_response(self, request: RankRequest, paths: list[Path],
                        scores, active: ActiveModel, hit: bool,
                        elapsed_ms: float) -> RankResponse:
        values = scores.tolist() if hasattr(scores, "tolist") else list(scores)
        order = sorted(range(len(paths)), key=lambda i: -values[i])
        results = tuple(
            RankedPath(path=paths[i], score=values[i], position=pos)
            for pos, i in enumerate(order, start=1)
        )
        self.counters.bump("model_served")
        return RankResponse(request=request, results=results,
                            served_by="model", model_version=active.version,
                            candidate_cache_hit=hit, latency_ms=elapsed_ms)

    def _fallback_response(self, request: RankRequest, hit: bool,
                           elapsed_ms: float,
                           cause: str | None) -> RankResponse:
        if not self.config.fallback_to_shortest:
            reason = cause or "no active model"
            return self._error_response(
                request, f"{reason} (fallback disabled)", hit, elapsed_ms)
        try:
            path = shortest_path(self.network, request.source, request.target)
        except ReproError as exc:
            return self._error_response(request, str(exc), hit, elapsed_ms)
        self.counters.bump("fallback_served")
        results = (RankedPath(path=path, score=0.0, position=1),)
        return RankResponse(request=request, results=results,
                            served_by="fallback", model_version=None,
                            candidate_cache_hit=hit,
                            latency_ms=elapsed_ms, error=cause)

    def _error_response(self, request: RankRequest, error: str, hit: bool,
                        elapsed_ms: float) -> RankResponse:
        self.counters.bump("failed")
        return RankResponse(request=request, results=(), served_by="error",
                            model_version=None, candidate_cache_hit=hit,
                            latency_ms=elapsed_ms, error=error)

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def activate(self, version: str) -> ActiveModel:
        """Hot-swap to ``version`` (in-flight batches keep their snapshot)."""
        active = self.registry.activate(version)
        self.counters.bump("hot_swaps")
        return active

    def stats(self) -> dict[str, object]:
        """Everything ``serve --json`` and the load benchmark report."""
        active = self.registry.snapshot()
        return {
            "active_version": active.version if active else None,
            "counters": self.counters.as_dict(),
            "latency": self.latency.as_dict(),
            "candidate_cache": self.candidate_cache.stats.as_dict(),
            "score_cache": self.score_cache.stats.as_dict(),
            "scoring": {
                "batches_run": self.scorer.batches_run,
                "paths_scored": self.scorer.paths_scored,
                "max_batch_size": self.scorer.max_batch_size,
                "backend": resolve_scoring_backend(),
            },
        }
