"""Online serving: turn a trained PathRank model into a query service.

The paper motivates PathRank with commercial navigation backends that
must answer live "which path to put on top?" queries.  This package is
that layer.  Where :class:`~repro.core.ranker.PathRankRanker` is the
offline training API, ``repro.serving`` adds the machinery a production
deployment needs around it:

* :class:`ModelRegistry` — versioned ``.npz`` model artifacts on disk,
  with atomic hot-swap: activation replaces a single snapshot reference,
  so in-flight requests finish on the version they started with.
* :class:`CandidateCache` / :class:`ScoreCache` — bounded LRU caches for
  the two expensive steps.  Candidate sets are keyed on
  ``(source, target, strategy, k)`` and survive model swaps; per-path
  scores are keyed on the model version so a swap can never serve a
  stale score.
* :class:`BatchingScorer` — coalesces the candidate lists of many
  requests into padded batches and runs one forward pass per batch.
  The masked recurrence makes batched scores identical to sequential
  per-query scores.
* :class:`RankingService` — the synchronous facade: request/response
  dataclasses, per-request latency and cache instrumentation, and
  graceful degradation to the shortest path when no model is available.
  Internally a **staged pipeline** (admission → candidate generation →
  scoring → assembly) over :class:`~repro.serving.pipeline.QueryState`
  records.
* :class:`ServingEngine` — the concurrent front door over the same
  pipeline: worker threads prepare requests, a deadline flusher
  coalesces *concurrent* queries into fused scoring batches (flush on
  ``max_batch_size`` paths or ``flush_deadline_ms``, whichever first),
  and an optional warm-up replays a recorded hotspot mix through the
  caches before the engine reports ready.  Responses are element-wise
  identical to the synchronous path.
* **A/B serving** — ``ServingConfig.traffic_split`` routes each request
  deterministically to one of several published model versions (and
  ``RankRequest.model_version`` pins one explicitly); the registry
  keeps every split target resident (balanced ``pin``/``release``
  accounting frees a superseded version's model and compiled kernel at
  the last release), :class:`SplitMetrics` keeps the variants'
  latency/outcome accounting separated, and the score cache carves a
  per-split quota for each variant so a low-traffic arm's entries are
  never evicted by the majority split's churn.
* **Shard plane** (:mod:`repro.serving.sharding`) — a
  :class:`~repro.graph.partition.GraphPartition` splits the network
  into region shards; :class:`ShardedRegistry` holds one registry +
  candidate/score cache per shard under a global memory budget, and a
  :class:`ShardRouter` tags every request with its owning shard at
  admission.  Candidate generation can run shard-locally or through
  boundary-stitched cross-shard corridors, scoring flushes coalesce
  per *(shard, snapshot)* group, and with the default exact mode
  same-shard rankings are element-wise identical to an unsharded
  service's (``benchmarks/bench_sharding.py`` pins this;
  ``BENCH_sharding.json`` holds the committed numbers).
* **Telemetry** (:mod:`repro.obs`) — every tracker above registers
  into the service's central
  :class:`~repro.obs.metrics.MetricsRegistry` under canonical dotted
  names, ``ServingConfig.trace_sample`` arms per-request stage tracing
  (spans on :class:`~repro.serving.pipeline.QueryState`, per-stage
  latency histograms, top-K slow-request exemplars; dormant by
  default), and a :class:`~repro.obs.export.SnapshotExporter` can
  stream JSONL metric timelines during a run.  Full tracing stays
  under 5% throughput overhead with exact response parity
  (``BENCH_observability.json``; see ``docs/observability.md``).
* **Resilience plane** (:mod:`repro.serving.resilience` /
  :mod:`repro.serving.faults`) — per-request deadline budgets checked
  at every pipeline stage, bounded admission queues with an explicit
  shed policy (reject-with-retry-after or degrade-to-shortest-path),
  per-shard-lane circuit breakers that route tripped lanes to the
  global fallback, deterministic jittered retry for transient scoring
  failures, and a seedable fault-injection layer (latency spikes,
  errors, hangs at named points) for reproducible chaos testing — all
  dormant by default with exact response parity
  (``BENCH_robustness.json``; see ``docs/robustness.md``).

Usage::

    from repro.serving import (ModelRegistry, RankingService, RankRequest,
                               ServingConfig)

    # Offline: train once, publish into a registry directory.
    ranker = PathRankRanker(network, config).fit(trips, rng=0)
    registry = ModelRegistry("artifacts/models", network)
    version = registry.publish(ranker, activate=True)

    # Online: answer queries; repeats hit the caches, batches share one
    # forward pass, and a later ``service.activate("v0002")`` hot-swaps
    # without dropping requests.
    service = RankingService(network, registry, ServingConfig())
    response = service.rank(RankRequest(source=3, target=47))
    for suggestion in response.results:
        print(suggestion.position, suggestion.score, suggestion.path)
    print(service.stats())

    # Concurrent traffic: the engine coalesces independent requests.
    with ServingEngine(service, concurrency=8,
                       warmup=recorded_hotspot_mix) as engine:
        responses = engine.rank_batch(live_requests)

The load-testing helpers in :mod:`repro.serving.loadgen` (Zipf-skewed
OD-hotspot mixes, closed-loop engine clients, Poisson open-loop
arrival schedules) back both ``python -m repro.cli bench-serve`` and
``benchmarks/bench_serving.py``.

Scoring backends
----------------

Model scoring dispatches through a backend seam, mirroring the routing
seam of :mod:`repro.graph.csr`.  ``PathRank.score_paths`` — and with it
the :class:`BatchingScorer`, the :class:`RankingService`, and the
evaluation harness — resolves one of two implementations per call:

* ``fused`` (and ``auto``, the default) — the graph-free numpy kernel of
  :mod:`repro.nn.fused`: weights snapshotted into a
  :class:`~repro.nn.fused.CompiledPathRank` (flat float32 arrays, input
  projections hoisted out of the GRU recurrence, preallocated per-thread
  buffers), with batches padded per length bucket instead of to the
  global maximum.  ``ModelRegistry.activate`` pre-compiles the kernel so
  a hot-swap never pays compile latency on the first request, and the
  snapshot is keyed by the model's ``weight_version`` counter, so stale
  weights can never serve.
* ``module`` — the reference autograd forward, kept as the
  always-correct fallback and parity oracle.

Select globally with the environment variable
``REPRO_SCORING_BACKEND=fused|module`` (read at import), at runtime with
:func:`repro.nn.fused.set_scoring_backend` /
:func:`~repro.nn.fused.use_scoring_backend`, or per call via
``score_paths(..., backend=...)``.  Scores agree across backends to
float32 roundoff (``benchmarks/bench_scoring.py`` pins parity and the
speedup; ``BENCH_scoring.json`` holds the committed numbers).
"""

from repro.serving.batching import BatchingScorer, ScoreTicket
from repro.serving.cache import CacheStats, CandidateCache, LRUCache, ScoreCache
from repro.serving.engine import EngineTicket, ServingEngine
from repro.serving.faults import (
    FaultInjector,
    FaultRule,
    format_fault_spec,
    parse_fault_spec,
)
from repro.serving.instrumentation import (
    LatencyTracker,
    OccupancyTracker,
    ServiceCounters,
    ShardMetrics,
    SplitMetrics,
    percentile,
)
from repro.serving.loadgen import (
    TimedRequest,
    WorkloadConfig,
    generate_timed_workload,
    generate_workload,
    poisson_arrivals,
    replay_open_loop,
    run_engine_workload,
    run_workload,
    zipf_weights,
)
from repro.serving.pipeline import QueryState, assign_split, normalise_split
from repro.serving.registry import ActiveModel, ModelRegistry
from repro.serving.resilience import (
    CircuitBreaker,
    ResilienceConfig,
    ResilienceCounters,
    retry_backoff,
)
from repro.serving.sharding import (
    ShardedRegistry,
    ShardLane,
    ShardRoute,
    ShardRouter,
)
from repro.serving.service import (
    RankedPath,
    RankingService,
    RankRequest,
    RankResponse,
    ServingConfig,
)

__all__ = [
    "ActiveModel",
    "BatchingScorer",
    "CacheStats",
    "CandidateCache",
    "CircuitBreaker",
    "EngineTicket",
    "FaultInjector",
    "FaultRule",
    "LatencyTracker",
    "LRUCache",
    "ModelRegistry",
    "OccupancyTracker",
    "QueryState",
    "percentile",
    "RankedPath",
    "RankingService",
    "RankRequest",
    "RankResponse",
    "ResilienceConfig",
    "ResilienceCounters",
    "ScoreCache",
    "ScoreTicket",
    "ServiceCounters",
    "ServingConfig",
    "ServingEngine",
    "ShardedRegistry",
    "ShardLane",
    "ShardMetrics",
    "ShardRoute",
    "ShardRouter",
    "SplitMetrics",
    "TimedRequest",
    "WorkloadConfig",
    "assign_split",
    "format_fault_spec",
    "generate_timed_workload",
    "generate_workload",
    "normalise_split",
    "parse_fault_spec",
    "poisson_arrivals",
    "replay_open_loop",
    "retry_backoff",
    "run_engine_workload",
    "run_workload",
    "zipf_weights",
]
