"""Serving-layer benchmark harness: concurrent engine vs sequential facade.

Times the online serving stack on a Zipf-skewed OD-hotspot workload (the
commuter regime the paper's introduction describes) and writes the
result as ``BENCH_serving.json``:

* **cold vs cached** — repeat queries against the candidate/score
  caches, the classic hotspot win;
* **concurrent vs sequential** — the headline: ``concurrency``
  closed-loop clients against a :class:`ServingEngine` (deadline-batched
  cross-request coalescing) versus the same stream through the
  synchronous per-query path, with scoring-batch occupancy showing the
  coalescing engage.  Score caches are disabled here so the comparison
  measures scoring work, not memoisation;
* **parity** — engine responses are checked element-wise against the
  synchronous facade's on the same stream (same rankings, same scores);
* **A/B split** — two published versions served side by side under a
  weighted traffic split, with per-split request accounting;
* **open loop** — the engine driven by Poisson arrivals at a multiple
  of the sequential path's throughput.

Consumed by ``benchmarks/bench_serving.py`` (standalone + pytest smoke
mode) and the ``bench-serve`` CLI subcommand, mirroring
``core.scoring_bench`` / ``graph.routing_bench``.
"""

from __future__ import annotations

import json
import math
import tempfile
import time
from dataclasses import asdict, dataclass, replace
from pathlib import Path as FilePath

import numpy as np

from repro.core.ranker import PathRankRanker, RankerConfig
from repro.core.variants import build_pathrank
from repro.errors import DataError
from repro.graph.builders import north_jutland_like
from repro.ranking.training_data import Strategy, TrainingDataConfig
from repro.serving.engine import ServingEngine
from repro.serving.instrumentation import percentile
from repro.serving.loadgen import (
    WorkloadConfig,
    generate_timed_workload,
    generate_workload,
    replay_open_loop,
    run_engine_workload,
)
from repro.serving.registry import ModelRegistry
from repro.serving.service import RankingService, RankRequest, ServingConfig

__all__ = [
    "ServingBenchConfig",
    "smoke_config",
    "full_config",
    "apply_overrides",
    "build_random_ranker",
    "run_serving_benchmark",
    "validate_report",
    "write_report",
]

SCHEMA_VERSION = 2

#: Responses must be element-wise identical across front doors: same
#: outcome, same model version, same candidate ranking.  Raw scores may
#: differ by float32 roundoff — BLAS picks different reduction orders
#: for different matmul shapes, and the engine scores the same path in
#: bigger batches than the per-query path does — so score parity is
#: bounded at the float32 budget (matching the fused-kernel contract in
#: ``core.scoring_bench``) while the ranking check stays exact.
PARITY_LIMIT = 1e-6


@dataclass(frozen=True)
class ServingBenchConfig:
    """Knobs of one serving benchmark run."""

    num_towns: int = 6
    seed: int = 11
    embedding_dim: int = 64
    hidden_size: int = 64
    fc_hidden: int = 32
    k: int = 8
    diversity_threshold: float = 0.8
    examine_limit: int = 100
    num_requests: int = 400
    num_hotspots: int = 40
    zipf_exponent: float = 1.1
    #: Minimum OD shortest-path distance (metres) for a hotspot pair:
    #: commuter queries are trips, not street-corner hops, and longer
    #: candidates put the serving cost where it belongs — in scoring.
    min_hop_distance: float = 5000.0
    concurrency: int = 32
    flush_deadline_ms: float = 4.0
    #: Flush threshold in *paths*.  Sized just under the natural
    #: in-flight batch (32 concurrent requests at ~4 diversified
    #: candidates each) so a full wave of clients flushes on the size
    #: trigger and the deadline only catches stragglers.
    max_batch_size: int = 128
    split_weight_b: float = 0.25
    open_loop_factor: float = 2.0
    repeats: int = 3
    preset: str = "full"

    def __post_init__(self) -> None:
        if self.num_towns < 1:
            raise ValueError(f"num_towns must be >= 1, got {self.num_towns}")
        if self.num_requests < 1 or self.num_hotspots < 1:
            raise ValueError("num_requests and num_hotspots must be >= 1")
        if self.concurrency < 1 or self.repeats < 1:
            raise ValueError("concurrency and repeats must be >= 1")
        if not 0.0 < self.split_weight_b < 1.0:
            raise ValueError(
                f"split_weight_b must be in (0, 1), got {self.split_weight_b}"
            )
        if self.open_loop_factor <= 0.0:
            raise ValueError(
                f"open_loop_factor must be > 0, got {self.open_loop_factor}"
            )


def smoke_config() -> ServingBenchConfig:
    """Tiny preset for the tier-1 pytest wrapper: a small region and
    model, few requests, low concurrency — a couple of seconds, stable
    under CI jitter via best-of-repeats timing."""
    return ServingBenchConfig(num_towns=2, seed=7, embedding_dim=32,
                              hidden_size=32, fc_hidden=16, k=3,
                              examine_limit=30, num_requests=80,
                              num_hotspots=12, min_hop_distance=2000.0,
                              concurrency=8, flush_deadline_ms=1.0,
                              max_batch_size=24, repeats=2, preset="smoke")


def full_config() -> ServingBenchConfig:
    """The headline preset behind the committed ``BENCH_serving.json``:
    closed-loop concurrency 32 against the sequential per-query path."""
    return ServingBenchConfig()


def apply_overrides(
    config: ServingBenchConfig,
    requests: int | None = None,
    hotspots: int | None = None,
    concurrency: int | None = None,
    flush_deadline_ms: float | None = None,
    k: int | None = None,
    seed: int | None = None,
) -> ServingBenchConfig:
    """Apply the command-line overrides shared by the ``bench-serve``
    CLI subcommand and the standalone benchmark entry point."""
    overrides: dict[str, object] = {}
    if requests is not None:
        overrides["num_requests"] = requests
    if hotspots is not None:
        overrides["num_hotspots"] = hotspots
    if concurrency is not None:
        overrides["concurrency"] = concurrency
    if flush_deadline_ms is not None:
        overrides["flush_deadline_ms"] = flush_deadline_ms
    if k is not None:
        overrides["k"] = k
    if seed is not None:
        overrides["seed"] = seed
    return replace(config, **overrides) if overrides else config


# ----------------------------------------------------------------------
# Fixture assembly
# ----------------------------------------------------------------------
def _candidates(config: ServingBenchConfig) -> TrainingDataConfig:
    return TrainingDataConfig(strategy=Strategy.D_TKDI, k=config.k,
                              diversity_threshold=config.diversity_threshold,
                              examine_limit=config.examine_limit)


def build_random_ranker(network, *, embedding_dim: int, hidden_size: int,
                        fc_hidden: int, candidates: TrainingDataConfig,
                        seed: int) -> PathRankRanker:
    """A ranker with randomly initialised weights, ready to publish.

    Serving latency does not depend on weight quality, so the serving
    and sharding benchmarks skip training; the same seed yields the
    same weights, which is how the sharding benchmark puts *identical*
    models behind its sharded and unsharded arms for parity checks.
    """
    ranker = PathRankRanker(network, RankerConfig(
        embedding_dim=embedding_dim, hidden_size=hidden_size,
        fc_hidden=fc_hidden, training_data=candidates))
    ranker.model = build_pathrank(
        "PR-A2", num_vertices=network.num_vertices,
        embedding_dim=embedding_dim, hidden_size=hidden_size,
        fc_hidden=fc_hidden, rng=seed)
    return ranker


def _publish(config: ServingBenchConfig, network, registry: ModelRegistry,
             version: str, seed: int) -> None:
    ranker = build_random_ranker(
        network, embedding_dim=config.embedding_dim,
        hidden_size=config.hidden_size, fc_hidden=config.fc_hidden,
        candidates=_candidates(config), seed=seed)
    registry.publish(ranker, version=version)


def _service(config: ServingBenchConfig, network, registry,
             score_cache_size: int,
             traffic_split=None) -> RankingService:
    serving = ServingConfig(
        candidates=_candidates(config),
        score_cache_size=score_cache_size,
        max_batch_size=config.max_batch_size,
        concurrency=config.concurrency,
        flush_deadline_ms=config.flush_deadline_ms,
        traffic_split=traffic_split,
    )
    service = RankingService(network, registry, serving)
    return service


def _replay_sequential(service: RankingService,
                       requests: list[RankRequest]) -> tuple[float, list]:
    """Per-query replay (the sequential small-batch path); returns
    elapsed seconds and the responses."""
    responses = []
    started = time.perf_counter()
    for request in requests:
        responses.append(service.rank(request))
    return time.perf_counter() - started, responses


def _latency_block(latencies: list[float]) -> dict[str, float]:
    return {
        "mean": float(np.mean(latencies)) if latencies else 0.0,
        "p50": percentile(latencies, 50.0),
        "p95": percentile(latencies, 95.0),
    }


# ----------------------------------------------------------------------
# The benchmark
# ----------------------------------------------------------------------
def run_serving_benchmark(config: ServingBenchConfig | None = None) -> dict:
    """Benchmark the serving stack at the configured scale."""
    config = config or full_config()
    network = north_jutland_like(num_towns=config.num_towns, seed=config.seed)
    workload = generate_workload(
        network,
        WorkloadConfig(num_requests=config.num_requests,
                       num_hotspots=config.num_hotspots,
                       zipf_exponent=config.zipf_exponent,
                       min_hop_distance=config.min_hop_distance),
        rng=config.seed,
    )

    with tempfile.TemporaryDirectory() as tmp_root:
        registry_root = FilePath(tmp_root)

        # -- cold vs cached (caches enabled) ---------------------------
        registry = ModelRegistry(registry_root / "cached", network)
        _publish(config, network, registry, "bench-a", seed=0)
        _publish(config, network, registry, "bench-b", seed=1)
        cached_service = _service(config, network, registry,
                                  score_cache_size=8192)
        cached_service.activate("bench-a")
        unique = list({(r.source, r.target): r for r in workload}.values())
        cold_started = time.perf_counter()
        for request in unique:
            cached_service.rank(request)
        cold_ms = (time.perf_counter() - cold_started) * 1000.0 / len(unique)
        warm_started = time.perf_counter()
        for request in unique:
            cached_service.rank(request)
        cached_ms = (time.perf_counter() - warm_started) * 1000.0 / len(unique)

        # -- concurrent vs sequential (score caches disabled) ----------
        # Two independent services so cache state cannot leak between
        # the arms; both candidate caches are warmed through the
        # warm-up hook, so the comparison is scoring-bound — exactly
        # the regime concurrent coalescing targets.
        seq_registry = ModelRegistry(registry_root / "seq", network)
        _publish(config, network, seq_registry, "bench-a", seed=0)
        seq_service = _service(config, network, seq_registry,
                               score_cache_size=0)
        seq_service.activate("bench-a")
        seq_service.warm_up(workload)

        eng_registry = ModelRegistry(registry_root / "eng", network)
        _publish(config, network, eng_registry, "bench-a", seed=0)
        eng_service = _service(config, network, eng_registry,
                               score_cache_size=0)
        eng_service.activate("bench-a")
        engine = ServingEngine(eng_service, concurrency=config.concurrency,
                               flush_deadline_ms=config.flush_deadline_ms,
                               max_batch_size=config.max_batch_size,
                               warmup=workload)

        seq_elapsed = math.inf
        seq_responses: list = []
        for _ in range(config.repeats):
            elapsed, responses = _replay_sequential(seq_service, workload)
            if elapsed < seq_elapsed:
                seq_elapsed, seq_responses = elapsed, responses

        conc_elapsed = math.inf
        conc_summary: dict = {}
        for _ in range(config.repeats):
            summary = run_engine_workload(engine, workload,
                                          concurrency=config.concurrency)
            if summary["elapsed_s"] < conc_elapsed:
                conc_elapsed = summary["elapsed_s"]
                conc_summary = summary

        # -- parity: element-wise identical responses ------------------
        engine_responses = engine.rank_batch(workload)
        mismatches = 0
        max_diff = 0.0
        for mine, theirs in zip(engine_responses, seq_responses):
            same = (mine.served_by == theirs.served_by
                    and mine.model_version == theirs.model_version
                    and [r.path.vertices for r in mine.results]
                    == [r.path.vertices for r in theirs.results])
            if not same:
                mismatches += 1
                continue
            for a, b in zip(mine.results, theirs.results):
                max_diff = max(max_diff, abs(a.score - b.score))
        engine.close()

        # -- A/B traffic split -----------------------------------------
        split = {"bench-a": 1.0 - config.split_weight_b,
                 "bench-b": config.split_weight_b}
        ab_service = _service(config, network, registry,
                              score_cache_size=8192, traffic_split=split)
        ab_service.activate("bench-a")
        ab_engine = ServingEngine(ab_service, concurrency=config.concurrency,
                                  flush_deadline_ms=config.flush_deadline_ms,
                                  max_batch_size=config.max_batch_size)
        run_engine_workload(ab_engine, workload,
                            concurrency=config.concurrency)
        ab_engine.close()
        ab_counts = {label: ab_service.split_metrics.requests_for(label)
                     for label in ab_service.split_metrics.labels()}
        total_ab = sum(ab_counts.values())

        # -- open loop: Poisson arrivals above sequential throughput ---
        sequential_qps = len(workload) / seq_elapsed
        target_qps = sequential_qps * config.open_loop_factor
        timed = generate_timed_workload(
            network,
            WorkloadConfig(num_requests=config.num_requests,
                           num_hotspots=config.num_hotspots,
                           zipf_exponent=config.zipf_exponent,
                           min_hop_distance=config.min_hop_distance,
                           arrival_rate_qps=target_qps),
            rng=config.seed,
        )
        ol_service = _service(config, network, eng_registry,
                              score_cache_size=0)
        ol_service.activate("bench-a")
        ol_service.warm_up(workload)
        ol_engine = ServingEngine(ol_service, concurrency=config.concurrency,
                                  flush_deadline_ms=config.flush_deadline_ms,
                                  max_batch_size=config.max_batch_size)
        open_loop = replay_open_loop(ol_engine, timed)
        ol_engine.close()

    occupancy = conc_summary["occupancy"]
    report = {
        "schema_version": SCHEMA_VERSION,
        "preset": config.preset,
        "config": asdict(config),
        "network": {"vertices": network.num_vertices,
                    "edges": network.num_edges},
        "cold_vs_cached": {
            "unique_queries": len(unique),
            "cold_mean_ms": cold_ms,
            "cached_mean_ms": cached_ms,
            "speedup": cold_ms / cached_ms if cached_ms > 0 else math.inf,
        },
        "sequential": {
            "requests": len(workload),
            "elapsed_s": seq_elapsed,
            "throughput_qps": sequential_qps,
            "latency_ms": _latency_block(
                [r.latency_ms for r in seq_responses]),
        },
        "concurrent": {
            "requests": len(workload),
            "concurrency": config.concurrency,
            "elapsed_s": conc_elapsed,
            "throughput_qps": len(workload) / conc_elapsed,
            "latency_ms": conc_summary["latency_ms"],
            "occupancy": occupancy,
        },
        "parity": {
            "requests": len(workload),
            "mismatched_responses": mismatches,
            "max_abs_score_diff": max_diff,
        },
        "ab_split": {
            "weights": split,
            "requests_by_split": ab_counts,
            "observed_fraction_b": (
                ab_counts.get("bench-b", 0) / total_ab if total_ab else 0.0
            ),
        },
        "open_loop": {
            "offered_qps": open_loop["offered_qps"],
            "achieved_qps": open_loop["throughput_qps"],
            "latency_ms": open_loop["latency_ms"],
            "errors": open_loop["served_by"]["error"],
        },
    }
    report["headline"] = {
        "concurrent_speedup": (
            seq_elapsed / conc_elapsed if conc_elapsed > 0 else math.inf
        ),
        "mean_batch_occupancy": occupancy["mean_requests_per_flush"],
        "concurrent_p95_ms": report["concurrent"]["latency_ms"]["p95"],
    }
    validate_report(report)
    return report


# ----------------------------------------------------------------------
# Report schema
# ----------------------------------------------------------------------
_TOP_KEYS = ("schema_version", "preset", "config", "network",
             "cold_vs_cached", "sequential", "concurrent", "parity",
             "ab_split", "open_loop", "headline")
_NUMERIC_BLOCKS = {
    "cold_vs_cached": ("unique_queries", "cold_mean_ms", "cached_mean_ms",
                       "speedup"),
    "sequential": ("requests", "elapsed_s", "throughput_qps"),
    "concurrent": ("requests", "concurrency", "elapsed_s", "throughput_qps"),
    "parity": ("requests", "mismatched_responses", "max_abs_score_diff"),
    "open_loop": ("offered_qps", "achieved_qps", "errors"),
    "headline": ("concurrent_speedup", "mean_batch_occupancy",
                 "concurrent_p95_ms"),
}


def validate_report(report: dict) -> None:
    """Check a benchmark report parses as valid ``BENCH_serving.json``.

    Raises :class:`DataError` on a malformed document or a parity
    violation; used both when a report is produced and by the smoke test
    against re-parsed JSON.
    """
    if report.get("schema_version") != SCHEMA_VERSION:
        raise DataError(
            f"unexpected schema_version {report.get('schema_version')!r}")
    missing = [key for key in _TOP_KEYS if key not in report]
    if missing:
        raise DataError(f"report missing keys: {missing}")
    for block, keys in _NUMERIC_BLOCKS.items():
        for key in keys:
            value = report[block].get(key)
            if not isinstance(value, (int, float)) or not math.isfinite(value):
                raise DataError(
                    f"{block}.{key} must be a finite number, got {value!r}")
    parity = report["parity"]
    if parity["mismatched_responses"] != 0:
        raise DataError(
            f"parity violation: {parity['mismatched_responses']} engine "
            f"responses differ from the synchronous facade's")
    if not parity["max_abs_score_diff"] <= PARITY_LIMIT:
        raise DataError(
            f"parity violation: max_abs_score_diff="
            f"{parity['max_abs_score_diff']!r}")


def write_report(report: dict, path: str | FilePath) -> FilePath:
    """Validate and write the report; returns the output path."""
    validate_report(report)
    out = FilePath(path)
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return out
