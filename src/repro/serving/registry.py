"""Versioned model artifacts with atomic hot-swap.

A registry is a directory of ``<version>.npz`` checkpoints (the format
written by :meth:`PathRankRanker.save` / ``nn.serialization``).  At most
one version is *active* at a time.  Activation is atomic with respect to
readers: :meth:`snapshot` returns an immutable :class:`ActiveModel`
record, and every in-flight request keeps scoring against the snapshot
it grabbed even while a newer version is being activated — no request
ever observes a half-swapped model.

Publishing is also atomic on disk (write to a temp file, then
``os.replace``), so a crashed publish never leaves a truncated
checkpoint that a later ``load`` would trip over.

Beyond the single active slot, any number of versions can be *resident*
at once via :meth:`pin` / :meth:`resolve`: weighted A/B traffic splits
and per-request version pinning (``RankRequest.model_version``) score
against resident snapshots side by side with the active model, each
pre-compiled for the fused scoring backend exactly like an activation.
Explicit pins are counted and balanced by :meth:`release` — releasing
the last pin on a superseded version frees its snapshot, so its model
and compiled kernel do not outlive their usefulness.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from pathlib import Path as FilePath

from repro.core.model import PathRank
from repro.core.ranker import PathRankRanker
from repro.errors import ServingError
from repro.graph.network import RoadNetwork
from repro.nn.fused import compiled_for, resolve_scoring_backend
from repro.nn.serialization import load_state

__all__ = ["ActiveModel", "ModelRegistry"]


@dataclass
class _Resident:
    """One resident (pinned) snapshot plus its explicit pin count.

    ``pins`` counts balanced :meth:`ModelRegistry.pin` /
    :meth:`ModelRegistry.release` pairs.  Residents created implicitly
    by :meth:`ModelRegistry.resolve` (traffic splits, per-request
    version pinning) keep ``pins == 0``: they stay resident until an
    :meth:`ModelRegistry.unpin`, exactly as before, but an explicit
    pin-holder releasing its last pin drops the snapshot — and with it
    the model object, whose compiled fused kernel then falls out of the
    weakly-keyed kernel cache instead of leaking for the process
    lifetime.
    """

    snapshot: "ActiveModel"
    pins: int = 0


@dataclass(frozen=True)
class ActiveModel:
    """Immutable view of the currently active model.

    ``generation`` increments on every activation, so two activations of
    the same version are still distinguishable snapshots.
    """

    version: str
    model: PathRank
    generation: int
    metadata: dict[str, object] = field(default_factory=dict)


class ModelRegistry:
    """Loads versioned PathRank checkpoints and hot-swaps the active one."""

    def __init__(self, root: str | FilePath, network: RoadNetwork) -> None:
        self._root = FilePath(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._network = network
        self._active: ActiveModel | None = None
        #: Version -> resident snapshot (plus pin count) for A/B traffic
        #: splits and per-request pinning: loaded once, served lock-free.
        self._pinned: dict[str, _Resident] = {}
        self._generation = 0
        self._lock = threading.Lock()
        #: Lifecycle listeners, called as ``listener(event, version)``
        #: outside the registry lock (see :meth:`subscribe`).
        self._listeners: list = []

    @property
    def root(self) -> FilePath:
        return self._root

    @property
    def network(self) -> RoadNetwork:
        """The network this registry's checkpoints were trained against."""
        return self._network

    # ------------------------------------------------------------------
    # Artifact management
    # ------------------------------------------------------------------
    def _path_for(self, version: str) -> FilePath:
        if not version or "/" in version or version.startswith("."):
            raise ServingError(f"invalid model version name {version!r}")
        return self._root / f"{version}.npz"

    def versions(self) -> list[str]:
        """Published versions, sorted lexicographically."""
        return sorted(p.stem for p in self._root.glob("*.npz")
                      if not p.stem.startswith("."))

    def has_version(self, version: str) -> bool:
        return self._path_for(version).exists()

    def next_version(self) -> str:
        """The next free ``vNNNN`` slot."""
        taken = set(self.versions())
        number = len(taken) + 1
        while f"v{number:04d}" in taken:
            number += 1
        return f"v{number:04d}"

    def publish(self, ranker: PathRankRanker, version: str | None = None,
                activate: bool = False) -> str:
        """Persist a trained ranker's model as a new version.

        The checkpoint lands under its final name only once fully
        written.  With ``activate=True`` the new version goes live
        immediately (still atomically).
        """
        # The lock covers version allocation through the rename: without
        # it two concurrent publishes could allocate the same slot and
        # interleave writes to the same temp file.
        with self._lock:
            version = version or self.next_version()
            final = self._path_for(version)
            if final.exists():
                raise ServingError(f"model version {version!r} already exists")
            temp = self._root / f".publish-{version}.npz"
            try:
                ranker.save(temp)
                os.replace(temp, final)
            finally:
                temp.unlink(missing_ok=True)
        if activate:
            self.activate(version)
        return version

    def load(self, version: str) -> PathRank:
        """Instantiate the model stored under ``version`` (no activation)."""
        path = self._path_for(version)
        if not path.exists():
            known = ", ".join(self.versions()) or "none"
            raise ServingError(
                f"model version {version!r} not found in {self._root} "
                f"(published: {known})"
            )
        ranker = PathRankRanker(self._network).load(path)
        assert ranker.model is not None
        return ranker.model

    # ------------------------------------------------------------------
    # Hot-swap
    # ------------------------------------------------------------------
    def activate(self, version: str) -> ActiveModel:
        """Make ``version`` the active model, atomically.

        The replacement model is fully loaded *before* the swap, so the
        previous version keeps serving until the single reference
        assignment below; readers holding an older snapshot are
        unaffected.
        """
        active = self._load_snapshot(version)
        with self._lock:
            self._active = active
            resident = self._pinned.get(version)
            if resident is not None:
                # Refresh an already-resident pin so split traffic sees
                # the fresh snapshot (pin count carries over) — but
                # never *grow* the pinned set here, or every hot-swap of
                # a long-running service would leak its superseded model
                # into memory.
                resident.snapshot = active
        self._notify("activate", version)
        return active

    def _load_snapshot(self, version: str) -> ActiveModel:
        """Load ``version`` into a ready-to-serve immutable snapshot."""
        model = self.load(version)
        if resolve_scoring_backend() == "fused":
            # Warm the fused inference kernel up front so the first
            # request against this snapshot pays no compile latency.
            compiled_for(model)
        _, metadata = load_state(self._path_for(version))
        with self._lock:
            self._generation += 1
            return ActiveModel(version=version, model=model,
                               generation=self._generation,
                               metadata=dict(metadata))

    def subscribe(self, listener) -> None:
        """Register a lifecycle listener: ``listener(event, version)``.

        Events: ``"activate"`` after a version goes live and
        ``"deactivate"`` after the active slot is cleared (``version``
        names the model that *was* active).  Listeners run outside the
        registry lock, in the mutating caller's thread; exceptions are
        swallowed — a sick observer must not break a hot-swap.  The
        execution plane uses this to unlink the shared-memory weight
        segments of versions that can no longer serve.
        """
        self._listeners.append(listener)

    def unsubscribe(self, listener) -> None:
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _notify(self, event: str, version: str) -> None:
        for listener in list(self._listeners):
            try:
                listener(event, version)
            except Exception:  # noqa: BLE001 - observers must not break swaps
                pass

    def deactivate(self) -> None:
        with self._lock:
            previous = self._active
            self._active = None
        if previous is not None:
            self._notify("deactivate", previous.version)

    def snapshot(self) -> ActiveModel | None:
        """The active model at this instant (stable for the caller)."""
        return self._active

    def require_snapshot(self) -> ActiveModel:
        active = self.snapshot()
        if active is None:
            raise ServingError("no active model; publish and activate one first")
        return active

    # ------------------------------------------------------------------
    # Multi-model residency (A/B splits, per-request pinning)
    # ------------------------------------------------------------------
    def pin(self, version: str) -> ActiveModel:
        """Make ``version`` resident and take one pin on it.

        Pinned snapshots serve per-request version pinning and A/B
        traffic splits side by side with the active model.  Pins are
        counted: every ``pin`` must be balanced by a :meth:`release`,
        and releasing the last pin on a version nothing else holds (e.g.
        one superseded by a later :meth:`activate`) frees the snapshot —
        and thereby its model and compiled scoring kernel.  Pinning the
        currently *active* version reuses the live snapshot rather than
        loading a duplicate model (which previously left two copies of
        the same weights — and two compiled kernels — resident).

        At most one load happens per version even under concurrent
        callers (a rare double load resolves to the first winner).
        """
        while True:
            resident = self._ensure_resident(version)
            with self._lock:
                # Re-check residency: a concurrent last-release may have
                # evicted the record between the lookup and this bump.
                if self._pinned.get(version) is resident:
                    resident.pins += 1
                    return resident.snapshot

    def _ensure_resident(self, version: str) -> _Resident:
        """The resident record for ``version``, loading it if needed."""
        with self._lock:
            resident = self._pinned.get(version)
            if resident is not None:
                return resident
            active = self._active
        if active is not None and active.version == version:
            loaded = active  # reuse the live snapshot: no duplicate load
        else:
            loaded = self._load_snapshot(version)
        with self._lock:
            return self._pinned.setdefault(version, _Resident(loaded))

    def release(self, version: str) -> None:
        """Give back one :meth:`pin`; the last release frees the snapshot.

        Raises :class:`ServingError` for a version without outstanding
        pins — an unbalanced release is a caller bug that would silently
        evict someone else's resident model.
        """
        with self._lock:
            resident = self._pinned.get(version)
            if resident is None or resident.pins < 1:
                raise ServingError(
                    f"model version {version!r} has no outstanding pins")
            resident.pins -= 1
            if resident.pins == 0:
                # Implicit (resolve-created) residency is gone too: the
                # next split request re-resolves, and a superseded
                # version's model becomes garbage right now.
                del self._pinned[version]

    def unpin(self, version: str | None = None) -> None:
        """Force-drop one resident version (all with ``None``).

        Ignores pin counts — this is the operator's big hammer for
        evicting split targets after an experiment ends; balanced
        pin-holders should use :meth:`release`.
        """
        with self._lock:
            if version is None:
                self._pinned.clear()
            else:
                self._pinned.pop(version, None)

    def pinned_versions(self) -> dict[str, int]:
        """Resident versions and their outstanding explicit pin counts."""
        with self._lock:
            return {version: resident.pins
                    for version, resident in self._pinned.items()}

    def resolve(self, version: str | None = None) -> ActiveModel | None:
        """The snapshot a request routed to ``version`` should score on.

        ``None`` means "whatever is active" (may itself be ``None``);
        a concrete version resolves to the active snapshot when it
        matches, else to a resident pinned snapshot, loading and pinning
        it on first use.  Raises :class:`ServingError` for versions that
        were never published.
        """
        if version is None:
            return self.snapshot()
        active = self._active
        if active is not None and active.version == version:
            return active
        # Residency without a pin: split/pinned-request targets stay
        # loaded across requests but don't accumulate pin counts, so a
        # single unpin (or a pin-holder's last release) can evict them.
        return self._ensure_resident(version).snapshot
