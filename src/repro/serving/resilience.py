"""The serving resilience plane: deadlines, shedding, breakers, retries.

Everything below PR 6 fails *open-ended*: a slow or poisoned shard lane
stalls whole flush batches, admission queues grow without bound under
overload, and a waiter can block forever on a ticket whose worker died.
This module holds the policy objects that turn those failure modes into
*bounded* ones:

* :class:`ResilienceConfig` — the knobs, carried on
  :class:`~repro.serving.service.ServingConfig` (``config.resilience``)
  and surfaced as ``--deadline-ms`` / ``--max-queue`` / ``--shed-policy``
  CLI flags.  The defaults keep every mechanism dormant or free:
  no deadline, unbounded queue, breakers that only pay a per-*group*
  (not per-request) window append, and retries that only run after a
  failure already happened — so a service that never fails is
  byte-identical in behaviour to the PR-6 stack.
* **Deadlines** — a per-request millisecond budget
  (``RankRequest.deadline_ms``, defaulting to
  ``resilience.deadline_ms``) carried on ``QueryState`` and checked at
  every pipeline stage boundary (admit → prepare → score → assemble).
  An expired request terminates with a structured
  ``error_code="deadline_exceeded"`` response instead of occupying
  later stages.
* **Load shedding** — a bounded admission queue on the concurrent
  engine (``max_queue``).  When full, ``shed_policy`` picks the
  degradation: ``"reject"`` answers immediately with a structured
  error carrying a ``retry_after_ms`` hint; ``"degrade"`` skips model
  scoring and serves the shortest-path fallback (bounded work in the
  caller's thread, no queue growth either way).
* :class:`CircuitBreaker` — one per shard lane, closed/open/half-open
  over a rolling window of scoring-group outcomes (failures, and
  optionally successes slower than ``breaker_latency_ms``).  A tripped
  lane's requests route straight to the existing global shortest-path
  fallback without touching the scorer; after ``breaker_cooldown_ms``
  a few half-open probe groups test the lane and either close it again
  or re-open it.
* :func:`retry_backoff` — deterministic jittered exponential backoff
  for transient scoring/registry failures.  Hash-seeded (not
  RNG-state-seeded) so replays and both front doors retry on the same
  schedule.

:class:`ResilienceCounters` aggregates the shed / deadline / breaker /
retry accounting every response path bumps; the service publishes it
(plus per-lane breaker state) under the canonical ``resilience.*``
metric prefix.  See ``docs/robustness.md``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from hashlib import blake2b

__all__ = ["SHED_POLICIES", "BREAKER_STATES", "ResilienceConfig",
           "ResilienceCounters", "CircuitBreaker", "retry_backoff"]

#: What happens to a request the bounded admission queue cannot hold:
#: ``"reject"`` answers it immediately with a structured error (plus a
#: ``retry_after_ms`` hint), ``"degrade"`` serves the shortest-path
#: fallback without queueing any model work.
SHED_POLICIES = ("reject", "degrade")

#: Circuit-breaker lifecycle states.
BREAKER_STATES = ("closed", "open", "half_open")


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the serving resilience plane (all dormant-by-default).

    ``deadline_ms=None`` disables deadline checking entirely;
    ``max_queue=0`` leaves the engine inbox unbounded.  Breakers are on
    by default but cost one deque append per scoring *group* and can
    never trip without real failures; ``retry_attempts`` only runs
    after a failure already happened.  The defaults therefore change
    nothing about a healthy service's responses — the exact-parity
    guarantee ``benchmarks/bench_robustness.py`` pins.
    """

    #: Default per-request deadline budget in milliseconds (``None``
    #: disables; ``RankRequest.deadline_ms`` overrides per request).
    deadline_ms: float | None = None
    #: Engine admission-queue bound (requests waiting for a worker);
    #: 0 = unbounded.
    max_queue: int = 0
    #: What to do with a request the full queue cannot admit.
    shed_policy: str = "reject"
    #: ``retry_after_ms`` hint attached to shed-rejected responses.
    retry_after_ms: float = 50.0
    #: Per-shard-lane circuit breakers over scoring-group outcomes.
    breaker_enabled: bool = True
    #: Rolling outcome window per lane (scoring groups, not requests).
    breaker_window: int = 32
    #: Minimum outcomes in the window before the breaker may trip.
    breaker_min_samples: int = 8
    #: Failure fraction of the window at which the breaker opens.
    breaker_failure_rate: float = 0.5
    #: Optional latency SLO: a successful group slower than this counts
    #: as a failure in the window (``None`` = outcome-only).
    breaker_latency_ms: float | None = None
    #: How long an open breaker blocks its lane before probing.
    breaker_cooldown_ms: float = 1000.0
    #: Consecutive half-open probe successes required to close again.
    breaker_half_open_probes: int = 2
    #: Transient scoring/registry failures retried this many times
    #: (0 disables; retries never extend past the request deadline).
    retry_attempts: int = 1
    #: Exponential backoff base (first retry waits ~this long).
    retry_base_ms: float = 1.0
    #: Backoff cap per attempt.
    retry_max_ms: float = 50.0
    #: Jitter fraction in [0, 1]: each delay is scaled by a
    #: deterministic draw from ``[1 - jitter, 1]``.
    retry_jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.deadline_ms is not None and self.deadline_ms <= 0.0:
            raise ValueError(
                f"deadline_ms must be > 0 (or None), got {self.deadline_ms}")
        if self.max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {self.max_queue}")
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"shed_policy must be one of {SHED_POLICIES}, "
                f"got {self.shed_policy!r}")
        if self.retry_after_ms < 0.0:
            raise ValueError(
                f"retry_after_ms must be >= 0, got {self.retry_after_ms}")
        if self.breaker_window < 1:
            raise ValueError(
                f"breaker_window must be >= 1, got {self.breaker_window}")
        if not 1 <= self.breaker_min_samples <= self.breaker_window:
            raise ValueError(
                f"breaker_min_samples must be in [1, breaker_window], "
                f"got {self.breaker_min_samples}")
        if not 0.0 < self.breaker_failure_rate <= 1.0:
            raise ValueError(
                f"breaker_failure_rate must be in (0, 1], "
                f"got {self.breaker_failure_rate}")
        if self.breaker_latency_ms is not None \
                and self.breaker_latency_ms <= 0.0:
            raise ValueError(
                f"breaker_latency_ms must be > 0 (or None), "
                f"got {self.breaker_latency_ms}")
        if self.breaker_cooldown_ms < 0.0:
            raise ValueError(
                f"breaker_cooldown_ms must be >= 0, "
                f"got {self.breaker_cooldown_ms}")
        if self.breaker_half_open_probes < 1:
            raise ValueError(
                f"breaker_half_open_probes must be >= 1, "
                f"got {self.breaker_half_open_probes}")
        if self.retry_attempts < 0:
            raise ValueError(
                f"retry_attempts must be >= 0, got {self.retry_attempts}")
        if self.retry_base_ms < 0.0 or self.retry_max_ms < 0.0:
            raise ValueError("retry_base_ms and retry_max_ms must be >= 0")
        if not 0.0 <= self.retry_jitter <= 1.0:
            raise ValueError(
                f"retry_jitter must be in [0, 1], got {self.retry_jitter}")

    @property
    def active(self) -> bool:
        """Whether any mechanism beyond the free defaults is armed."""
        return (self.deadline_ms is not None or self.max_queue > 0
                or self.breaker_enabled or self.retry_attempts > 0)


def retry_backoff(attempt: int, config: ResilienceConfig,
                  key: object = None) -> float:
    """The jittered exponential delay (seconds) before retry ``attempt``.

    Attempt 1 waits ~``retry_base_ms``, doubling per attempt up to
    ``retry_max_ms``.  Jitter is a deterministic hash draw over
    ``(key, attempt)`` — not RNG state — so the same request retries on
    the same schedule on every front door and every replay, while
    different requests (different keys) de-synchronise instead of
    thundering back in lock-step.
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    delay_ms = min(config.retry_base_ms * 2.0 ** (attempt - 1),
                   config.retry_max_ms)
    if config.retry_jitter > 0.0:
        digest = blake2b(repr((key, attempt)).encode("utf-8"),
                         digest_size=8).digest()
        draw = int.from_bytes(digest, "big") / 2.0 ** 64  # [0, 1)
        delay_ms *= 1.0 - config.retry_jitter * draw
    return delay_ms / 1000.0


class CircuitBreaker:
    """Closed/open/half-open gate over one shard lane's scoring health.

    Outcomes are recorded per scoring *group* (one coalesced flush of a
    lane), not per request, so the hot-path cost is one deque append
    per forward batch.  The clock is injectable for deterministic
    lifecycle tests.

    * **closed** — everything flows; a rolling window of the last
      ``breaker_window`` outcomes trips the breaker open once at least
      ``breaker_min_samples`` outcomes show a failure fraction of
      ``breaker_failure_rate`` or worse.
    * **open** — :meth:`allow` refuses (the service routes the lane's
      requests to the global fallback) until ``breaker_cooldown_ms``
      has elapsed, then the breaker moves to half-open.
    * **half-open** — up to ``breaker_half_open_probes`` probe groups
      are admitted; that many consecutive successes close the breaker,
      any failure re-opens it (and restarts the cooldown).
    """

    def __init__(self, config: ResilienceConfig,
                 clock=time.monotonic) -> None:
        self.config = config
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        #: Rolling outcomes, newest last; ``True`` = failure.
        self._window: deque[bool] = deque(maxlen=config.breaker_window)
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0
        self.trips = 0
        self.rejections = 0
        self.recoveries = 0

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    def _maybe_half_open_locked(self) -> None:
        if self._state == "open" and (self._clock() - self._opened_at) * 1000.0 \
                >= self.config.breaker_cooldown_ms:
            self._state = "half_open"
            self._probes_in_flight = 0
            self._probe_successes = 0

    def allow(self) -> bool:
        """Whether the lane may score a group right now.

        In half-open state this *claims* a probe slot, so callers must
        follow every allowed attempt with :meth:`record_success` or
        :meth:`record_failure`.
        """
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == "closed":
                return True
            if self._state == "half_open" \
                    and self._probes_in_flight \
                    < self.config.breaker_half_open_probes:
                self._probes_in_flight += 1
                return True
            self.rejections += 1
            return False

    def record_success(self, latency_ms: float | None = None) -> None:
        slo = self.config.breaker_latency_ms
        failed = (slo is not None and latency_ms is not None
                  and latency_ms > slo)
        self._record(failed)

    def record_failure(self) -> None:
        self._record(True)

    def _record(self, failed: bool) -> None:
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == "half_open":
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                if failed:
                    self._trip_locked()
                else:
                    self._probe_successes += 1
                    if self._probe_successes \
                            >= self.config.breaker_half_open_probes:
                        self._state = "closed"
                        self._window.clear()
                        self.recoveries += 1
                return
            if self._state == "open":
                # A straggler outcome from before the trip: ignore, the
                # cooldown clock is already running.
                return
            self._window.append(failed)
            if len(self._window) >= self.config.breaker_min_samples:
                failures = sum(self._window)
                if failures / len(self._window) \
                        >= self.config.breaker_failure_rate:
                    self._trip_locked()

    def _trip_locked(self) -> None:
        self._state = "open"
        self._opened_at = self._clock()
        self._window.clear()
        self.trips += 1

    def as_dict(self) -> dict[str, object]:
        with self._lock:
            self._maybe_half_open_locked()
            window = list(self._window)
            return {
                "state": self._state,
                "window_size": len(window),
                "window_failures": sum(window),
                "trips": self.trips,
                "rejections": self.rejections,
                "recoveries": self.recoveries,
            }


@dataclass
class ResilienceCounters:
    """How often each resilience mechanism fired (service-wide).

    ``shed_rejected`` / ``shed_degraded`` split by the policy that shed
    the request; ``breaker_degraded`` counts requests routed to the
    fallback by an open breaker; ``retries`` counts backoff sleeps and
    ``retry_successes`` how many of them rescued the operation;
    ``invalid_requests`` counts admissions refused by input validation.
    """

    shed_rejected: int = 0
    shed_degraded: int = 0
    deadline_exceeded: int = 0
    breaker_degraded: int = 0
    retries: int = 0
    retry_successes: int = 0
    invalid_requests: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def bump(self, field_name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, field_name, getattr(self, field_name) + amount)

    def as_dict(self) -> dict[str, int]:
        with self._lock:
            return {
                "shed_rejected": self.shed_rejected,
                "shed_degraded": self.shed_degraded,
                "deadline_exceeded": self.deadline_exceeded,
                "breaker_degraded": self.breaker_degraded,
                "retries": self.retries,
                "retry_successes": self.retry_successes,
                "invalid_requests": self.invalid_requests,
            }
