"""Training loop for PathRank models.

The paper frames ranking as *regression*: every candidate is scored
against its weighted-Jaccard ground truth with MSE.  This trainer keeps
that objective and adds a **within-query pairwise ranking term**:
batches are whole queries, and for every candidate pair of a query whose
true scores differ by at least ``rank_margin``, a logistic pairwise loss
pushes the predicted scores into the true order.

The pairwise term exists because of a substrate difference documented in
DESIGN.md: candidates for one query share both endpoints and most of
their mileage, so with a purely pointwise loss the gradient signal is
dominated by between-query calibration while the evaluation metrics
(Kendall τ / Spearman ρ) only measure *within-query* order.  Setting
``rank_weight = 0`` recovers the paper's pure regression objective (the
ablation benchmark compares both).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.batching import bucketed_batch_indices, encode_paths
from repro.core.model import PathRank
from repro.core.variants import PathRankMultiTask
from repro.errors import TrainingError
from repro.nn import Adam, MSELoss, Tensor, clip_grad_norm, no_grad
from repro.ranking.training_data import RankingQuery
from repro.rng import RngLike, make_rng

__all__ = ["TrainerConfig", "TrainingHistory", "Trainer", "flatten_queries"]


@dataclass(frozen=True)
class TrainerConfig:
    """Hyper-parameters of the optimisation loop."""

    epochs: int = 60
    queries_per_batch: int = 16
    learning_rate: float = 3e-3
    weight_decay: float = 0.0
    clip_norm: float = 5.0
    patience: int = 12
    min_delta: float = 1e-5
    rank_weight: float = 1.0     # weight of the pairwise within-query term
    rank_margin: float = 0.05    # min true-score gap for a training pair
    rank_scale: float = 8.0      # logistic sharpness on predicted gaps
    aux_weight: float = 0.3      # beta for the multi-task variant
    #: Batch queries of similar candidate length together (the same
    #: bucketed-padding idiom inference uses), so each batch pads to
    #: roughly its own maximum instead of the epoch-wide one.  Every
    #: query is still visited once per epoch in a shuffled batch order,
    #: but batch composition correlates with trip length, which trades
    #: pointwise calibration (MAE slightly worse) for ranking quality
    #: (tau slightly better) on small corpora — hence opt-in: flip it on
    #: when epoch wall-clock on long-path corpora is what matters.
    bucket_by_length: bool = False

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.queries_per_batch < 1:
            raise ValueError(
                f"queries_per_batch must be >= 1, got {self.queries_per_batch}"
            )
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {self.learning_rate}")
        if self.clip_norm <= 0:
            raise ValueError(f"clip_norm must be positive, got {self.clip_norm}")
        if self.patience < 1:
            raise ValueError(f"patience must be >= 1, got {self.patience}")
        if self.rank_weight < 0 or self.aux_weight < 0:
            raise ValueError("loss weights must be non-negative")
        if not 0.0 <= self.rank_margin <= 1.0:
            raise ValueError(f"rank_margin must be in [0, 1], got {self.rank_margin}")
        if self.rank_scale <= 0:
            raise ValueError(f"rank_scale must be positive, got {self.rank_scale}")


@dataclass
class TrainingHistory:
    """Per-epoch records for analysis and the convergence tests."""

    train_loss: list[float] = field(default_factory=list)
    validation_loss: list[float] = field(default_factory=list)
    gradient_norm: list[float] = field(default_factory=list)
    best_epoch: int = -1
    stopped_early: bool = False

    @property
    def epochs_run(self) -> int:
        return len(self.train_loss)


def flatten_queries(
    queries: Sequence[RankingQuery], with_aux: bool = False
):
    """Per-query training material.

    Returns a list of ``(paths, targets, pair_indices)`` triples, one per
    query: ``targets`` is ``(n,)`` scores or ``(n, 3)`` with auxiliary
    columns (similarity, length ratio, time ratio); ``pair_indices`` is a
    ``(p, 2)`` int array of (better, worse) candidate positions.
    """
    if not queries:
        raise TrainingError("no queries to train on")
    material = []
    for query in queries:
        lengths = [c.path.length for c in query.candidates]
        times = [c.path.travel_time for c in query.candidates]
        best_length, best_time = min(lengths), min(times)
        paths = query.paths()
        scores = np.array(query.scores())
        if with_aux:
            aux = np.column_stack([
                scores,
                [best_length / c.path.length for c in query.candidates],
                [best_time / c.path.travel_time for c in query.candidates],
            ])
            targets = aux
        else:
            targets = scores
        material.append((paths, targets, scores))
    return material


def _pairs_within(scores: np.ndarray, margin: float) -> np.ndarray:
    """(better, worse) index pairs with a true-score gap above margin."""
    better, worse = [], []
    n = scores.size
    for i in range(n):
        for j in range(n):
            if scores[i] > scores[j] + margin:
                better.append(i)
                worse.append(j)
    if not better:
        return np.zeros((0, 2), dtype=np.int64)
    return np.column_stack([better, worse]).astype(np.int64)


class Trainer:
    """Optimises a PathRank model on ranking queries."""

    def __init__(
        self,
        model: PathRank,
        config: TrainerConfig | None = None,
        rng: RngLike = None,
    ) -> None:
        self.model = model
        self.config = config or TrainerConfig()
        self._rng = make_rng(rng)
        self._loss = MSELoss()
        self.is_multitask = isinstance(model, PathRankMultiTask)

    # ------------------------------------------------------------------
    # Loss evaluation
    # ------------------------------------------------------------------
    def _query_batch_loss(self, batch) -> Tensor:
        """Combined loss over a list of query materials."""
        config = self.config
        paths = [p for qpaths, _, _ in batch for p in qpaths]
        vertex_ids, mask = encode_paths(paths)

        if self.is_multitask:
            predictions, aux_pred = self.model.forward_with_aux(vertex_ids, mask)
            targets = np.vstack([t for _, t, _ in batch])
            loss = self._loss(predictions, Tensor(targets[:, 0]))
            loss = loss + config.aux_weight * self._loss(aux_pred,
                                                         Tensor(targets[:, 1:]))
        else:
            predictions = self.model(vertex_ids, mask)
            targets = np.concatenate([t for _, t, _ in batch])
            loss = self._loss(predictions, Tensor(targets))

        if config.rank_weight > 0:
            better_idx: list[int] = []
            worse_idx: list[int] = []
            offset = 0
            for qpaths, _, scores in batch:
                pairs = _pairs_within(scores, config.rank_margin)
                if pairs.size:
                    better_idx.extend((pairs[:, 0] + offset).tolist())
                    worse_idx.extend((pairs[:, 1] + offset).tolist())
                offset += len(qpaths)
            if better_idx:
                gap = predictions[np.asarray(better_idx)] \
                    - predictions[np.asarray(worse_idx)]
                # Logistic pairwise loss: -log sigmoid(scale * gap).
                margin_logit = (gap * config.rank_scale).sigmoid()
                pair_loss = (0.0 - margin_logit.clip(1e-9, 1.0).log()).mean()
                loss = loss + config.rank_weight * pair_loss
        return loss

    def _dataset_loss(self, material) -> float:
        """Mean per-query loss in eval mode (used for validation)."""
        was_training = self.model.training
        self.model.eval()
        try:
            total = 0.0
            for query_material in material:
                with no_grad():
                    loss = self._query_batch_loss([query_material])
                total += loss.item()
            return total / len(material)
        finally:
            if was_training:
                self.model.train()

    # ------------------------------------------------------------------
    # Fit
    # ------------------------------------------------------------------
    def fit(
        self,
        train_queries: Sequence[RankingQuery],
        validation_queries: Sequence[RankingQuery] | None = None,
    ) -> TrainingHistory:
        """Train until convergence or the epoch budget.

        Early stopping watches the validation loss when validation
        queries are provided, the training loss otherwise; the weights of
        the best epoch are restored before returning.
        """
        config = self.config
        material = flatten_queries(train_queries, with_aux=self.is_multitask)
        validation_material = None
        if validation_queries:
            validation_material = flatten_queries(validation_queries,
                                                  with_aux=self.is_multitask)

        parameters = self.model.parameters(trainable_only=True)
        if not parameters:
            raise TrainingError("the model has no trainable parameters")
        optimizer = Adam(parameters, lr=config.learning_rate,
                         weight_decay=config.weight_decay)

        history = TrainingHistory()
        best_loss = np.inf
        best_state: dict[str, np.ndarray] | None = None
        stale_epochs = 0

        self.model.train()
        order = np.arange(len(material))
        # A query's padded width is its longest candidate; batching
        # similar-width queries together keeps training padding
        # per-bucket, exactly like bucketed inference batches.
        query_widths = [max(path.num_vertices for path in qpaths)
                        for qpaths, _, _ in material]
        for epoch in range(config.epochs):
            if config.bucket_by_length:
                batch_indices = bucketed_batch_indices(
                    query_widths, config.queries_per_batch, rng=self._rng)
            else:
                self._rng.shuffle(order)
                batch_indices = [
                    order[start:start + config.queries_per_batch]
                    for start in range(0, len(order),
                                       config.queries_per_batch)
                ]
            epoch_losses: list[float] = []
            epoch_norms: list[float] = []
            for index in batch_indices:
                batch = [material[int(i)] for i in index]
                optimizer.zero_grad()
                loss = self._query_batch_loss(batch)
                loss.backward()
                epoch_norms.append(clip_grad_norm(parameters, config.clip_norm))
                optimizer.step()
                epoch_losses.append(loss.item())
            history.train_loss.append(float(np.mean(epoch_losses)))
            history.gradient_norm.append(float(np.mean(epoch_norms)))

            if validation_material is not None:
                watched = self._dataset_loss(validation_material)
                history.validation_loss.append(watched)
            else:
                watched = history.train_loss[-1]

            if watched < best_loss - config.min_delta:
                best_loss = watched
                best_state = self.model.state_dict()
                history.best_epoch = epoch
                stale_epochs = 0
            else:
                stale_epochs += 1
                if stale_epochs >= config.patience:
                    history.stopped_early = True
                    break

        if best_state is not None:
            self.model.load_state_dict(best_state)
        self.model.eval()
        return history
