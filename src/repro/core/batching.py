"""Padded mini-batching of variable-length vertex sequences.

PathRank consumes candidate paths as vertex-id sequences of different
lengths.  A batch is encoded as a ``(steps, batch)`` id matrix plus a
``(steps, batch)`` {0,1} mask; the masked GRU then yields each path's
final hidden state at its own length.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.errors import DataError
from repro.graph.path import Path
from repro.rng import RngLike, make_rng

__all__ = ["encode_paths", "minibatches"]


def encode_paths(paths: Sequence[Path]) -> tuple[np.ndarray, np.ndarray]:
    """Pad paths to a common length.

    Returns ``(vertex_ids, mask)`` of shape ``(steps, batch)``.  Padding
    uses vertex id 0 — a valid embedding row whose contribution the mask
    suppresses.
    """
    if not paths:
        raise DataError("cannot encode an empty path batch")
    steps = max(path.num_vertices for path in paths)
    batch = len(paths)
    vertex_ids = np.zeros((steps, batch), dtype=np.int64)
    mask = np.zeros((steps, batch), dtype=float)
    for column, path in enumerate(paths):
        length = path.num_vertices
        vertex_ids[:length, column] = path.vertices
        mask[:length, column] = 1.0
    return vertex_ids, mask


def minibatches(
    paths: Sequence[Path],
    targets: np.ndarray,
    batch_size: int,
    rng: RngLike = None,
    shuffle: bool = True,
) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Yield ``(vertex_ids, mask, target_batch)`` mini-batches.

    ``targets`` may be 1-D (similarity scores) or 2-D (multi-task
    targets, one row per path).
    """
    targets = np.asarray(targets, dtype=float)
    if len(paths) != targets.shape[0]:
        raise DataError(
            f"paths ({len(paths)}) and targets ({targets.shape[0]}) disagree"
        )
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    order = np.arange(len(paths))
    if shuffle:
        make_rng(rng).shuffle(order)
    for start in range(0, len(paths), batch_size):
        index = order[start:start + batch_size]
        chunk = [paths[int(i)] for i in index]
        vertex_ids, mask = encode_paths(chunk)
        yield vertex_ids, mask, targets[index]
