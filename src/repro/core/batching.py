"""Padded mini-batching of variable-length vertex sequences.

PathRank consumes candidate paths as vertex-id sequences of different
lengths.  A batch is encoded as a ``(steps, batch)`` id matrix plus a
``(steps, batch)`` {0,1} mask; the masked GRU then yields each path's
final hidden state at its own length.

Encoding is allocation-light: ids are ``int32``, masks ``float32``, and
repeat batch shapes reuse a per-thread scratch buffer instead of
allocating fresh ``max(steps)``-sized arrays per call (see
:func:`encode_paths`).  For mixed-length batches,
:func:`length_buckets` / :func:`encode_path_buckets` group paths of
similar length so each group pads to its *own* maximum instead of the
global one — the fused scoring kernel and the serving batcher both lean
on this.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator, Sequence

import numpy as np

from repro.errors import DataError
from repro.graph.path import Path
from repro.rng import RngLike, make_rng

__all__ = [
    "bucketed_batch_indices",
    "encode_paths",
    "encode_path_buckets",
    "length_buckets",
    "minibatches",
]

#: Default greedy-bucketing knobs: a bucket closes once it holds at
#: least ``BUCKET_MIN_SIZE`` paths *and* the next (sorted) length would
#: exceed ``BUCKET_GROWTH`` times the bucket's shortest member.  The
#: size floor keeps tiny batches from fragmenting into per-length
#: buckets, where the per-bucket fixed cost would beat the padding
#: saved.
BUCKET_GROWTH = 1.5
BUCKET_MIN_SIZE = 8

_scratch = threading.local()


def _scratch_pair(steps: int, batch: int,
                  store: dict) -> tuple[np.ndarray, np.ndarray]:
    """Zeroed ``(steps, batch)`` id/mask views over per-thread buffers."""
    need = steps * batch
    ids_base = store.get("ids")
    if ids_base is None or ids_base.size < need:
        ids_base = np.zeros(need, dtype=np.int32)
        store["ids"] = ids_base
    else:
        ids_base[:need] = 0
    mask_base = store.get("mask")
    if mask_base is None or mask_base.size < need:
        mask_base = np.zeros(need, dtype=np.float32)
        store["mask"] = mask_base
    else:
        mask_base[:need] = 0.0
    return (ids_base[:need].reshape(steps, batch),
            mask_base[:need].reshape(steps, batch))


def encode_paths(paths: Sequence[Path],
                 reuse: bool = True) -> tuple[np.ndarray, np.ndarray]:
    """Pad paths to a common length.

    Returns ``(vertex_ids, mask)`` of shape ``(steps, batch)`` —
    ``int32`` ids and a ``float32`` mask.  Padding uses vertex id 0 — a
    valid embedding row whose contribution the mask suppresses.

    With ``reuse`` (the default) the arrays are views over a per-thread
    scratch buffer and are **overwritten by the next call on the same
    thread** — encode, consume, move on, which is exactly what the
    training loop and the scoring kernels do.  Pass ``reuse=False`` to
    get fresh arrays you can hold across calls.
    """
    if not paths:
        raise DataError("cannot encode an empty path batch")
    steps = max(path.num_vertices for path in paths)
    batch = len(paths)
    if reuse:
        store = getattr(_scratch, "store", None)
        if store is None:
            store = _scratch.store = {}
        vertex_ids, mask = _scratch_pair(steps, batch, store)
    else:
        vertex_ids = np.zeros((steps, batch), dtype=np.int32)
        mask = np.zeros((steps, batch), dtype=np.float32)
    for column, path in enumerate(paths):
        length = path.num_vertices
        vertex_ids[:length, column] = path.vertices
        mask[:length, column] = 1.0
    return vertex_ids, mask


def length_buckets(
    lengths: Sequence[int],
    growth: float = BUCKET_GROWTH,
    min_bucket: int = BUCKET_MIN_SIZE,
) -> list[np.ndarray]:
    """Group item indices by similar length.

    Returns index arrays partitioning ``range(len(lengths))``, sorted by
    length within and across buckets (stable, so equal lengths keep
    their input order).  A bucket closes once it has ``min_bucket``
    members and the next length exceeds ``growth`` times the bucket's
    shortest one, bounding per-bucket padding waste at ``growth``x for
    every full bucket.
    """
    if growth < 1.0:
        raise ValueError(f"growth must be >= 1, got {growth}")
    if min_bucket < 1:
        raise ValueError(f"min_bucket must be >= 1, got {min_bucket}")
    values = np.asarray(lengths)
    if values.size == 0:
        return []
    order = np.argsort(values, kind="stable")
    if values.size < 2 * min_bucket:
        # Too small to fill two buckets: splitting would only trade the
        # padding saved for per-bucket fixed cost.
        return [order]
    buckets: list[np.ndarray] = []
    start = 0
    limit = values[order[0]] * growth
    for position in range(1, order.size):
        if position - start >= min_bucket and values[order[position]] > limit:
            buckets.append(order[start:position])
            start = position
            limit = values[order[position]] * growth
    buckets.append(order[start:])
    return buckets


def encode_path_buckets(
    paths: Sequence[Path],
    growth: float = BUCKET_GROWTH,
    min_bucket: int = BUCKET_MIN_SIZE,
    reuse: bool = True,
) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Encode ``paths`` as length-bucketed padded batches.

    Yields ``(index, vertex_ids, mask)`` per bucket, where ``index`` maps
    each column of the encoded batch back to its position in ``paths``.
    Each bucket pads to its own longest member, so a 120-vertex outlier
    no longer inflates every 20-vertex neighbour to 120 steps.  The
    ``reuse`` caveat of :func:`encode_paths` applies per bucket.
    """
    if not paths:
        raise DataError("cannot encode an empty path batch")
    lengths = [path.num_vertices for path in paths]
    for index in length_buckets(lengths, growth=growth, min_bucket=min_bucket):
        chunk = [paths[i] for i in index]
        vertex_ids, mask = encode_paths(chunk, reuse=reuse)
        yield index, vertex_ids, mask


def bucketed_batch_indices(
    lengths: Sequence[int],
    batch_size: int,
    rng: RngLike = None,
    shuffle: bool = True,
) -> list[np.ndarray]:
    """Batch index groups drawn from a length-sorted order.

    The bucketed-padding idiom shared by inference
    (:func:`minibatches` with ``bucket_by_length``) and the
    :class:`~repro.core.trainer.Trainer`'s query batching: items are
    (stably) sorted by length so each contiguous batch pads to roughly
    its own maximum, while the shuffle randomises equal-length order and
    the sequence batches are visited in.  Every index appears in exactly
    one batch.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    generator = make_rng(rng)
    order = np.arange(len(lengths))
    if len(order) == 0:
        return []
    if shuffle:
        generator.shuffle(order)
    values = np.asarray(lengths)[order]
    order = order[np.argsort(values, kind="stable")]
    starts = np.arange(0, len(order), batch_size)
    if shuffle:
        generator.shuffle(starts)
    return [order[start:start + batch_size] for start in starts]


def minibatches(
    paths: Sequence[Path],
    targets: np.ndarray,
    batch_size: int,
    rng: RngLike = None,
    shuffle: bool = True,
    bucket_by_length: bool = False,
) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Yield ``(vertex_ids, mask, target_batch)`` mini-batches.

    ``targets`` may be 1-D (similarity scores) or 2-D (multi-task
    targets, one row per path).

    With ``bucket_by_length`` batches are drawn from a length-sorted
    order (the shuffle, when enabled, still randomises ties and the
    order batches are yielded in), so each batch pads to roughly its own
    length instead of the epoch maximum.  Every path/target pair is
    still yielded exactly once — bucketing only permutes the batching.
    """
    targets = np.asarray(targets, dtype=float)
    if len(paths) != targets.shape[0]:
        raise DataError(
            f"paths ({len(paths)}) and targets ({targets.shape[0]}) disagree"
        )
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    generator = make_rng(rng)
    if bucket_by_length:
        batches = bucketed_batch_indices(
            [path.num_vertices for path in paths], batch_size,
            rng=generator, shuffle=shuffle)
    else:
        order = np.arange(len(paths))
        if shuffle:
            generator.shuffle(order)
        batches = [order[start:start + batch_size]
                   for start in range(0, len(paths), batch_size)]
    for index in batches:
        chunk = [paths[int(i)] for i in index]
        # Fresh arrays: consumers may legitimately hold several batches.
        vertex_ids, mask = encode_paths(chunk, reuse=False)
        yield vertex_ids, mask, targets[index]
