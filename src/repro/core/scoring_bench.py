"""Scoring-backend benchmark harness: module reference vs fused kernel.

Times PathRank inference through its two scoring backends on the shapes
the serving layer actually sees — ``k`` candidate paths per query with
mixed lengths — and writes the result as ``BENCH_scoring.json``:

* **per-query scoring** — one ``score_paths`` call per candidate list,
  the latency-bound interactive path;
* **coalesced scoring** — every query's candidates in one flush, the
  throughput path of :class:`~repro.serving.batching.BatchingScorer`;
  measured three ways: module forward (global padding), fused kernel
  with global padding, and fused kernel with length-bucketed padding;
* **compile costs** — cold :class:`~repro.nn.fused.CompiledPathRank`
  snapshot, warm cache lookup, and recompile after a weight-version
  bump (the hot-swap case).

Every timed block is paired with a fused-vs-module parity check, so a
speedup can never come from a wrong answer.  Consumed by
``benchmarks/bench_scoring.py`` (standalone + pytest smoke mode) and the
``bench-scoring`` CLI subcommand, mirroring ``graph.routing_bench``.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import asdict, dataclass, replace
from pathlib import Path as FilePath

import numpy as np

from repro.core.batching import encode_paths
from repro.core.model import PathRank
from repro.errors import DataError
from repro.graph.builders import grid_network
from repro.graph.network import RoadNetwork
from repro.graph.path import Path
from repro.nn.fused import CompiledPathRank, compiled_for
from repro.rng import make_rng

__all__ = [
    "ScoringBenchConfig",
    "smoke_config",
    "full_config",
    "apply_overrides",
    "random_walk_paths",
    "run_scoring_benchmark",
    "validate_report",
    "write_report",
]

SCHEMA_VERSION = 1

#: Parity ceilings enforced on every report: the float32 kernel lands
#: within ~1e-7 of the float64 module forward in practice; the float64
#: kernel reproduces it to roundoff.
FLOAT32_PARITY_LIMIT = 1e-5
FLOAT64_PARITY_LIMIT = 1e-9


@dataclass(frozen=True)
class ScoringBenchConfig:
    """Knobs of one benchmark run."""

    grid_size: int = 24
    queries: int = 12
    k: int = 10
    min_length: int = 20
    max_length: int = 120
    embedding_dim: int = 64
    hidden_size: int = 64
    fc_hidden: int = 32
    pooling: str = "mean"
    repeats: int = 3
    seed: int = 7
    preset: str = "full"

    def __post_init__(self) -> None:
        if self.grid_size < 2:
            raise ValueError(f"grid_size must be >= 2, got {self.grid_size}")
        if self.queries < 1 or self.k < 1 or self.repeats < 1:
            raise ValueError("queries, k and repeats must be >= 1")
        if not 2 <= self.min_length <= self.max_length:
            raise ValueError(
                f"need 2 <= min_length <= max_length, got "
                f"[{self.min_length}, {self.max_length}]"
            )


def smoke_config() -> ScoringBenchConfig:
    """Tiny preset for the tier-1 pytest wrapper: one small model,
    best-of-3 timing so the not-slower assertion is stable under CI
    jitter, finishes in well under a second."""
    return ScoringBenchConfig(grid_size=8, queries=3, k=4, min_length=6,
                              max_length=24, embedding_dim=16, hidden_size=16,
                              fc_hidden=8, repeats=3, preset="smoke")


def full_config() -> ScoringBenchConfig:
    """The headline preset behind the committed ``BENCH_scoring.json``:
    the paper's model width on k=10 candidate sets, lengths 20-120."""
    return ScoringBenchConfig()


def apply_overrides(
    config: ScoringBenchConfig,
    k: int | None = None,
    queries: int | None = None,
    seed: int | None = None,
) -> ScoringBenchConfig:
    """Apply the command-line overrides shared by the ``bench-scoring``
    CLI subcommand and the standalone benchmark entry point."""
    overrides = {}
    if k is not None:
        overrides["k"] = k
    if queries is not None:
        overrides["queries"] = queries
    if seed is not None:
        overrides["seed"] = seed
    return replace(config, **overrides) if overrides else config


def _best_of(repeats: int, fn) -> float:
    """Best wall-clock seconds over ``repeats`` runs of ``fn``."""
    best = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def random_walk_paths(network: RoadNetwork, lengths: list[int],
                      rng: np.random.Generator) -> list[Path]:
    """Valid paths of the requested vertex counts (random walks that
    avoid immediate backtracking where the degree allows)."""
    ids = network.vertex_ids()
    paths = []
    for length in lengths:
        vertices = [int(rng.choice(ids))]
        previous = None
        while len(vertices) < length:
            neighbours = [edge.target
                          for edge in network.out_edges(vertices[-1])]
            if not neighbours:
                raise DataError(
                    f"random walk stuck at sink vertex {vertices[-1]}; "
                    f"benchmark networks must have no dead ends"
                )
            forward = [v for v in neighbours if v != previous] or neighbours
            previous = vertices[-1]
            vertices.append(int(rng.choice(forward)))
        paths.append(Path(network, vertices))
    return paths


def _max_abs_diff(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.max(np.abs(np.asarray(a) - np.asarray(b))))


def run_scoring_benchmark(config: ScoringBenchConfig | None = None) -> dict:
    """Benchmark module vs fused scoring at the configured scale."""
    config = config or full_config()
    rng = make_rng(config.seed)
    network = grid_network(config.grid_size, config.grid_size,
                           seed=config.seed)
    model = PathRank(
        num_vertices=network.num_vertices,
        embedding_dim=config.embedding_dim,
        hidden_size=config.hidden_size,
        fc_hidden=config.fc_hidden,
        pooling=config.pooling,
        rng=config.seed,
    ).eval()

    queries = [
        random_walk_paths(
            network,
            [int(n) for n in rng.integers(config.min_length,
                                          config.max_length + 1,
                                          size=config.k)],
            rng,
        )
        for _ in range(config.queries)
    ]
    coalesced = [path for query in queries for path in query]

    # -- compile costs -------------------------------------------------
    cold_started = time.perf_counter()
    kernel = CompiledPathRank(model)
    cold_ms = (time.perf_counter() - cold_started) * 1000.0
    compiled_for(model)  # prime the version-keyed cache
    lookups = 1000
    warm_seconds = _best_of(
        config.repeats,
        lambda: [compiled_for(model) for _ in range(lookups)])
    model.bump_weight_version()
    recompile_started = time.perf_counter()
    kernel = compiled_for(model)
    recompile_ms = (time.perf_counter() - recompile_started) * 1000.0

    # -- per-query scoring (latency path) -----------------------------
    def _score_all(backend: str) -> list[np.ndarray]:
        return [model.score_paths(query, backend=backend)
                for query in queries]

    module_q = _best_of(config.repeats, lambda: _score_all("module"))
    fused_q = _best_of(config.repeats, lambda: _score_all("fused"))
    per_query_diff = max(
        _max_abs_diff(a, b)
        for a, b in zip(_score_all("module"), _score_all("fused"))
    )

    # -- coalesced scoring (throughput path) --------------------------
    vertex_ids, mask = encode_paths(coalesced, reuse=False)
    module_c = _best_of(
        config.repeats,
        lambda: model.score_paths(coalesced, backend="module"))
    bucketed_c = _best_of(
        config.repeats,
        lambda: model.score_paths(coalesced, backend="fused"))
    global_c = _best_of(
        config.repeats, lambda: kernel.forward(vertex_ids, mask))
    module_scores = model.score_paths(coalesced, backend="module")
    coalesced_diff = _max_abs_diff(
        module_scores, model.score_paths(coalesced, backend="fused"))
    float64_diff = _max_abs_diff(
        module_scores,
        CompiledPathRank(model, dtype=np.float64).forward(vertex_ids, mask))

    report = {
        "schema_version": SCHEMA_VERSION,
        "preset": config.preset,
        "config": asdict(config),
        "model": {
            "vertices": network.num_vertices,
            "parameters": model.num_parameters(),
            "pooling": config.pooling,
        },
        "compile": {
            "cold_ms": cold_ms,
            "warm_lookup_us": warm_seconds / lookups * 1e6,
            "recompile_ms": recompile_ms,
        },
        "per_query": {
            "queries": len(queries),
            "k": config.k,
            "module_ms_per_query": module_q * 1000.0 / len(queries),
            "fused_ms_per_query": fused_q * 1000.0 / len(queries),
            "speedup": module_q / fused_q if fused_q > 0 else math.inf,
        },
        "coalesced": {
            "paths": len(coalesced),
            "module_ms": module_c * 1000.0,
            "fused_bucketed_ms": bucketed_c * 1000.0,
            "fused_global_ms": global_c * 1000.0,
            "fused_vs_module_speedup":
                module_c / bucketed_c if bucketed_c > 0 else math.inf,
            "bucketed_vs_global_speedup":
                global_c / bucketed_c if bucketed_c > 0 else math.inf,
        },
        "parity": {
            "per_query_max_abs_diff": per_query_diff,
            "coalesced_max_abs_diff": coalesced_diff,
            "float64_max_abs_diff": float64_diff,
        },
    }
    report["headline"] = {
        "batch_speedup": report["coalesced"]["fused_vs_module_speedup"],
        "per_query_speedup": report["per_query"]["speedup"],
    }
    validate_report(report)
    return report


_TOP_KEYS = ("schema_version", "preset", "config", "model", "compile",
             "per_query", "coalesced", "parity", "headline")
_NUMERIC_BLOCKS = {
    "compile": ("cold_ms", "warm_lookup_us", "recompile_ms"),
    "per_query": ("queries", "k", "module_ms_per_query",
                  "fused_ms_per_query", "speedup"),
    "coalesced": ("paths", "module_ms", "fused_bucketed_ms",
                  "fused_global_ms", "fused_vs_module_speedup",
                  "bucketed_vs_global_speedup"),
    "headline": ("batch_speedup", "per_query_speedup"),
}


def validate_report(report: dict) -> None:
    """Check a benchmark report parses as valid ``BENCH_scoring.json``.

    Raises :class:`DataError` on a malformed document or a parity
    violation; used both when a report is produced and by the smoke test
    against re-parsed JSON.
    """
    if report.get("schema_version") != SCHEMA_VERSION:
        raise DataError(
            f"unexpected schema_version {report.get('schema_version')!r}")
    missing = [key for key in _TOP_KEYS if key not in report]
    if missing:
        raise DataError(f"report missing keys: {missing}")
    for block, keys in _NUMERIC_BLOCKS.items():
        for key in keys:
            value = report[block].get(key)
            if not isinstance(value, (int, float)) or not math.isfinite(value):
                raise DataError(
                    f"{block}.{key} must be a finite number, got {value!r}")
    parity = report["parity"]
    for key in ("per_query_max_abs_diff", "coalesced_max_abs_diff"):
        diff = parity.get(key)
        if not isinstance(diff, float) or not diff <= FLOAT32_PARITY_LIMIT:
            raise DataError(f"parity violation: {key}={diff!r}")
    float64_diff = parity.get("float64_max_abs_diff")
    if not isinstance(float64_diff, float) \
            or not float64_diff <= FLOAT64_PARITY_LIMIT:
        raise DataError(
            f"parity violation: float64_max_abs_diff={float64_diff!r}")


def write_report(report: dict, path: str | FilePath) -> FilePath:
    """Validate and write the report; returns the output path."""
    validate_report(report)
    out = FilePath(path)
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return out
