"""The PathRank network: embedding → (bi)GRU → fully-connected head.

This is the paper's architecture figure as code:

* a **vertex-embedding matrix B** of size ``(n, M)``, initialised from
  node2vec (frozen in PR-A1, fine-tuned in PR-A2);
* a **bidirectional GRU** reading the candidate path's vertex sequence
  (hidden states h and h′ in the figure, concatenated into H);
* an **FC regression head** mapping the sequence summary to the
  estimated similarity ``Sim ∈ [0, 1]`` via a sigmoid.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigError
from repro.graph.path import Path
from repro.core.batching import encode_path_buckets, encode_paths
from repro.nn import BiGRU, Dropout, Embedding, GRU, Linear, Module, Tensor, no_grad
from repro.nn.fused import compiled_for, resolve_scoring_backend
from repro.ranking.training_data import RankingQuery
from repro.rng import RngLike, make_rng, spawn

__all__ = ["PathRank"]


class PathRank(Module):
    """Estimates the ranking score of a candidate path (regression).

    Parameters
    ----------
    num_vertices:
        Size of the network's vertex set (dense ids ``0..n-1``).
    embedding_dim:
        The paper's feature size ``M``.
    hidden_size:
        GRU hidden width per direction.
    fc_hidden:
        Width of the intermediate fully-connected layer.
    embedding_matrix:
        Optional pre-trained node2vec matrix; overrides random init.
    trainable_embedding:
        ``False`` freezes B (PR-A1); ``True`` fine-tunes it (PR-A2).
    bidirectional:
        ``False`` swaps the BiGRU for a single forward GRU (ablation).
    pooling:
        How the per-step hidden states H_1..H_Z are reduced to the
        sequence summary the FC head sees: ``"mean"`` (masked average
        over all steps — the default; candidates for one query share
        both endpoints, so the discriminative signal lives in the middle
        of the sequence) or ``"final"`` (concatenated final states, the
        classic seq2vec reduction, kept for the ablation).
    """

    def __init__(
        self,
        num_vertices: int,
        embedding_dim: int = 64,
        hidden_size: int = 64,
        fc_hidden: int = 32,
        embedding_matrix: np.ndarray | None = None,
        trainable_embedding: bool = True,
        bidirectional: bool = True,
        dropout: float = 0.0,
        pooling: str = "mean",
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        if num_vertices < 1:
            raise ConfigError(f"num_vertices must be >= 1, got {num_vertices}")
        if embedding_dim < 1 or hidden_size < 1 or fc_hidden < 1:
            raise ConfigError("embedding_dim, hidden_size, fc_hidden must be >= 1")
        generator = make_rng(rng)
        (emb_rng, rnn_rng, fc1_rng, fc2_rng, drop_rng,
         attn_rng, attn_score_rng) = spawn(generator, 7)

        if embedding_matrix is not None:
            matrix = np.asarray(embedding_matrix, dtype=float)
            if matrix.shape != (num_vertices, embedding_dim):
                raise ConfigError(
                    f"embedding matrix shape {matrix.shape} does not match "
                    f"(num_vertices={num_vertices}, M={embedding_dim})"
                )
            self.embedding = Embedding.from_pretrained(matrix,
                                                       trainable=trainable_embedding)
        else:
            self.embedding = Embedding(num_vertices, embedding_dim, rng=emb_rng)
            if not trainable_embedding:
                self.embedding.weight.freeze()

        self.bidirectional = bool(bidirectional)
        if self.bidirectional:
            self.rnn = BiGRU(embedding_dim, hidden_size, rng=rnn_rng)
            summary_size = 2 * hidden_size
        else:
            self.rnn = GRU(embedding_dim, hidden_size, rng=rnn_rng)
            summary_size = hidden_size

        if pooling not in ("mean", "final", "attention"):
            raise ConfigError(
                f"pooling must be 'mean', 'final' or 'attention', got {pooling!r}"
            )
        self.pooling = pooling
        self.num_vertices = num_vertices
        self.embedding_dim = embedding_dim
        self.hidden_size = hidden_size
        self.summary_size = summary_size
        self.fc1 = Linear(summary_size, fc_hidden, rng=fc1_rng)
        self.dropout = Dropout(dropout, rng=drop_rng) if dropout > 0 else None
        self.fc2 = Linear(fc_hidden, 1, rng=fc2_rng)
        if pooling == "attention":
            # Additive attention over the per-step hidden states H_t:
            # score_t = v . tanh(W H_t); weights are a masked softmax.
            self.attn_proj = Linear(summary_size, fc_hidden, rng=attn_rng)
            self.attn_score = Linear(fc_hidden, 1, bias=False, rng=attn_score_rng)

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def summarise(self, vertex_ids: np.ndarray, mask: np.ndarray) -> Tensor:
        """The (batch, summary_size) sequence summary H."""
        embedded = self.embedding(vertex_ids)  # (T, B, M)
        outputs, final = self.rnn(embedded, mask=mask)
        if self.pooling == "final":
            return final
        if self.pooling == "attention":
            return self._attention_pool(outputs, mask)
        # Masked mean over time: padded steps contribute nothing.
        mask_tensor = Tensor(mask[:, :, None])
        weighted = outputs * mask_tensor                       # (T, B, H*)
        totals = weighted.sum(axis=0)                          # (B, H*)
        counts = Tensor(np.maximum(mask.sum(axis=0), 1.0)[:, None])
        return totals / counts

    def _attention_pool(self, outputs: Tensor, mask: np.ndarray) -> Tensor:
        """Masked additive attention over the per-step states."""
        logits = self.attn_score(self.attn_proj(outputs).tanh())   # (T, B, 1)
        logits = logits.reshape(logits.shape[0], logits.shape[1])  # (T, B)
        # Push padded steps to -inf before the softmax over time.
        penalty = Tensor((1.0 - mask) * -1e9)
        shifted = logits + penalty
        stable = shifted - Tensor(shifted.data.max(axis=0, keepdims=True))
        weights = stable.exp() * Tensor(mask)
        weights = weights / weights.sum(axis=0, keepdims=True)
        expanded = weights.reshape(weights.shape[0], weights.shape[1], 1)
        return (outputs * expanded).sum(axis=0)

    def forward(self, vertex_ids: np.ndarray, mask: np.ndarray) -> Tensor:
        """Estimated similarity scores, shape ``(batch,)``, in [0, 1]."""
        summary = self.summarise(vertex_ids, mask)
        hidden = self.fc1(summary).tanh()
        if self.dropout is not None:
            hidden = self.dropout(hidden)
        logits = self.fc2(hidden)
        return logits.sigmoid().reshape(logits.shape[0])

    # ------------------------------------------------------------------
    # Inference conveniences
    # ------------------------------------------------------------------
    def score_paths(self, paths: Sequence[Path],
                    backend: str | None = None) -> np.ndarray:
        """Scores for arbitrary paths (inference mode, no graph).

        Dispatches through the scoring-backend seam: by default the
        fused numpy kernel (:mod:`repro.nn.fused`) scores each
        length-bucketed sub-batch graph-free; ``backend="module"`` (or
        ``REPRO_SCORING_BACKEND=module``) forces the reference autograd
        forward.  Both return identical scores up to float32 roundoff.
        """
        if not paths:
            return np.zeros(0)
        if resolve_scoring_backend(backend) == "fused":
            kernel = compiled_for(self)
            scores = np.empty(len(paths), dtype=np.float64)
            for index, vertex_ids, mask in encode_path_buckets(paths):
                scores[index] = kernel.forward(vertex_ids, mask)
            return scores
        was_training = self.training
        self.eval()
        try:
            vertex_ids, mask = encode_paths(paths)
            with no_grad():
                scores = self.forward(vertex_ids, mask)
            return scores.data.copy()
        finally:
            if was_training:
                self.train()

    def score_query(self, query: RankingQuery) -> list[float]:
        """Scorer-protocol adapter used by the evaluation harness."""
        return self.score_paths(query.paths()).tolist()
