"""PathRank variants: PR-A1, PR-A2, and the multi-task extension.

The poster's tables compare two variants:

* **PR-A1** — the node2vec embedding matrix ``B`` is *frozen*; only the
  GRU and the FC head train;
* **PR-A2** — ``B`` is *fine-tuned* end-to-end (Table 2 shows this wins
  on every metric).

The full paper's direction of travel is multi-task training; the
:class:`PathRankMultiTask` extension adds an auxiliary head predicting
cheap structural targets (the candidate's length and travel-time ratios
within its query), regularising the sequence summary.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.core.model import PathRank
from repro.errors import ConfigError
from repro.nn import Linear, Tensor
from repro.rng import RngLike, make_rng, spawn

__all__ = ["Variant", "build_pathrank", "PathRankMultiTask", "NUM_AUX_TARGETS"]


class Variant(enum.Enum):
    """Named model variants used across the experiments."""

    PR_A1 = "PR-A1"
    PR_A2 = "PR-A2"
    PR_M = "PR-M"  # multi-task extension

    @classmethod
    def from_name(cls, name: str) -> "Variant":
        for member in cls:
            if member.value.lower() == name.lower():
                return member
        known = ", ".join(m.value for m in cls)
        raise KeyError(f"unknown variant {name!r}; known: {known}")


#: Auxiliary targets of the multi-task head: (length ratio, time ratio).
NUM_AUX_TARGETS = 2


class PathRankMultiTask(PathRank):
    """PathRank with an auxiliary structural-regression head.

    ``forward`` still returns the similarity scores; ``forward_with_aux``
    additionally returns the ``(batch, 2)`` auxiliary predictions so the
    trainer can weight the two losses (``beta`` lives in the trainer
    config, keeping the model purely architectural).
    """

    def __init__(self, *args, rng: RngLike = None, **kwargs) -> None:
        generator = make_rng(rng)
        model_rng, aux_rng = spawn(generator, 2)
        super().__init__(*args, rng=model_rng, **kwargs)
        self.aux_head = Linear(self.summary_size, NUM_AUX_TARGETS, rng=aux_rng)

    def forward_with_aux(
        self, vertex_ids: np.ndarray, mask: np.ndarray
    ) -> tuple[Tensor, Tensor]:
        summary = self.summarise(vertex_ids, mask)
        hidden = self.fc1(summary).tanh()
        if self.dropout is not None:
            hidden = self.dropout(hidden)
        scores = self.fc2(hidden).sigmoid()
        aux = self.aux_head(summary).sigmoid()
        return scores.reshape(scores.shape[0]), aux


def build_pathrank(
    variant: Variant | str,
    num_vertices: int,
    embedding_dim: int = 64,
    embedding_matrix: np.ndarray | None = None,
    hidden_size: int = 64,
    fc_hidden: int = 32,
    bidirectional: bool = True,
    dropout: float = 0.0,
    pooling: str = "mean",
    rng: RngLike = None,
) -> PathRank:
    """Instantiate a variant with the correct embedding trainability.

    PR-A1 and PR-A2 expect ``embedding_matrix`` to be a pre-trained
    node2vec matrix; passing ``None`` falls back to random initialisation
    (exposed deliberately — the no-pretraining ablation).
    """
    if isinstance(variant, str):
        variant = Variant.from_name(variant)
    common = {
        "num_vertices": num_vertices,
        "embedding_dim": embedding_dim,
        "hidden_size": hidden_size,
        "fc_hidden": fc_hidden,
        "embedding_matrix": embedding_matrix,
        "bidirectional": bidirectional,
        "dropout": dropout,
        "pooling": pooling,
        "rng": rng,
    }
    if variant is Variant.PR_A1:
        return PathRank(trainable_embedding=False, **common)
    if variant is Variant.PR_A2:
        return PathRank(trainable_embedding=True, **common)
    if variant is Variant.PR_M:
        return PathRankMultiTask(trainable_embedding=True, **common)
    raise ConfigError(f"unhandled variant {variant!r}")
