"""PathRankRanker — the user-facing end-to-end API.

This is the class a downstream routing service would use::

    ranker = PathRankRanker(network, RankerConfig(embedding_dim=128))
    ranker.fit(trips, rng=0)
    for path, score in ranker.rank(source, target):
        ...

``fit`` runs the full paper pipeline: node2vec pre-training, candidate
generation for every training trajectory (TkDI or D-TkDI), ground-truth
labelling with weighted Jaccard, and PathRank training.  ``rank``
generates candidates for a new (source, destination) query with the same
strategy and returns them sorted by estimated driver preference.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path as FilePath

import numpy as np

from repro.core.model import PathRank
from repro.core.trainer import Trainer, TrainerConfig, TrainingHistory
from repro.core.variants import Variant, build_pathrank
from repro.embedding.node2vec import Node2Vec, Node2VecConfig
from repro.errors import ConfigError, TrainingError
from repro.graph.diversified import diversified_top_k
from repro.graph.ksp import yen_k_shortest_paths
from repro.graph.network import RoadNetwork
from repro.graph.path import Path
from repro.nn.serialization import load_state, save_state
from repro.ranking.training_data import (
    RankingQuery,
    Strategy,
    TrainingDataConfig,
    generate_queries,
)
from repro.rng import RngLike, make_rng, spawn
from repro.trajectories.generator import Trip

__all__ = ["RankerConfig", "PathRankRanker", "generate_candidates",
           "rank_paths"]


def generate_candidates(
    network: RoadNetwork,
    source: int,
    target: int,
    config: TrainingDataConfig,
) -> list[Path]:
    """Candidate paths for one (source, target) query.

    This is the model-free half of ranking: the same TkDI / D-TkDI
    enumeration used to build training data, exposed as a pure function
    so callers (e.g. the serving layer) can cache its output per query
    independently of scoring.  The enumeration runs on the configured
    routing backend (the CSR kernel by default — see
    :mod:`repro.graph.csr`); results are plain :class:`Path` objects
    either way.
    """
    if config.strategy is Strategy.TKDI:
        return yen_k_shortest_paths(network, source, target, config.k)
    result = diversified_top_k(
        network,
        source,
        target,
        config.k,
        threshold=config.diversity_threshold,
        examine_limit=config.examine_limit,
    )
    return list(result.paths)


def rank_paths(paths: Sequence[Path],
               scores) -> list[tuple[Path, float]]:
    """Order candidates by score, best first (stable on ties).

    The assembly half of ranking, shared by :meth:`PathRankRanker.rank`
    and the serving pipeline's response stage: given candidates and
    their scores (any sequence or array), returns ``(path, score)``
    pairs sorted best-first, breaking ties by generation order so every
    front door ranks identically.
    """
    values = scores.tolist() if hasattr(scores, "tolist") else list(scores)
    if len(paths) != len(values):
        raise ValueError(
            f"paths ({len(paths)}) and scores ({len(values)}) disagree"
        )
    order = sorted(range(len(values)), key=lambda i: -values[i])
    return [(paths[i], values[i]) for i in order]


@dataclass(frozen=True)
class RankerConfig:
    """Everything the end-to-end pipeline needs, in one object."""

    variant: Variant = Variant.PR_A2
    embedding_dim: int = 64
    hidden_size: int = 64
    fc_hidden: int = 32
    bidirectional: bool = True
    dropout: float = 0.0
    pooling: str = "mean"
    training_data: TrainingDataConfig = field(default_factory=TrainingDataConfig)
    trainer: TrainerConfig = field(default_factory=TrainerConfig)
    node2vec: Node2VecConfig | None = None
    validation_fraction: float = 0.15

    def __post_init__(self) -> None:
        if not 0.0 <= self.validation_fraction < 1.0:
            raise ValueError(
                f"validation_fraction must be in [0, 1), got {self.validation_fraction}"
            )

    def resolved_node2vec(self) -> Node2VecConfig:
        if self.node2vec is not None:
            if self.node2vec.dim != self.embedding_dim:
                raise ConfigError(
                    f"node2vec dim {self.node2vec.dim} differs from "
                    f"embedding_dim {self.embedding_dim}"
                )
            return self.node2vec
        return Node2VecConfig(dim=self.embedding_dim)


class PathRankRanker:
    """Trainable path-ranking service over one road network."""

    def __init__(self, network: RoadNetwork, config: RankerConfig | None = None) -> None:
        ids = network.vertex_ids()
        if sorted(ids) != list(range(len(ids))):
            raise ConfigError(
                "PathRankRanker requires dense vertex ids 0..n-1; call "
                "network.relabelled() first"
            )
        self.network = network
        self.config = config or RankerConfig()
        self.config.resolved_node2vec()  # fail fast on inconsistent dims
        self.model: PathRank | None = None
        self.embedding_matrix: np.ndarray | None = None
        self.history: TrainingHistory | None = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, trips: Sequence[Trip], rng: RngLike = None) -> "PathRankRanker":
        """Run the full pipeline on map-matched trips."""
        if not trips:
            raise TrainingError("fit() needs at least one trip")
        generator = make_rng(rng)
        n2v_rng, model_rng, split_rng, train_rng = spawn(generator, 4)

        node2vec = Node2Vec(self.network, self.config.resolved_node2vec())
        self.embedding_matrix = node2vec.fit(rng=n2v_rng)

        queries = generate_queries(trips, self.config.training_data)
        train_queries, validation_queries = self._split_queries(queries, split_rng)

        self.model = build_pathrank(
            self.config.variant,
            num_vertices=self.network.num_vertices,
            embedding_dim=self.config.embedding_dim,
            embedding_matrix=self.embedding_matrix,
            hidden_size=self.config.hidden_size,
            fc_hidden=self.config.fc_hidden,
            bidirectional=self.config.bidirectional,
            dropout=self.config.dropout,
            pooling=self.config.pooling,
            rng=model_rng,
        )
        trainer = Trainer(self.model, self.config.trainer, rng=train_rng)
        self.history = trainer.fit(train_queries, validation_queries)
        return self

    def _split_queries(
        self, queries: list[RankingQuery], rng: np.random.Generator
    ) -> tuple[list[RankingQuery], list[RankingQuery] | None]:
        fraction = self.config.validation_fraction
        if fraction == 0.0 or len(queries) < 4:
            return queries, None
        order = rng.permutation(len(queries))
        n_val = max(1, int(round(fraction * len(queries))))
        validation = [queries[int(i)] for i in order[:n_val]]
        training = [queries[int(i)] for i in order[n_val:]]
        return training, validation

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def _require_model(self) -> PathRank:
        if self.model is None:
            raise TrainingError("fit() or load() must run before inference")
        return self.model

    def generate_candidates(self, source: int, target: int) -> list[Path]:
        """Candidate paths for a query, using the configured strategy.

        The first of the two ranking steps; model-free, so its output is
        cacheable per ``(source, target, strategy, k)``.
        """
        return generate_candidates(self.network, source, target,
                                   self.config.training_data)

    # Historical name for generate_candidates, kept for existing callers.
    def candidates(self, source: int, target: int) -> list[Path]:
        return self.generate_candidates(source, target)

    def score_candidates(self, paths: Sequence[Path],
                         backend: str | None = None) -> np.ndarray:
        """Estimated preference scores for candidate paths (unsorted).

        The second ranking step; batched callers can concatenate the
        candidates of many queries and score them in one forward pass.
        ``backend`` optionally overrides the scoring backend
        (``"fused"`` kernel by default — see :mod:`repro.nn.fused`).
        """
        return self._require_model().score_paths(paths, backend=backend)

    def score_paths(self, paths: Sequence[Path],
                    backend: str | None = None) -> np.ndarray:
        return self.score_candidates(paths, backend=backend)

    def score_query(self, query: RankingQuery) -> list[float]:
        return self._require_model().score_query(query)

    def rank(self, source: int, target: int) -> list[tuple[Path, float]]:
        """Candidates sorted by estimated driver preference (best first)."""
        self._require_model()
        paths = self.generate_candidates(source, target)
        if not paths:
            return []
        return rank_paths(paths, self.score_candidates(paths))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | FilePath) -> None:
        """Persist model weights plus the architecture metadata."""
        model = self._require_model()
        metadata = {
            "variant": self.config.variant.value,
            "embedding_dim": self.config.embedding_dim,
            "hidden_size": self.config.hidden_size,
            "fc_hidden": self.config.fc_hidden,
            "bidirectional": self.config.bidirectional,
            "pooling": self.config.pooling,
            "num_vertices": self.network.num_vertices,
        }
        save_state(model.state_dict(), path, metadata=metadata)

    def load(self, path: str | FilePath) -> "PathRankRanker":
        """Restore a model saved by :meth:`save` (same network)."""
        state, metadata = load_state(path)
        if metadata.get("num_vertices") != self.network.num_vertices:
            raise ConfigError(
                f"checkpoint was trained on {metadata.get('num_vertices')} vertices, "
                f"this network has {self.network.num_vertices}"
            )
        self.model = build_pathrank(
            str(metadata["variant"]),
            num_vertices=self.network.num_vertices,
            embedding_dim=int(metadata["embedding_dim"]),
            hidden_size=int(metadata["hidden_size"]),
            fc_hidden=int(metadata["fc_hidden"]),
            bidirectional=bool(metadata["bidirectional"]),
            pooling=str(metadata.get("pooling", "mean")),
        )
        self.model.load_state_dict(state)
        self.model.eval()
        return self
