"""PathRank core: the paper's model, trainer, and ranking API."""

from repro.core.batching import (
    bucketed_batch_indices,
    encode_path_buckets,
    encode_paths,
    length_buckets,
    minibatches,
)
from repro.core.model import PathRank
from repro.core.ranker import (
    PathRankRanker,
    RankerConfig,
    generate_candidates,
    rank_paths,
)
from repro.core.trainer import Trainer, TrainerConfig, TrainingHistory, flatten_queries
from repro.core.variants import (
    NUM_AUX_TARGETS,
    PathRankMultiTask,
    Variant,
    build_pathrank,
)

__all__ = [
    "bucketed_batch_indices",
    "encode_paths",
    "encode_path_buckets",
    "length_buckets",
    "minibatches",
    "rank_paths",
    "PathRank",
    "PathRankMultiTask",
    "Variant",
    "build_pathrank",
    "NUM_AUX_TARGETS",
    "Trainer",
    "TrainerConfig",
    "TrainingHistory",
    "flatten_queries",
    "PathRankRanker",
    "RankerConfig",
    "generate_candidates",
]
