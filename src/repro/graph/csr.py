"""Array-backed routing kernel: CSR graphs, buffer-reusing searches, ALT.

The dict-of-dataclasses :class:`~repro.graph.network.RoadNetwork` is the
*reference* routing substrate: clear, validated, and easy to test
against networkx.  It is also slow on the hot path — every edge
relaxation pays for an ``out_edges`` list copy, a cost-function call,
and dataclass attribute access, and Yen's algorithm multiplies that by
thousands of point-to-point searches per candidate-generation query.

:class:`CSRGraph` flattens a network once into compressed-sparse-row
arrays (``indptr``/``indices`` plus per-cost weight arrays for length
and travel time) and runs the same algorithms over plain scalar arrays:

* array Dijkstra (single-source and early-exit point-to-point),
* bidirectional Dijkstra,
* A* with euclidean or ALT (landmark) heuristics, and
* Yen's k-shortest-paths with ALT-accelerated spur searches.

Distance / parent / visited buffers are preallocated once and reused
across calls via generation stamps, so repeated queries allocate almost
nothing.  Landmark lower bounds follow ``graph/landmarks.py``: the same
farthest-point selection and triangle-inequality bounds, with the
per-landmark tables stored as dense arrays and the per-query heuristic
vectorised over all vertices.

**Backend seam.**  Hot consumers (``yen_path_generator``, the
diversified generator, ``generate_candidates``, serving) dispatch
through :func:`resolve_backend` / :func:`csr_for` and convert kernel
results back to :class:`~repro.graph.path.Path` objects at the
boundary, so downstream code never sees CSR internals.  The kernel is
cached per network and rebuilt automatically when the network's
:attr:`~repro.graph.network.RoadNetwork.fingerprint` changes.  Set the
environment variable ``REPRO_ROUTING_BACKEND=dict`` (or call
:func:`set_routing_backend`) to force the reference implementation.
"""

from __future__ import annotations

import os
import threading
import weakref
from bisect import bisect_left
from collections import OrderedDict
from collections.abc import Iterable, Iterator
from contextlib import contextmanager
from heapq import heappop, heappush
from itertools import count
from math import inf

import numpy as np

try:  # scipy ships with the environment but stays optional: the pure
    # Python kernel below answers every query, just slower on SSSP.
    from scipy.sparse import csr_matrix as _sp_csr_matrix
    from scipy.sparse.csgraph import dijkstra as _sp_dijkstra

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised only without scipy
    _HAVE_SCIPY = False

from repro.errors import (
    ConfigError,
    GraphError,
    NoPathError,
    VertexNotFoundError,
)
from repro.graph.ch import ContractionHierarchy, WITNESS_SETTLE_LIMIT
from repro.graph.network import RoadNetwork
from repro.graph.shortest_path import CostFunction, length_cost, travel_time_cost
from repro.rng import RngLike, make_rng

__all__ = [
    "CSRGraph",
    "csr_for",
    "csr_if_built",
    "install_csr",
    "get_routing_backend",
    "set_routing_backend",
    "use_routing_backend",
    "resolve_backend",
    "ALT_NUM_LANDMARKS",
    "ALT_MIN_VERTICES",
    "MULTI_SOURCE_SLAB_ELEMENTS",
]

#: Landmarks built per (network, cost) pair for the ALT heuristic.
ALT_NUM_LANDMARKS = 8

#: Below this vertex count Yen skips building landmarks: the plain
#: array Dijkstra already answers tiny-graph queries in microseconds.
ALT_MIN_VERTICES = 128

#: Custom cost functions get their per-edge weight arrays memoised in a
#: bounded FIFO so e.g. per-driver cost closures do not grow unbounded.
_CUSTOM_WEIGHT_CAP = 16

#: Elements (float64) per multi-source distance slab: the default
#: ``chunk_size`` of :meth:`CSRGraph.multi_source` is derived from this
#: so a batched sweep never allocates more than ~32 MB per scipy call,
#: no matter how many sources the caller passes.
MULTI_SOURCE_SLAB_ELEMENTS = 4_000_000


class CSRGraph:
    """A :class:`RoadNetwork` flattened into CSR arrays for fast routing.

    All public methods take and return *vertex ids* (the network's own
    identifiers); internal computation uses dense CSR indices.  Searches
    are serialised by an internal lock because the scratch buffers are
    shared; the kernel is therefore safe to use from the threaded
    serving layer.
    """

    def __init__(self, network: RoadNetwork) -> None:
        # Deliberately no strong reference to the network: csr_for keeps
        # kernels in a WeakKeyDictionary keyed by the network, and a
        # value -> key reference would pin every routed network forever.
        self.network_name = network.name
        #: Fingerprint of the network at build time; :func:`csr_for`
        #: compares it against the live network to detect staleness.
        self.fingerprint = network.fingerprint

        ids = sorted(network.vertex_ids())
        n = len(ids)
        self.num_vertices = n
        self.ids: list[int] = ids
        self._index: dict[int, int] = {vid: i for i, vid in enumerate(ids)}

        xs = np.empty(n, dtype=np.float64)
        ys = np.empty(n, dtype=np.float64)
        indptr = [0]
        indices: list[int] = []
        edges = []
        for i, vid in enumerate(ids):
            vertex = network.vertex(vid)
            xs[i] = vertex.x
            ys[i] = vertex.y
            out = sorted(network.out_edges(vid),
                         key=lambda e: self._index[e.target])
            for edge in out:
                indices.append(self._index[edge.target])
                edges.append(edge)
            indptr.append(len(indices))
        m = len(indices)
        self.num_edges = m
        self.x = xs
        self.y = ys
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self._indptr_list = indptr
        self._indices_list = indices
        self._edges = edges
        self._max_speed_mps = max((e.speed for e in edges), default=1.0) / 3.6

        self._weight_lists: dict[object, list[float]] = {
            "length": [e.length for e in edges],
            "travel_time": [e.travel_time for e in edges],
        }
        self._custom_order: OrderedDict[object, None] = OrderedDict()
        self._forward_adj: dict[object, list[list[tuple[int, float]]]] = {}
        self._reverse_adj: dict[object, list[list[tuple[int, float]]]] = {}
        self._matrices: dict[tuple[object, bool], object] = {}
        self._alt_tables: dict[object, tuple[np.ndarray, np.ndarray, list[int]]] = {}
        self._ch_tables: dict[object, ContractionHierarchy] = {}

        # Scratch buffers, reused across searches via generation stamps:
        # an entry is valid for the current search only when its stamp
        # equals the current generation, so no O(n) reset per query.
        self._dist = [inf] * n
        self._parent = [-1] * n
        self._seen = [0] * n
        self._done = [0] * n
        self._ban = [0] * n
        self._gen = 0
        self._ban_gen = 0
        # Second buffer set for the backward half of bidirectional search.
        self._dist_b = [inf] * n
        self._parent_b = [-1] * n
        self._seen_b = [0] * n
        self._done_b = [0] * n
        self._lock = threading.Lock()
        # Cumulative search-effort counters, read by profile_counters().
        # Updated in bulk at the end of each search (which already holds
        # self._lock), so the hot loops only touch local ints.
        self._profile: dict[str, int] = {
            "sssp_runs": 0, "p2p_runs": 0, "astar_runs": 0,
            "bidirectional_runs": 0, "yen_runs": 0, "yen_spur_searches": 0,
            "heap_pops": 0, "settled": 0, "alt_pruned": 0,
        }

    # ------------------------------------------------------------------
    # Weights and adjacency
    # ------------------------------------------------------------------
    def _weight_key(self, cost: CostFunction | None) -> object:
        if cost is None or cost is length_cost:
            return "length"
        if cost is travel_time_cost:
            return "travel_time"
        return cost

    def edge_weights(self, cost: CostFunction | None = None) -> list[float]:
        """Per-edge weights in CSR order for ``cost`` (evaluated once)."""
        key = self._weight_key(cost)
        weights = self._weight_lists.get(key)
        if weights is None:
            if self._edges is None:
                raise GraphError(
                    "custom cost functions are unavailable on a "
                    "shared-memory CSR replica (edge objects stay in the "
                    "owner process); precompute the weights there"
                )
            weights = [float(cost(edge)) for edge in self._edges]
            if weights and min(weights) < 0:
                raise ValueError(
                    f"negative edge cost under {cost!r}; routing requires "
                    "non-negative costs"
                )
            self._remember_custom(key)
            self._weight_lists[key] = weights
        return weights

    def _remember_custom(self, key: object) -> None:
        self._custom_order[key] = None
        self._custom_order.move_to_end(key)
        while len(self._custom_order) > _CUSTOM_WEIGHT_CAP:
            stale, _ = self._custom_order.popitem(last=False)
            self._weight_lists.pop(stale, None)
            self._forward_adj.pop(stale, None)
            self._reverse_adj.pop(stale, None)
            self._alt_tables.pop(stale, None)
            # A hierarchy is derived from the evicted weight array; a
            # later re-registration of the same cost object must rebuild
            # it rather than route on weights that were dropped.
            self._ch_tables.pop(stale, None)
            self._matrices.pop((stale, False), None)
            self._matrices.pop((stale, True), None)

    def _forward(self, cost: CostFunction | None) -> list[list[tuple[int, float]]]:
        key = self._weight_key(cost)
        adj = self._forward_adj.get(key)
        if adj is None:
            weights = self.edge_weights(cost)
            indptr, indices = self._indptr_list, self._indices_list
            adj = [
                list(zip(indices[indptr[u]:indptr[u + 1]],
                         weights[indptr[u]:indptr[u + 1]]))
                for u in range(self.num_vertices)
            ]
            self._forward_adj[key] = adj
        return adj

    def _reverse(self, cost: CostFunction | None) -> list[list[tuple[int, float]]]:
        key = self._weight_key(cost)
        adj = self._reverse_adj.get(key)
        if adj is None:
            weights = self.edge_weights(cost)
            indptr, indices = self._indptr_list, self._indices_list
            adj = [[] for _ in range(self.num_vertices)]
            for u in range(self.num_vertices):
                for j in range(indptr[u], indptr[u + 1]):
                    adj[indices[j]].append((u, weights[j]))
            self._reverse_adj[key] = adj
        return adj

    def index_of(self, vertex_id: int) -> int:
        """The dense CSR index of a vertex id."""
        try:
            return self._index[vertex_id]
        except KeyError:
            raise VertexNotFoundError(vertex_id) from None

    def _edge_index(self, u: int, v: int) -> int:
        """CSR position of edge ``(u, v)`` (both CSR indices).

        Out-edges are sorted by target at build time, so a binary search
        over the vertex's slice recovers the position without keeping an
        m-entry lookup dict alive per kernel.
        """
        j = bisect_left(self._indices_list, v, self._indptr_list[u],
                        self._indptr_list[u + 1])
        return j

    def _matrix(self, cost: CostFunction | None, reverse: bool):
        """The scipy CSR matrix for a cost (transposed when ``reverse``)."""
        key = (self._weight_key(cost), reverse)
        matrix = self._matrices.get(key)
        if matrix is None:
            weights = np.asarray(self.edge_weights(cost), dtype=np.float64)
            matrix = _sp_csr_matrix(
                (weights, self.indices, self.indptr),
                shape=(self.num_vertices, self.num_vertices),
            )
            if reverse:
                matrix = matrix.T.tocsr()
            self._matrices[key] = matrix
        return matrix

    def _single_source_idx(self, source: int, cost: CostFunction | None,
                           reverse: bool = False) -> np.ndarray:
        """Distances from one CSR index to all vertices (or *to* it when
        ``reverse``), through scipy's C implementation when present."""
        if _HAVE_SCIPY:
            return _sp_dijkstra(self._matrix(cost, reverse), directed=True,
                                indices=source)
        adj = self._reverse(cost) if reverse else self._forward(cost)
        return self._sssp_array(source, adj)

    def default_chunk_size(self) -> int:
        """Sources per multi-source slab so one slab stays ~bounded.

        Each scipy sweep materialises a ``(chunk, n)`` float64 block;
        capping the element count (rather than the row count) keeps the
        transient allocation near :data:`MULTI_SOURCE_SLAB_ELEMENTS`
        (~32 MB) regardless of graph size.
        """
        return max(1, MULTI_SOURCE_SLAB_ELEMENTS // max(1, self.num_vertices))

    def _multi_source_idx(self, sources: list[int], cost: CostFunction | None,
                          reverse: bool = False,
                          chunk_size: int | None = None) -> np.ndarray:
        """Distance rows for many CSR-index sources, in bounded slabs.

        Returns a ``(len(sources), n)`` matrix.  With scipy, sources go
        through batched ``dijkstra`` calls of at most ``chunk_size``
        rows each (default :meth:`default_chunk_size`), amortising the
        per-call validation/dispatch overhead that dominates batch
        table builds (ALT landmarks, analysis sweeps) without ever
        materialising more than one slab beyond the result itself;
        without scipy, the pure-Python kernel runs once per source.
        """
        n = self.num_vertices
        if not sources:
            return np.zeros((0, n), dtype=np.float64)
        out = np.empty((len(sources), n), dtype=np.float64)
        for start, rows in self._iter_multi_source_idx(
                sources, cost, reverse=reverse, chunk_size=chunk_size):
            out[start:start + rows.shape[0]] = rows
        return out

    def _iter_multi_source_idx(self, sources: list[int],
                               cost: CostFunction | None,
                               reverse: bool = False,
                               chunk_size: int | None = None):
        """Yield ``(start, rows)`` distance slabs for CSR-index sources.

        ``rows`` is a ``(<= chunk_size, n)`` float64 block covering
        ``sources[start:start + rows.shape[0]]``; only one slab is live
        at a time, which is what bounds multi-source memory.
        """
        if chunk_size is None:
            chunk_size = self.default_chunk_size()
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        adj = None
        if not _HAVE_SCIPY:
            adj = self._reverse(cost) if reverse else self._forward(cost)
        for start in range(0, len(sources), chunk_size):
            chunk = sources[start:start + chunk_size]
            if _HAVE_SCIPY:
                rows = np.atleast_2d(_sp_dijkstra(self._matrix(cost, reverse),
                                                  directed=True, indices=chunk))
            else:
                rows = np.vstack([self._sssp_array(source, adj)
                                  for source in chunk])
            yield start, rows

    # ------------------------------------------------------------------
    # Core searches (CSR indices)
    # ------------------------------------------------------------------
    def _sssp_array(self, source: int,
                    adj: list[list[tuple[int, float]]]) -> np.ndarray:
        """Full single-source distances as an array indexed by CSR index.

        The tightest loop in the kernel: no target, ban, or heuristic
        checks — just heap pops and scalar relaxations over flat lists.
        """
        with self._lock:
            self._gen += 1
            gen = self._gen
            dist, seen, done = self._dist, self._seen, self._done
            dist[source] = 0.0
            seen[source] = gen
            heap = [(0.0, source)]
            push, pop = heappush, heappop
            pops = settled = 0
            while heap:
                d, u = pop(heap)
                pops += 1
                if done[u] == gen:
                    continue
                done[u] = gen
                settled += 1
                for v, w in adj[u]:
                    if done[v] == gen:
                        continue
                    nd = d + w
                    if seen[v] != gen or nd < dist[v]:
                        dist[v] = nd
                        seen[v] = gen
                        push(heap, (nd, v))
            profile = self._profile
            profile["sssp_runs"] += 1
            profile["heap_pops"] += pops
            profile["settled"] += settled
            out = np.array(dist, dtype=np.float64)
            out[np.asarray(seen) != gen] = np.inf
            return out

    def _p2p(
        self,
        source: int,
        target: int,
        adj: list[list[tuple[int, float]]],
        h: list[float] | None = None,
        banned_vertices: Iterable[int] = (),
        banned_edges: frozenset[tuple[int, int]] | set[tuple[int, int]] = frozenset(),
    ) -> tuple[list[int], float] | None:
        """Point-to-point search with optional heuristic and bans.

        Returns ``(vertex_index_path, cost)`` or ``None`` when the
        target is unreachable.  With an admissible consistent ``h`` this
        is A*; with ``h=None`` it is Dijkstra with early exit.
        """
        with self._lock:
            self._ban_gen += 1
            bgen = self._ban_gen
            ban = self._ban
            for v in banned_vertices:
                ban[v] = bgen
            if ban[source] == bgen:
                return None
            self._gen += 1
            gen = self._gen
            dist, seen, done, parent = (self._dist, self._seen, self._done,
                                        self._parent)
            dist[source] = 0.0
            seen[source] = gen
            parent[source] = -1
            heap = [(0.0 if h is None else h[source], source)]
            push, pop = heappush, heappop
            check_edges = bool(banned_edges)
            pops = settled = 0
            while heap:
                _, u = pop(heap)
                pops += 1
                if done[u] == gen:
                    continue
                done[u] = gen
                settled += 1
                if u == target:
                    break
                d = dist[u]
                for v, w in adj[u]:
                    if done[v] == gen or ban[v] == bgen:
                        continue
                    if check_edges and (u, v) in banned_edges:
                        continue
                    nd = d + w
                    if seen[v] != gen or nd < dist[v]:
                        dist[v] = nd
                        seen[v] = gen
                        parent[v] = u
                        push(heap, (nd if h is None else nd + h[v], v))
            profile = self._profile
            profile["astar_runs" if h is not None else "p2p_runs"] += 1
            profile["heap_pops"] += pops
            profile["settled"] += settled
            if h is not None:
                # Entries still queued when the target settled: frontier
                # the goal-directed heuristic never had to expand.
                profile["alt_pruned"] += len(heap)
            if done[target] != gen:
                return None
            path = [target]
            node = target
            while node != source:
                node = parent[node]
                path.append(node)
            path.reverse()
            return path, dist[target]

    def _bidirectional(
        self,
        source: int,
        target: int,
        fadj: list[list[tuple[int, float]]],
        radj: list[list[tuple[int, float]]],
    ) -> tuple[list[int], float] | None:
        """Meet-in-the-middle Dijkstra over the CSR arrays."""
        with self._lock:
            self._gen += 1
            gen = self._gen
            dist_f, seen_f, done_f, parent_f = (self._dist, self._seen,
                                                self._done, self._parent)
            dist_b, seen_b, done_b, parent_b = (self._dist_b, self._seen_b,
                                                self._done_b, self._parent_b)
            dist_f[source] = 0.0
            seen_f[source] = gen
            parent_f[source] = -1
            dist_b[target] = 0.0
            seen_b[target] = gen
            parent_b[target] = -1
            heap_f = [(0.0, source)]
            heap_b = [(0.0, target)]
            best = inf
            meeting = -1
            push, pop = heappush, heappop
            pops = settled = 0

            while heap_f and heap_b:
                if heap_f[0][0] + heap_b[0][0] >= best:
                    break
                if heap_f[0][0] <= heap_b[0][0]:
                    d, u = pop(heap_f)
                    pops += 1
                    if done_f[u] == gen:
                        continue
                    done_f[u] = gen
                    settled += 1
                    for v, w in fadj[u]:
                        nd = d + w
                        if seen_f[v] != gen or nd < dist_f[v]:
                            dist_f[v] = nd
                            seen_f[v] = gen
                            parent_f[v] = u
                            push(heap_f, (nd, v))
                        if seen_b[v] == gen and nd + dist_b[v] < best:
                            best = nd + dist_b[v]
                            meeting = v
                else:
                    d, u = pop(heap_b)
                    pops += 1
                    if done_b[u] == gen:
                        continue
                    done_b[u] = gen
                    settled += 1
                    for v, w in radj[u]:
                        nd = d + w
                        if seen_b[v] != gen or nd < dist_b[v]:
                            dist_b[v] = nd
                            seen_b[v] = gen
                            parent_b[v] = u
                            push(heap_b, (nd, v))
                        if seen_f[v] == gen and nd + dist_f[v] < best:
                            best = nd + dist_f[v]
                            meeting = v

            profile = self._profile
            profile["bidirectional_runs"] += 1
            profile["heap_pops"] += pops
            profile["settled"] += settled
            if meeting < 0:
                return None
            path = [meeting]
            node = meeting
            while node != source:
                node = parent_f[node]
                path.append(node)
            path.reverse()
            node = meeting
            while node != target:
                node = parent_b[node]
                path.append(node)
            return path, best

    # ------------------------------------------------------------------
    # ALT landmarks
    # ------------------------------------------------------------------
    def ensure_alt(
        self,
        cost: CostFunction | None = None,
        num_landmarks: int = ALT_NUM_LANDMARKS,
        rng: RngLike = None,
    ) -> list[int]:
        """Build (or reuse) landmark tables for ``cost``; returns the
        landmark vertex ids.

        Selection mirrors :class:`repro.graph.landmarks.LandmarkIndex`:
        a random first landmark, then farthest-point additions, spreading
        landmarks to the periphery where the triangle-inequality bounds
        are tightest.  Tables hold distances both *from* and *to* every
        landmark (the reverse search runs on the transposed CSR arrays).
        """
        key = self._weight_key(cost)
        cached = self._alt_tables.get(key)
        if cached is not None:
            return [self.ids[i] for i in cached[2]]
        if num_landmarks < 1:
            raise ValueError(f"num_landmarks must be >= 1, got {num_landmarks}")
        generator = make_rng(rng)
        n = self.num_vertices
        num_landmarks = min(num_landmarks, n)

        # Farthest-point selection is inherently sequential in the
        # *forward* distances (each pick depends on the previous rows),
        # but the reverse half of the tables is not: it runs as a
        # batched multi-source sweep (bounded slabs via the default
        # chunk size) once the landmark set is fixed, halving the
        # number of Dijkstra calls per build.
        landmarks = [int(generator.integers(n))]
        from_rows = [self._single_source_idx(landmarks[0], cost)]
        while len(landmarks) < num_landmarks:
            nearest = np.min(np.vstack(from_rows), axis=0)
            nearest[~np.isfinite(nearest)] = -1.0
            nearest[landmarks] = -1.0
            candidate = int(np.argmax(nearest))
            if nearest[candidate] <= 0.0:
                break
            landmarks.append(candidate)
            from_rows.append(self._single_source_idx(candidate, cost))
        to_rows = self._multi_source_idx(landmarks, cost, reverse=True)

        #: to_l[v, j] = d(v -> L_j); from_l[v, j] = d(L_j -> v).  The
        #: trailing OrderedDict memoises per-target heuristic arrays.
        to_l = np.ascontiguousarray(to_rows.T)
        from_l = np.stack(from_rows, axis=1)
        self._alt_tables[key] = (to_l, from_l, landmarks, OrderedDict())
        return [self.ids[i] for i in landmarks]

    #: Per-target heuristic arrays kept per cost key; hotspot-skewed
    #: serving traffic re-queries a small pool of destinations.
    _H_CACHE_CAP = 64

    def _alt_heuristic(self, key: object, target: int) -> list[float] | None:
        """Vectorised ALT lower bounds towards ``target`` (CSR index),
        or ``None`` when no tables exist for this cost."""
        cached = self._alt_tables.get(key)
        if cached is None:
            return None
        to_l, from_l, _, h_cache = cached
        h_list = h_cache.get(target)
        if h_list is not None:
            h_cache.move_to_end(target)
            return h_list
        with np.errstate(invalid="ignore"):
            a = to_l - to_l[target]
            b = from_l[target] - from_l
        # Non-finite bounds (a vertex or the target missing a landmark
        # distance) are dropped to 0, which is always admissible.
        a[~np.isfinite(a)] = 0.0
        b[~np.isfinite(b)] = 0.0
        h = np.maximum(np.maximum(a, b).max(axis=1), 0.0)
        h_list = h.tolist()
        h_cache[target] = h_list
        while len(h_cache) > self._H_CACHE_CAP:
            h_cache.popitem(last=False)
        return h_list

    def alt_bounds(self, target_id: int,
                   cost: CostFunction | None = None) -> np.ndarray:
        """Lower bounds on d(v, target) for every vertex, by CSR index.

        Builds the landmark tables on first use.  Exposed for the
        admissibility tests and for diagnostics.
        """
        target = self.index_of(target_id)
        self.ensure_alt(cost)
        return np.asarray(self._alt_heuristic(self._weight_key(cost), target))

    def _heuristic_for(
        self,
        cost: CostFunction | None,
        target: int,
        use_alt: bool | None,
    ) -> list[float] | None:
        """Resolve the spur-search heuristic for Yen / point-to-point.

        ``use_alt=None`` (auto) builds landmarks once the network is big
        enough to repay the preprocessing; ``True`` forces a build;
        ``False`` disables the heuristic entirely.
        """
        if use_alt is False:
            return None
        key = self._weight_key(cost)
        if key not in self._alt_tables:
            if use_alt is None and self.num_vertices < ALT_MIN_VERTICES:
                return None
            self.ensure_alt(cost)
        return self._alt_heuristic(key, target)

    def _euclidean_heuristic(self, target: int,
                             key: object) -> list[float] | None:
        """Straight-line lower bounds; valid for the geometric costs only."""
        if key == "length":
            h = np.hypot(self.x - self.x[target], self.y - self.y[target])
        elif key == "travel_time":
            h = np.hypot(self.x - self.x[target],
                         self.y - self.y[target]) / self._max_speed_mps
        else:
            return None
        return h.tolist()

    # ------------------------------------------------------------------
    # Contraction hierarchies
    # ------------------------------------------------------------------
    def ensure_ch(self, cost: CostFunction | None = None,
                  witness_limit: int = WITNESS_SETTLE_LIMIT,
                  ) -> ContractionHierarchy:
        """Build (or reuse) the contraction hierarchy for ``cost``.

        Memoised per weight key, mirroring :meth:`ensure_alt`; the
        hierarchy lives on this kernel, so a network mutation (which
        makes :func:`csr_for` build a fresh kernel for the new
        fingerprint) transparently invalidates it, and evicting a
        custom weight key drops its hierarchy with it.
        """
        key = self._weight_key(cost)
        hierarchy = self._ch_tables.get(key)
        if hierarchy is None:
            weights = self.edge_weights(cost)
            hierarchy = ContractionHierarchy.build(
                self._indptr_list, self._indices_list, weights,
                self.num_vertices, witness_limit=witness_limit)
            self._ch_tables[key] = hierarchy
        return hierarchy

    def ch_if_built(self, cost: CostFunction | None = None,
                    ) -> ContractionHierarchy | None:
        """The hierarchy for ``cost`` if one was built, else ``None``."""
        return self._ch_tables.get(self._weight_key(cost))

    def ch_shortest_path_ids(
        self,
        source_id: int,
        target_id: int,
        cost: CostFunction | None = None,
    ) -> tuple[list[int], float]:
        """Least-cost path via the contraction hierarchy.

        Same contract as :meth:`shortest_path_ids` — and the same
        answer: the hierarchy is exact, the unpacked path is the
        original-edge path, and the returned cost re-sums the original
        edge weights in path order so it is bitwise identical to what
        the Dijkstra reference accumulates.
        """
        if source_id == target_id:
            raise NoPathError(source_id, target_id)
        hierarchy = self.ensure_ch(cost)
        source = self.index_of(source_id)
        target = self.index_of(target_id)
        with self._lock:
            result = hierarchy.query(source, target)
        if result is None:
            raise NoPathError(source_id, target_id)
        path, _ = result
        weights = self.edge_weights(cost)
        edge_index = self._edge_index
        total = 0.0
        for u, v in zip(path, path[1:]):
            total += weights[edge_index(u, v)]
        ids = self.ids
        return [ids[i] for i in path], total

    def ch_shortest_path_cost(self, source_id: int, target_id: int,
                              cost: CostFunction | None = None) -> float:
        """The hierarchy-routed least cost (0.0 for equal ids)."""
        if source_id == target_id:
            return 0.0
        return self.ch_shortest_path_ids(source_id, target_id, cost)[1]

    def ch_p2p(self, cost: CostFunction | None = None):
        """A point-to-point callable over CSR indices riding the
        hierarchy: ``(source, target) -> (vertex_indices, cost) | None``.

        The cost is re-summed from the original edge weights, so the
        callable is a drop-in replacement for the unbanned
        :meth:`_p2p` — :meth:`yen_ids` uses it for the initial search
        (spur searches carry bans, which a hierarchy cannot honour, and
        stay on ALT A*).
        """
        hierarchy = self.ensure_ch(cost)
        weights = self.edge_weights(cost)
        edge_index = self._edge_index
        lock = self._lock

        def p2p(source: int, target: int
                ) -> tuple[list[int], float] | None:
            with lock:
                result = hierarchy.query(source, target)
            if result is None:
                return None
            path, _ = result
            total = 0.0
            for u, v in zip(path, path[1:]):
                total += weights[edge_index(u, v)]
            return path, total

        return p2p

    def ch_profile_counters(self) -> dict[str, float]:
        """Cumulative hierarchy counters, summed over built hierarchies.

        ``hierarchies``/``shortcuts``/``build_ms`` describe the
        preprocessing investment; ``queries``/``heap_pops``/``settled``/
        ``unpacked_arcs`` the query-time effort.  Serving publishes
        these under ``kernel.ch.*``.
        """
        totals: dict[str, float] = {
            "hierarchies": 0, "shortcuts": 0, "build_ms": 0.0,
            "queries": 0, "heap_pops": 0, "settled": 0, "unpacked_arcs": 0,
        }
        with self._lock:
            for hierarchy in self._ch_tables.values():
                totals["hierarchies"] += 1
                totals["shortcuts"] += hierarchy.num_shortcuts
                totals["build_ms"] += hierarchy.build_ms
                for name, value in hierarchy.profile.items():
                    totals[name] += value
        return totals

    # ------------------------------------------------------------------
    # Public queries (vertex ids)
    # ------------------------------------------------------------------
    def single_source(self, source_id: int,
                      cost: CostFunction | None = None) -> np.ndarray:
        """Distances from ``source_id`` to every vertex, by CSR index
        (``numpy.inf`` where unreachable)."""
        return self._single_source_idx(self.index_of(source_id), cost)

    def multi_source(self, source_ids: Iterable[int],
                     cost: CostFunction | None = None,
                     reverse: bool = False,
                     chunk_size: int | None = None) -> np.ndarray:
        """Distance rows for many sources in batched sweeps.

        Returns a ``(num_sources, num_vertices)`` matrix indexed by CSR
        index (``numpy.inf`` where unreachable); row ``i`` holds the
        distances *from* ``source_ids[i]`` (or *to* it when
        ``reverse``).  Sources are swept in slabs of at most
        ``chunk_size`` rows (default :meth:`default_chunk_size`, sized
        so one slab stays ~32 MB), so batch products stay bounded in
        transient memory while still amortising the per-call overhead.
        Callers that reduce rows as they go should prefer
        :meth:`iter_multi_source`, which never holds the full matrix.
        """
        sources = [self.index_of(vid) for vid in source_ids]
        return self._multi_source_idx(sources, cost, reverse=reverse,
                                      chunk_size=chunk_size)

    def iter_multi_source(self, source_ids: Iterable[int],
                          cost: CostFunction | None = None,
                          reverse: bool = False,
                          chunk_size: int | None = None,
                          ) -> Iterator[tuple[int, np.ndarray]]:
        """Stream multi-source distance slabs as ``(start, rows)`` pairs.

        ``rows[i]`` holds the distances for ``source_ids[start + i]``;
        at most ``chunk_size`` rows (default :meth:`default_chunk_size`)
        are live per step.  This is the memory-bounded primitive behind
        :meth:`multi_source` and the ``repro.analytics`` batch products,
        which reduce each slab (isochrone membership, OD columns) and
        drop it before the next sweep.
        """
        sources = [self.index_of(vid) for vid in source_ids]
        yield from self._iter_multi_source_idx(sources, cost, reverse=reverse,
                                               chunk_size=chunk_size)

    def sssp_parents(self, source_id: int, cost: CostFunction | None = None,
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Full SSSP tree: ``(dist, parent)`` arrays by CSR index.

        ``parent[v]`` is the CSR index of ``v``'s predecessor on the
        least-cost path from ``source_id`` (-1 for the source itself and
        for unreachable vertices, whose ``dist`` is ``inf``).  The heap
        orders ties by CSR index — which equals ascending-vertex-id
        order, the same tie-break as the dict-backend reference
        :func:`repro.graph.shortest_path.dijkstra` — so batched path
        reconstructions (route frequencies) match the per-query
        reference tree exactly, not just in cost.
        """
        source = self.index_of(source_id)
        adj = self._forward(cost)
        with self._lock:
            self._gen += 1
            gen = self._gen
            dist, seen, done, parent = (self._dist, self._seen, self._done,
                                        self._parent)
            dist[source] = 0.0
            seen[source] = gen
            parent[source] = -1
            heap = [(0.0, source)]
            push, pop = heappush, heappop
            pops = settled = 0
            while heap:
                d, u = pop(heap)
                pops += 1
                if done[u] == gen:
                    continue
                done[u] = gen
                settled += 1
                for v, w in adj[u]:
                    if done[v] == gen:
                        continue
                    nd = d + w
                    if seen[v] != gen or nd < dist[v]:
                        dist[v] = nd
                        seen[v] = gen
                        parent[v] = u
                        push(heap, (nd, v))
            profile = self._profile
            profile["sssp_runs"] += 1
            profile["heap_pops"] += pops
            profile["settled"] += settled
            out_dist = np.array(dist, dtype=np.float64)
            out_parent = np.array(parent, dtype=np.int64)
            unreached = np.asarray(seen) != gen
            out_dist[unreached] = np.inf
            out_parent[unreached] = -1
            return out_dist, out_parent

    def single_source_dict(self, source_id: int,
                           cost: CostFunction | None = None) -> dict[int, float]:
        """Reachable-vertex distances as an id-keyed dict (reference-API
        compatible with :func:`repro.graph.shortest_path.dijkstra`)."""
        arr = self.single_source(source_id, cost)
        ids = self.ids
        return {ids[i]: float(d) for i, d in enumerate(arr) if d != np.inf}

    def shortest_path_ids(
        self,
        source_id: int,
        target_id: int,
        cost: CostFunction | None = None,
    ) -> tuple[list[int], float]:
        """Least-cost path as vertex ids, plus its cost.

        Uses ALT-guided A* when landmark tables already exist for this
        cost (e.g. after a Yen query), plain early-exit Dijkstra
        otherwise.  Raises :class:`NoPathError` when unreachable.
        """
        if source_id == target_id:
            raise NoPathError(source_id, target_id)
        source = self.index_of(source_id)
        target = self.index_of(target_id)
        key = self._weight_key(cost)
        h = self._alt_heuristic(key, target) if key in self._alt_tables else None
        result = self._p2p(source, target, self._forward(cost), h)
        if result is None:
            raise NoPathError(source_id, target_id)
        path, total = result
        ids = self.ids
        return [ids[i] for i in path], total

    def shortest_path_cost(self, source_id: int, target_id: int,
                           cost: CostFunction | None = None) -> float:
        """The least cost between two vertices (0.0 for equal ids)."""
        if source_id == target_id:
            return 0.0
        return self.shortest_path_ids(source_id, target_id, cost)[1]

    def bidirectional_ids(
        self,
        source_id: int,
        target_id: int,
        cost: CostFunction | None = None,
    ) -> tuple[list[int], float]:
        """Bidirectional Dijkstra; same contract as :meth:`shortest_path_ids`."""
        if source_id == target_id:
            raise NoPathError(source_id, target_id)
        source = self.index_of(source_id)
        target = self.index_of(target_id)
        result = self._bidirectional(source, target, self._forward(cost),
                                     self._reverse(cost))
        if result is None:
            raise NoPathError(source_id, target_id)
        path, total = result
        ids = self.ids
        return [ids[i] for i in path], total

    def astar_ids(
        self,
        source_id: int,
        target_id: int,
        cost: CostFunction | None = None,
        heuristic: str | None = None,
    ) -> tuple[list[int], float]:
        """A* search.  ``heuristic`` is ``"alt"``, ``"euclidean"``, or
        ``None`` for auto (ALT tables if built, else euclidean for the
        geometric costs, else plain Dijkstra)."""
        if source_id == target_id:
            raise NoPathError(source_id, target_id)
        source = self.index_of(source_id)
        target = self.index_of(target_id)
        key = self._weight_key(cost)
        if heuristic == "alt":
            self.ensure_alt(cost)
            h = self._alt_heuristic(key, target)
        elif heuristic == "euclidean":
            h = self._euclidean_heuristic(target, key)
            if h is None:
                raise ConfigError(
                    "euclidean heuristic is only admissible for the length "
                    "and travel-time costs"
                )
        elif heuristic is None:
            if key in self._alt_tables:
                h = self._alt_heuristic(key, target)
            else:
                h = self._euclidean_heuristic(target, key)
        else:
            raise ConfigError(f"unknown heuristic {heuristic!r}")
        result = self._p2p(source, target, self._forward(cost), h)
        if result is None:
            raise NoPathError(source_id, target_id)
        path, total = result
        ids = self.ids
        return [ids[i] for i in path], total

    # ------------------------------------------------------------------
    # Yen's k shortest paths
    # ------------------------------------------------------------------
    def yen_ids(
        self,
        source_id: int,
        target_id: int,
        cost: CostFunction | None = None,
        max_paths: int | None = None,
        use_alt: bool | None = None,
        p2p=None,
    ) -> Iterator[tuple[tuple[int, ...], float]]:
        """Yield ``(vertex_ids, cost)`` for loopless paths in
        non-decreasing cost order (Yen, 1971).

        Structurally mirrors the reference generator in ``ksp.py``; the
        spur searches run over the CSR arrays and, on networks of at
        least :data:`ALT_MIN_VERTICES` vertices, are ALT-guided A*
        toward the (fixed) target — the bans only remove edges, so the
        landmark bounds stay admissible.

        ``p2p`` optionally substitutes the *initial* (unbanned) search
        with an exact point-to-point callable over CSR indices — e.g.
        :meth:`ch_p2p` — returning ``(vertex_indices, cost)`` or
        ``None``.  Spur searches always run here: they ban vertices and
        edges, which precomputed hierarchies cannot honour.
        """
        if source_id == target_id:
            raise NoPathError(source_id, target_id)
        s = self.index_of(source_id)
        t = self.index_of(target_id)
        adj = self._forward(cost)
        weights = self.edge_weights(cost)
        h = self._heuristic_for(cost, t, use_alt)

        with self._lock:
            self._profile["yen_runs"] += 1
        first = p2p(s, t) if p2p is not None else self._p2p(s, t, adj, h)
        if first is None:
            raise NoPathError(source_id, target_id)
        ids = self.ids
        edge_index = self._edge_index

        def prefix_costs(verts: list[int]) -> list[float]:
            acc = [0.0]
            total = 0.0
            for u, v in zip(verts, verts[1:]):
                total += weights[edge_index(u, v)]
                acc.append(total)
            return acc

        first_verts, first_cost = first
        yield tuple(ids[i] for i in first_verts), first_cost

        accepted: list[tuple[list[int], list[float]]] = [
            (first_verts, prefix_costs(first_verts))
        ]
        seen_paths: set[tuple[int, ...]] = {tuple(first_verts)}
        counter = count()
        candidates: list[tuple[float, int, list[int]]] = []
        produced = 1

        while max_paths is None or produced < max_paths:
            prev_verts, prev_prefix = accepted[-1]
            for spur_index in range(len(prev_verts) - 1):
                spur_vertex = prev_verts[spur_index]
                root = prev_verts[: spur_index + 1]

                banned_edges: set[tuple[int, int]] = set()
                for verts, _ in accepted:
                    if verts[: spur_index + 1] == root:
                        banned_edges.add((verts[spur_index],
                                          verts[spur_index + 1]))
                with self._lock:
                    self._profile["yen_spur_searches"] += 1
                result = self._p2p(spur_vertex, t, adj, h,
                                   banned_vertices=root[:-1],
                                   banned_edges=banned_edges)
                if result is None:
                    continue
                spur_verts, spur_cost = result
                total_verts = root[:-1] + spur_verts
                key = tuple(total_verts)
                if key in seen_paths:
                    continue
                seen_paths.add(key)
                heappush(candidates, (prev_prefix[spur_index] + spur_cost,
                                      next(counter), total_verts))

            if not candidates:
                return
            best_cost, _, best_verts = heappop(candidates)
            accepted.append((best_verts, prefix_costs(best_verts)))
            produced += 1
            yield tuple(ids[i] for i in best_verts), best_cost

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------
    def profile_counters(self) -> dict[str, int]:
        """Cumulative search-effort counters since this kernel was built.

        Per-search-kind run counts plus the three effort numbers that
        predict routing cost: ``heap_pops`` (priority-queue work),
        ``settled`` (vertices finalised), and ``alt_pruned`` (frontier
        entries an ALT/A* early exit never had to expand).  Serving
        publishes these under ``kernel.routing.*``.
        """
        with self._lock:
            return dict(self._profile)

    # ------------------------------------------------------------------
    # Shared-memory export / import (repro.exec)
    # ------------------------------------------------------------------
    def shared_key(self) -> str:
        """Content key for shared-memory export: ``csr:<digest>``."""
        return f"csr:{self.fingerprint[2]}"

    def shared_payload(self) -> tuple[dict[str, np.ndarray], dict[str, object]]:
        """The kernel's immutable hot-state as ``(arrays, meta)``.

        Arrays are everything a worker process needs to route: CSR
        topology, coordinates, vertex ids, the built-in weight arrays,
        and any ALT landmark tables already built for the built-in
        costs.  Exporting the *built* tables matters for parity:
        landmark selection starts from a random vertex, so a replica
        rebuilding its own tables could break ties differently from the
        owner.  Custom cost functions are deliberately not exported —
        they are closures over edge objects, which stay owner-side.
        """
        arrays: dict[str, np.ndarray] = {
            "indptr": self.indptr,
            "indices": self.indices,
            "x": self.x,
            "y": self.y,
            "ids": np.asarray(self.ids, dtype=np.int64),
        }
        weight_keys = [key for key in ("length", "travel_time")
                       if key in self._weight_lists]
        for key in weight_keys:
            arrays[f"w:{key}"] = np.asarray(self._weight_lists[key],
                                            dtype=np.float64)
        alt_keys = []
        ch_keys = []
        ch_build_ms: dict[str, float] = {}
        with self._lock:
            for key in ("length", "travel_time"):
                cached = self._alt_tables.get(key)
                if cached is None:
                    continue
                to_l, from_l, landmarks = cached[0], cached[1], cached[2]
                arrays[f"alt:{key}:to"] = np.asarray(to_l, dtype=np.float64)
                arrays[f"alt:{key}:from"] = np.asarray(from_l,
                                                       dtype=np.float64)
                arrays[f"alt:{key}:landmarks"] = np.asarray(landmarks,
                                                            dtype=np.int64)
                alt_keys.append(key)
            # Built hierarchies ship with the kernel for the same parity
            # reason as the ALT tables: a replica must route on exactly
            # the owner's shortcut set, and rebuilding one per worker
            # would repeat the most expensive part of preprocessing.
            for key in ("length", "travel_time"):
                hierarchy = self._ch_tables.get(key)
                if hierarchy is None:
                    continue
                for name, array in hierarchy.shared_arrays().items():
                    arrays[f"ch:{key}:{name}"] = array
                ch_keys.append(key)
                ch_build_ms[key] = hierarchy.build_ms
        meta: dict[str, object] = {
            "network_name": self.network_name,
            "fingerprint": list(self.fingerprint),
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "max_speed_mps": self._max_speed_mps,
            "weight_keys": weight_keys,
            "alt_keys": alt_keys,
            "ch_keys": ch_keys,
            "ch_build_ms": ch_build_ms,
        }
        return arrays, meta

    @classmethod
    def from_shared(cls, arrays: dict[str, np.ndarray],
                    meta: dict[str, object]) -> "CSRGraph":
        """Rebuild a routing kernel from a shared segment's payload.

        Topology and coordinate arrays stay zero-copy views into the
        segment; the pure-Python search loops want plain lists, so the
        weight/indptr/indices lists are materialised once per process
        (cheap relative to a spawn, and private to the worker).  The
        replica has no edge objects: custom cost functions raise
        :class:`~repro.errors.GraphError` (see :meth:`edge_weights`).
        """
        kernel = cls.__new__(cls)
        kernel.network_name = meta["network_name"]
        kernel.fingerprint = tuple(meta["fingerprint"])
        n = int(meta["num_vertices"])
        kernel.num_vertices = n
        kernel.ids = [int(vid) for vid in arrays["ids"]]
        kernel._index = {vid: i for i, vid in enumerate(kernel.ids)}
        kernel.num_edges = int(meta["num_edges"])
        kernel.x = arrays["x"]
        kernel.y = arrays["y"]
        kernel.indptr = arrays["indptr"]
        kernel.indices = arrays["indices"]
        kernel._indptr_list = arrays["indptr"].tolist()
        kernel._indices_list = arrays["indices"].tolist()
        kernel._edges = None
        kernel._max_speed_mps = float(meta["max_speed_mps"])
        kernel._weight_lists = {key: arrays[f"w:{key}"].tolist()
                                for key in meta["weight_keys"]}
        kernel._custom_order = OrderedDict()
        kernel._forward_adj = {}
        kernel._reverse_adj = {}
        kernel._matrices = {}
        kernel._alt_tables = {}
        for key in meta["alt_keys"]:
            kernel._alt_tables[key] = (
                arrays[f"alt:{key}:to"],
                arrays[f"alt:{key}:from"],
                [int(i) for i in arrays[f"alt:{key}:landmarks"]],
                OrderedDict(),
            )
        kernel._ch_tables = {}
        ch_build_ms = meta.get("ch_build_ms", {})
        for key in meta.get("ch_keys", ()):
            kernel._ch_tables[key] = ContractionHierarchy.from_shared_arrays(
                {name: arrays[f"ch:{key}:{name}"]
                 for name in ("rank", "fwd_indptr", "fwd_indices",
                              "fwd_weights", "bwd_indptr", "bwd_indices",
                              "bwd_weights", "shortcuts")},
                build_ms=float(ch_build_ms.get(key, 0.0)),
            )
        kernel._dist = [inf] * n
        kernel._parent = [-1] * n
        kernel._seen = [0] * n
        kernel._done = [0] * n
        kernel._ban = [0] * n
        kernel._gen = 0
        kernel._ban_gen = 0
        kernel._dist_b = [inf] * n
        kernel._parent_b = [-1] * n
        kernel._seen_b = [0] * n
        kernel._done_b = [0] * n
        kernel._lock = threading.Lock()
        kernel._profile = {
            "sssp_runs": 0, "p2p_runs": 0, "astar_runs": 0,
            "bidirectional_runs": 0, "yen_runs": 0, "yen_spur_searches": 0,
            "heap_pops": 0, "settled": 0, "alt_pruned": 0,
        }
        return kernel

    def __repr__(self) -> str:
        return (f"CSRGraph(vertices={self.num_vertices}, "
                f"edges={self.num_edges}, network={self.network_name!r})")


# ----------------------------------------------------------------------
# Backend seam
# ----------------------------------------------------------------------
_VALID_BACKENDS = ("auto", "csr", "dict", "ch")


def _backend_from_env() -> str:
    name = os.environ.get("REPRO_ROUTING_BACKEND", "auto").strip().lower()
    return name if name in _VALID_BACKENDS else "auto"


_routing_backend = _backend_from_env()


def set_routing_backend(name: str) -> None:
    """Select the process-wide routing backend.

    ``"csr"`` (and ``"auto"``, the default) route hot consumers through
    the CSR kernel; ``"ch"`` additionally rides the contraction
    hierarchy for unbanned point-to-point queries; ``"dict"`` forces
    the reference dict-based implementation everywhere.
    """
    global _routing_backend
    if name not in _VALID_BACKENDS:
        raise ConfigError(
            f"unknown routing backend {name!r}; expected one of "
            f"{', '.join(_VALID_BACKENDS)}"
        )
    _routing_backend = name


def get_routing_backend() -> str:
    """The currently selected routing backend name."""
    return _routing_backend


@contextmanager
def use_routing_backend(name: str):
    """Temporarily select a routing backend (tests, benchmarks)."""
    previous = get_routing_backend()
    set_routing_backend(name)
    try:
        yield
    finally:
        set_routing_backend(previous)


def resolve_backend(override: str | None = None) -> str:
    """Resolve an optional per-call override against the global setting
    to a concrete backend: ``"csr"``, ``"ch"``, or ``"dict"``."""
    name = override if override is not None else _routing_backend
    if name not in _VALID_BACKENDS:
        raise ConfigError(
            f"unknown routing backend {name!r}; expected one of "
            f"{', '.join(_VALID_BACKENDS)}"
        )
    if name in ("dict", "ch"):
        return name
    return "csr"


_csr_cache: "weakref.WeakKeyDictionary[RoadNetwork, CSRGraph]" = \
    weakref.WeakKeyDictionary()
_csr_cache_lock = threading.Lock()


def csr_for(network: RoadNetwork) -> CSRGraph:
    """The cached CSR kernel for ``network``, rebuilt when stale.

    Staleness is detected through the network's content fingerprint, so
    mutating the network (adding/removing vertices or edges) transparently
    triggers a rebuild on the next routing call.
    """
    graph = _csr_cache.get(network)
    if graph is not None and graph.fingerprint == network.fingerprint:
        return graph
    with _csr_cache_lock:
        graph = _csr_cache.get(network)
        if graph is None or graph.fingerprint != network.fingerprint:
            graph = CSRGraph(network)
            _csr_cache[network] = graph
        return graph


def install_csr(network: RoadNetwork, kernel: CSRGraph) -> CSRGraph:
    """Install a pre-built kernel as ``network``'s cached CSR graph.

    The attach side of shared-memory routing: a worker process rebuilds
    the kernel with :meth:`CSRGraph.from_shared` and installs it here,
    so every existing consumer (`yen_path_generator`, the diversified
    generator, serving) transparently routes on the shared arrays via
    :func:`csr_for`.  The fingerprint must match the live network —
    installing stale hot-state would silently corrupt results.
    """
    if kernel.fingerprint != network.fingerprint:
        raise GraphError(
            f"kernel fingerprint {kernel.fingerprint!r} does not match "
            f"network fingerprint {network.fingerprint!r}; refusing to "
            "install a stale CSR kernel"
        )
    with _csr_cache_lock:
        _csr_cache[network] = kernel
    return kernel


def csr_if_built(network: RoadNetwork) -> CSRGraph | None:
    """The cached CSR kernel for ``network`` — without building one.

    Telemetry readers (``kernel.routing.*`` callbacks) must observe the
    kernel routing actually used, not force an expensive CSR build on a
    network nothing has routed on yet; ``None`` means "no kernel, no
    counters".  A stale kernel (the network mutated since the build) is
    still returned: its counters describe the searches that really ran.
    """
    return _csr_cache.get(network)
