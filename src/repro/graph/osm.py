"""Minimal OSM-XML interchange.

The paper's road network comes from OpenStreetMap.  No OSM extract is
available offline, but downstream users will have them, so the library
speaks a pragmatic subset of OSM XML: ``<node>`` elements with ids and
WGS84 coordinates, and ``<way>`` elements carrying ``highway``,
``oneway``, and ``maxspeed`` tags.  Geographic coordinates are projected
to local planar metres with an equirectangular projection around the
extract's mean latitude — adequate at the regional scales the paper
works at.
"""

from __future__ import annotations

import math
import xml.etree.ElementTree as ET
from pathlib import Path as FilePath

from repro.errors import SerializationError
from repro.graph.network import RoadCategory, RoadNetwork

__all__ = ["load_osm_xml", "save_osm_xml", "HIGHWAY_TO_CATEGORY"]

_EARTH_RADIUS_M = 6_371_000.0

#: OSM ``highway`` values accepted as routable roads, mapped to the
#: library's category hierarchy.
HIGHWAY_TO_CATEGORY = {
    "motorway": RoadCategory.MOTORWAY,
    "motorway_link": RoadCategory.MOTORWAY,
    "trunk": RoadCategory.MOTORWAY,
    "primary": RoadCategory.ARTERIAL,
    "secondary": RoadCategory.ARTERIAL,
    "tertiary": RoadCategory.LOCAL,
    "unclassified": RoadCategory.LOCAL,
    "residential": RoadCategory.RESIDENTIAL,
    "living_street": RoadCategory.RESIDENTIAL,
}

_CATEGORY_TO_HIGHWAY = {
    RoadCategory.MOTORWAY: "motorway",
    RoadCategory.ARTERIAL: "primary",
    RoadCategory.LOCAL: "tertiary",
    RoadCategory.RESIDENTIAL: "residential",
}


def _project(lat: float, lon: float, lat0: float, lon0: float) -> tuple[float, float]:
    """Equirectangular projection to metres around ``(lat0, lon0)``."""
    x = math.radians(lon - lon0) * _EARTH_RADIUS_M * math.cos(math.radians(lat0))
    y = math.radians(lat - lat0) * _EARTH_RADIUS_M
    return x, y


def _unproject(x: float, y: float, lat0: float, lon0: float) -> tuple[float, float]:
    lat = lat0 + math.degrees(y / _EARTH_RADIUS_M)
    lon = lon0 + math.degrees(x / (_EARTH_RADIUS_M * math.cos(math.radians(lat0))))
    return lat, lon


def _haversine(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = phi2 - phi1
    dlambda = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2) ** 2
    return 2 * _EARTH_RADIUS_M * math.asin(math.sqrt(a))


def _parse_maxspeed(value: str | None, fallback: float) -> float:
    if not value:
        return fallback
    text = value.strip().lower()
    try:
        if text.endswith("mph"):
            return float(text[:-3].strip()) * 1.609344
        return float(text)
    except ValueError:
        return fallback


def load_osm_xml(path: str | FilePath, keep_largest_scc: bool = True) -> RoadNetwork:
    """Parse an OSM XML file into a :class:`RoadNetwork`.

    Ways without a recognised ``highway`` tag are ignored.  Two-way
    streets (no ``oneway=yes``) produce both directed edges.  Node ids
    are renumbered densely in document order.
    """
    path = FilePath(path)
    if not path.exists():
        raise SerializationError(f"no such OSM file: {path}")
    try:
        tree = ET.parse(path)
    except ET.ParseError as exc:
        raise SerializationError(f"invalid OSM XML in {path}: {exc}") from exc
    root = tree.getroot()

    raw_nodes: dict[str, tuple[float, float]] = {}
    for node in root.iter("node"):
        try:
            raw_nodes[node.attrib["id"]] = (
                float(node.attrib["lat"]),
                float(node.attrib["lon"]),
            )
        except (KeyError, ValueError) as exc:
            raise SerializationError(f"malformed OSM node: {exc}") from exc
    if not raw_nodes:
        raise SerializationError(f"OSM file {path} contains no nodes")

    lat0 = sum(lat for lat, _ in raw_nodes.values()) / len(raw_nodes)
    lon0 = sum(lon for _, lon in raw_nodes.values()) / len(raw_nodes)

    network = RoadNetwork(name=path.stem)
    id_map: dict[str, int] = {}

    def ensure_vertex(osm_id: str) -> int:
        if osm_id not in id_map:
            lat, lon = raw_nodes[osm_id]
            x, y = _project(lat, lon, lat0, lon0)
            id_map[osm_id] = len(id_map)
            network.add_vertex(id_map[osm_id], x, y)
        return id_map[osm_id]

    for way in root.iter("way"):
        tags = {tag.attrib.get("k"): tag.attrib.get("v") for tag in way.iter("tag")}
        category = HIGHWAY_TO_CATEGORY.get(tags.get("highway", ""))
        if category is None:
            continue
        speed = _parse_maxspeed(tags.get("maxspeed"), category.default_speed)
        one_way = tags.get("oneway") in ("yes", "true", "1")
        refs = [nd.attrib["ref"] for nd in way.iter("nd") if nd.attrib.get("ref") in raw_nodes]
        for a_ref, b_ref in zip(refs, refs[1:]):
            if a_ref == b_ref:
                continue
            a, b = ensure_vertex(a_ref), ensure_vertex(b_ref)
            lat_a, lon_a = raw_nodes[a_ref]
            lat_b, lon_b = raw_nodes[b_ref]
            length = max(_haversine(lat_a, lon_a, lat_b, lon_b), 0.1)
            if not network.has_edge(a, b):
                network.add_edge(a, b, length=length, speed=speed, category=category)
            if not one_way and not network.has_edge(b, a):
                network.add_edge(b, a, length=length, speed=speed, category=category)

    if keep_largest_scc:
        network, _ = network.largest_scc_subgraph().relabelled()
    network.validate()
    return network


def save_osm_xml(
    network: RoadNetwork,
    path: str | FilePath,
    origin: tuple[float, float] = (57.05, 9.92),  # Aalborg, North Jutland
) -> None:
    """Serialise a network as OSM XML (one way per directed edge pair).

    ``origin`` anchors the planar coordinates at a WGS84 position so the
    output is a legal OSM document; the default is Aalborg, the heart of
    the paper's study region.
    """
    path = FilePath(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lat0, lon0 = origin

    root = ET.Element("osm", version="0.6", generator="repro-pathrank")
    for v in network.vertices():
        lat, lon = _unproject(v.x, v.y, lat0, lon0)
        ET.SubElement(root, "node", id=str(v.id + 1), lat=f"{lat:.7f}",
                      lon=f"{lon:.7f}", version="1")

    emitted: set[tuple[int, int]] = set()
    way_id = 1
    for e in network.edges():
        if e.key in emitted:
            continue
        reverse = network.has_edge(e.target, e.source)
        emitted.add(e.key)
        if reverse:
            emitted.add((e.target, e.source))
        way = ET.SubElement(root, "way", id=str(way_id), version="1")
        way_id += 1
        ET.SubElement(way, "nd", ref=str(e.source + 1))
        ET.SubElement(way, "nd", ref=str(e.target + 1))
        ET.SubElement(way, "tag", k="highway", v=_CATEGORY_TO_HIGHWAY[e.category])
        ET.SubElement(way, "tag", k="maxspeed", v=str(int(round(e.speed))))
        if not reverse:
            ET.SubElement(way, "tag", k="oneway", v="yes")

    tree = ET.ElementTree(root)
    ET.indent(tree)
    tree.write(path, encoding="unicode", xml_declaration=True)
