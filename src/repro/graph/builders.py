"""Synthetic spatial road-network generators.

The paper evaluates on the North Jutland (Denmark) OSM extract, which is
not available offline; these generators produce deterministic stand-ins
with the structural properties the algorithms care about: planar-ish
topology, a road-category hierarchy with distinct speeds, mild geometric
irregularity, and strong connectivity.

* :func:`grid_network` — a perturbed city grid with an arterial
  sub-grid, the workhorse for tests and small experiments;
* :func:`ring_radial_network` — a ring-and-spoke town;
* :func:`north_jutland_like` — several towns of different sizes joined
  by motorway corridors, the stand-in for the paper's regional network.

Every generator returns a strongly connected network with vertices
relabelled ``0..n-1`` so embeddings can index them densely.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import GraphError
from repro.graph.network import RoadCategory, RoadNetwork
from repro.rng import RngLike, make_rng

__all__ = ["grid_network", "ring_radial_network", "north_jutland_like"]

#: Roads meander: euclidean distance is scaled by a winding factor drawn
#: from this range to obtain the road length.
_WINDING_RANGE = (1.0, 1.25)


def _finalise(network: RoadNetwork) -> RoadNetwork:
    """Largest SCC, densely relabelled, validated."""
    connected = network.largest_scc_subgraph()
    relabelled, _ = connected.relabelled()
    relabelled.validate()
    if relabelled.num_vertices < 2:
        raise GraphError("generator produced a degenerate network")
    return relabelled


def _road_length(rng: np.random.Generator, euclidean: float) -> float:
    low, high = _WINDING_RANGE
    return euclidean * float(rng.uniform(low, high))


def grid_network(
    rows: int,
    cols: int,
    spacing: float = 250.0,
    seed: RngLike = None,
    perturbation: float = 0.15,
    removal_probability: float = 0.08,
    arterial_every: int = 4,
    name: str | None = None,
) -> RoadNetwork:
    """A perturbed ``rows x cols`` street grid.

    Every ``arterial_every``-th row/column is an arterial (faster);
    remaining streets are local or residential.  A fraction of edges is
    removed to break the grid's symmetry, then the largest strongly
    connected component is returned.

    ``perturbation`` jitters vertex positions by that fraction of the
    spacing, so no two generated networks are geometrically identical.
    """
    if rows < 2 or cols < 2:
        raise ValueError(f"grid needs at least 2x2 vertices, got {rows}x{cols}")
    if not 0.0 <= perturbation < 0.5:
        raise ValueError(f"perturbation must be in [0, 0.5), got {perturbation}")
    if not 0.0 <= removal_probability < 1.0:
        raise ValueError(
            f"removal_probability must be in [0, 1), got {removal_probability}"
        )
    if arterial_every < 2:
        raise ValueError(f"arterial_every must be >= 2, got {arterial_every}")

    rng = make_rng(seed)
    network = RoadNetwork(name=name or f"grid-{rows}x{cols}")

    def vertex_id(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            jitter_x = rng.uniform(-perturbation, perturbation) * spacing
            jitter_y = rng.uniform(-perturbation, perturbation) * spacing
            network.add_vertex(vertex_id(r, c), c * spacing + jitter_x,
                               r * spacing + jitter_y)

    def street_category(r: int, c: int, horizontal: bool) -> RoadCategory:
        on_arterial = (r % arterial_every == 0) if horizontal else (c % arterial_every == 0)
        if on_arterial:
            return RoadCategory.ARTERIAL
        return RoadCategory.LOCAL if rng.random() < 0.6 else RoadCategory.RESIDENTIAL

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols and rng.random() >= removal_probability:
                a, b = vertex_id(r, c), vertex_id(r, c + 1)
                network.add_two_way(
                    a, b,
                    length=_road_length(rng, network.euclidean(a, b)),
                    category=street_category(r, c, horizontal=True),
                )
            if r + 1 < rows and rng.random() >= removal_probability:
                a, b = vertex_id(r, c), vertex_id(r + 1, c)
                network.add_two_way(
                    a, b,
                    length=_road_length(rng, network.euclidean(a, b)),
                    category=street_category(r, c, horizontal=False),
                )
    return _finalise(network)


def ring_radial_network(
    rings: int = 3,
    spokes: int = 8,
    ring_spacing: float = 500.0,
    seed: RngLike = None,
    name: str | None = None,
) -> RoadNetwork:
    """A ring-and-spoke town: concentric arterials, radial local roads."""
    if rings < 1:
        raise ValueError(f"need at least one ring, got {rings}")
    if spokes < 3:
        raise ValueError(f"need at least three spokes, got {spokes}")

    rng = make_rng(seed)
    network = RoadNetwork(name=name or f"ring-radial-{rings}x{spokes}")
    network.add_vertex(0, 0.0, 0.0)  # town centre

    def ring_vertex(ring: int, spoke: int) -> int:
        return 1 + (ring - 1) * spokes + spoke

    for ring in range(1, rings + 1):
        radius = ring * ring_spacing
        for spoke in range(spokes):
            angle = 2.0 * math.pi * spoke / spokes
            wobble = rng.uniform(0.95, 1.05)
            network.add_vertex(
                ring_vertex(ring, spoke),
                radius * wobble * math.cos(angle),
                radius * wobble * math.sin(angle),
            )

    # Radial roads: centre -> ring 1, then outward along each spoke.
    for spoke in range(spokes):
        first = ring_vertex(1, spoke)
        network.add_two_way(0, first,
                            length=_road_length(rng, network.euclidean(0, first)),
                            category=RoadCategory.LOCAL)
        for ring in range(1, rings):
            inner, outer = ring_vertex(ring, spoke), ring_vertex(ring + 1, spoke)
            network.add_two_way(
                inner, outer,
                length=_road_length(rng, network.euclidean(inner, outer)),
                category=RoadCategory.LOCAL,
            )

    # Ring roads: arterials around each ring.
    for ring in range(1, rings + 1):
        for spoke in range(spokes):
            a = ring_vertex(ring, spoke)
            b = ring_vertex(ring, (spoke + 1) % spokes)
            network.add_two_way(a, b,
                                length=_road_length(rng, network.euclidean(a, b)),
                                category=RoadCategory.ARTERIAL)
    return _finalise(network)


def north_jutland_like(
    num_towns: int = 5,
    town_size_range: tuple[int, int] = (3, 6),
    region_extent: float = 30_000.0,
    seed: RngLike = None,
    name: str = "north-jutland-like",
) -> RoadNetwork:
    """A multi-town region: perturbed-grid towns joined by motorways.

    This is the substitute for the paper's North Jutland road network —
    several population centres with dense low-speed streets, connected
    by sparse high-speed corridors, so that shortest-distance and
    fastest-time routes genuinely differ and the diversified top-k
    enumeration has meaningful alternatives (via town bypasses).
    """
    if num_towns < 2:
        raise ValueError(f"need at least two towns, got {num_towns}")
    low, high = town_size_range
    if low < 2 or high < low:
        raise ValueError(f"invalid town_size_range {town_size_range}")

    rng = make_rng(seed)
    network = RoadNetwork(name=name)
    next_id = 0
    town_centres: list[tuple[float, float]] = []
    town_gateways: list[list[int]] = []

    # Place town centres with a minimum mutual separation.
    min_separation = region_extent / max(num_towns, 2)
    attempts = 0
    while len(town_centres) < num_towns:
        attempts += 1
        if attempts > 1000:
            raise GraphError("could not place towns; lower num_towns or raise extent")
        cx = float(rng.uniform(0.0, region_extent))
        cy = float(rng.uniform(0.0, region_extent))
        if all(math.hypot(cx - x, cy - y) >= min_separation for x, y in town_centres):
            town_centres.append((cx, cy))

    for cx, cy in town_centres:
        rows = int(rng.integers(low, high + 1))
        cols = int(rng.integers(low, high + 1))
        spacing = float(rng.uniform(200.0, 320.0))
        ids: dict[tuple[int, int], int] = {}
        for r in range(rows):
            for c in range(cols):
                jitter_x = rng.uniform(-0.15, 0.15) * spacing
                jitter_y = rng.uniform(-0.15, 0.15) * spacing
                x = cx + (c - cols / 2.0) * spacing + jitter_x
                y = cy + (r - rows / 2.0) * spacing + jitter_y
                network.add_vertex(next_id, x, y)
                ids[(r, c)] = next_id
                next_id += 1
        for r in range(rows):
            for c in range(cols):
                if c + 1 < cols:
                    a, b = ids[(r, c)], ids[(r, c + 1)]
                    category = RoadCategory.ARTERIAL if r in (0, rows - 1) \
                        else RoadCategory.LOCAL
                    network.add_two_way(a, b,
                                        length=_road_length(rng, network.euclidean(a, b)),
                                        category=category)
                if r + 1 < rows:
                    a, b = ids[(r, c)], ids[(r + 1, c)]
                    category = RoadCategory.ARTERIAL if c in (0, cols - 1) \
                        else RoadCategory.RESIDENTIAL
                    network.add_two_way(a, b,
                                        length=_road_length(rng, network.euclidean(a, b)),
                                        category=category)
        # Town gateways: the four grid corners join the motorway system.
        corners = [ids[(0, 0)], ids[(0, cols - 1)], ids[(rows - 1, 0)],
                   ids[(rows - 1, cols - 1)]]
        town_gateways.append(corners)

    # Motorway corridors between each town and its nearest neighbours.
    def nearest_towns(index: int, count: int) -> list[int]:
        cx, cy = town_centres[index]
        ranked = sorted(
            (i for i in range(num_towns) if i != index),
            key=lambda i: math.hypot(town_centres[i][0] - cx, town_centres[i][1] - cy),
        )
        return ranked[:count]

    def lay_corridor(town_a: int, town_b: int, category: RoadCategory) -> None:
        """Connect two towns with a chain of intermediate vertices.

        Distinct gateways (grid corners) are drawn for each corridor, so a
        motorway and a regional road between the same two towns enter the
        towns at different points — giving route alternatives that differ
        over most of their mileage, like real parallel-corridor pairs.
        """
        nonlocal next_id
        gateway_a = int(rng.choice(town_gateways[town_a]))
        gateway_b = int(rng.choice(town_gateways[town_b]))
        ax, ay = network.vertex(gateway_a).x, network.vertex(gateway_a).y
        bx, by = network.vertex(gateway_b).x, network.vertex(gateway_b).y
        hops = int(rng.integers(1, 4))
        chain = [gateway_a]
        for h in range(1, hops + 1):
            t = h / (hops + 1)
            wobble = rng.uniform(-0.08, 0.08) * region_extent / 10.0
            network.add_vertex(next_id, ax + (bx - ax) * t + wobble,
                               ay + (by - ay) * t + wobble)
            chain.append(next_id)
            next_id += 1
        chain.append(gateway_b)
        for u, v in zip(chain, chain[1:]):
            if not network.has_edge(u, v):
                network.add_two_way(u, v,
                                    length=_road_length(rng, network.euclidean(u, v)),
                                    category=category)

    # Primary motorway corridors to the 2 nearest towns, plus a slower
    # regional (arterial) road shadowing each motorway and one extra
    # arterial to the 3rd-nearest town: every inter-town OD pair then has
    # at least two substantially different route options.
    linked: set[tuple[int, int]] = set()
    for town in range(num_towns):
        for rank, neighbour in enumerate(nearest_towns(town, 3)):
            key = (min(town, neighbour), max(town, neighbour))
            if key in linked:
                continue
            linked.add(key)
            if rank < 2:
                lay_corridor(town, neighbour, RoadCategory.MOTORWAY)
                lay_corridor(town, neighbour, RoadCategory.ARTERIAL)
            else:
                lay_corridor(town, neighbour, RoadCategory.ARTERIAL)
    return _finalise(network)
