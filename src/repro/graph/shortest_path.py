"""Shortest-path algorithms: Dijkstra, bidirectional Dijkstra, A*.

All algorithms take an *edge-cost function* so the same machinery serves
shortest-distance routing, fastest-time routing, and the personalised
driver costs of the trajectory simulator.  Yen's algorithm (``ksp.py``)
reuses :func:`dijkstra` through its ``banned_vertices``/``banned_edges``
hooks.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Callable, Iterable

from repro.errors import NoPathError, VertexNotFoundError
from repro.graph.network import Edge, RoadNetwork
from repro.graph.path import Path

__all__ = [
    "CostFunction",
    "length_cost",
    "travel_time_cost",
    "dijkstra",
    "shortest_path",
    "shortest_path_cost",
    "bidirectional_dijkstra",
    "astar",
    "euclidean_heuristic",
    "travel_time_heuristic",
]

CostFunction = Callable[[Edge], float]


def length_cost(edge: Edge) -> float:
    """Cost = edge length in metres (shortest-distance routing)."""
    return edge.length


def travel_time_cost(edge: Edge) -> float:
    """Cost = free-flow travel time in seconds (fastest routing)."""
    return edge.travel_time


def _check_endpoints(network: RoadNetwork, source: int, target: int | None) -> None:
    if not network.has_vertex(source):
        raise VertexNotFoundError(source)
    if target is not None and not network.has_vertex(target):
        raise VertexNotFoundError(target)


def dijkstra(
    network: RoadNetwork,
    source: int,
    cost: CostFunction = length_cost,
    target: int | None = None,
    banned_vertices: Iterable[int] = (),
    banned_edges: Iterable[tuple[int, int]] = (),
) -> tuple[dict[int, float], dict[int, int]]:
    """Single-source shortest paths.

    Returns ``(dist, prev)`` maps.  With ``target`` set, stops as soon as
    the target is settled.  ``banned_vertices`` and ``banned_edges``
    support Yen's spur computations without copying the network.
    """
    _check_endpoints(network, source, target)
    banned_v = set(banned_vertices)
    banned_e = set(banned_edges)
    if source in banned_v:
        return {}, {}

    dist: dict[int, float] = {source: 0.0}
    prev: dict[int, int] = {}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if node == target:
            break
        for edge in network.out_edges(node):
            neighbor = edge.target
            if neighbor in settled or neighbor in banned_v or edge.key in banned_e:
                continue
            weight = cost(edge)
            if weight < 0:
                raise ValueError(
                    f"negative edge cost {weight} on {edge.key}; Dijkstra requires "
                    "non-negative costs"
                )
            candidate = d + weight
            if candidate < dist.get(neighbor, math.inf):
                dist[neighbor] = candidate
                prev[neighbor] = node
                heapq.heappush(heap, (candidate, neighbor))
    return dist, prev


def _reconstruct(prev: dict[int, int], source: int, target: int) -> list[int]:
    sequence = [target]
    node = target
    while node != source:
        node = prev[node]
        sequence.append(node)
    sequence.reverse()
    return sequence


def shortest_path(
    network: RoadNetwork,
    source: int,
    target: int,
    cost: CostFunction = length_cost,
    banned_vertices: Iterable[int] = (),
    banned_edges: Iterable[tuple[int, int]] = (),
    backend: str | None = None,
) -> Path:
    """Least-cost path from ``source`` to ``target``.

    Raises :class:`NoPathError` when ``target`` is unreachable.  Plain
    queries (no bans) run on the CSR kernel unless the reference backend
    is forced via ``backend="dict"`` or ``REPRO_ROUTING_BACKEND=dict``;
    banned-vertex/edge queries always use the reference implementation.
    """
    if source == target:
        raise NoPathError(source, target)
    if not banned_vertices and not banned_edges:
        from repro.graph import csr  # deferred: csr imports this module

        resolved = csr.resolve_backend(backend)
        if resolved == "ch":
            vertices, _ = csr.csr_for(network).ch_shortest_path_ids(
                source, target, cost)
            return Path(network, vertices)
        if resolved == "csr":
            vertices, _ = csr.csr_for(network).shortest_path_ids(
                source, target, cost)
            return Path(network, vertices)
    dist, prev = dijkstra(network, source, cost, target=target,
                          banned_vertices=banned_vertices, banned_edges=banned_edges)
    if target not in dist:
        raise NoPathError(source, target)
    return Path(network, _reconstruct(prev, source, target))


def shortest_path_cost(
    network: RoadNetwork, source: int, target: int,
    cost: CostFunction = length_cost, backend: str | None = None,
) -> float:
    """The cost of the least-cost path (without materialising it)."""
    if source == target:
        return 0.0
    from repro.graph import csr  # deferred: csr imports this module

    resolved = csr.resolve_backend(backend)
    if resolved == "ch":
        return csr.csr_for(network).ch_shortest_path_cost(source, target, cost)
    if resolved == "csr":
        return csr.csr_for(network).shortest_path_cost(source, target, cost)
    dist, _ = dijkstra(network, source, cost, target=target)
    if target not in dist:
        raise NoPathError(source, target)
    return dist[target]


def bidirectional_dijkstra(
    network: RoadNetwork,
    source: int,
    target: int,
    cost: CostFunction = length_cost,
) -> Path:
    """Bidirectional Dijkstra: meet-in-the-middle search.

    Settles roughly half the vertices plain Dijkstra would on spatial
    graphs; the candidate-generation benchmarks quantify this.
    """
    _check_endpoints(network, source, target)
    if source == target:
        raise NoPathError(source, target)

    dist_f: dict[int, float] = {source: 0.0}
    dist_b: dict[int, float] = {target: 0.0}
    prev_f: dict[int, int] = {}
    next_b: dict[int, int] = {}
    settled_f: set[int] = set()
    settled_b: set[int] = set()
    heap_f: list[tuple[float, int]] = [(0.0, source)]
    heap_b: list[tuple[float, int]] = [(0.0, target)]
    best = math.inf
    meeting = -1

    def scan_forward() -> None:
        nonlocal best, meeting
        d, node = heapq.heappop(heap_f)
        if node in settled_f:
            return
        settled_f.add(node)
        for edge in network.out_edges(node):
            weight = cost(edge)
            candidate = d + weight
            if candidate < dist_f.get(edge.target, math.inf):
                dist_f[edge.target] = candidate
                prev_f[edge.target] = node
                heapq.heappush(heap_f, (candidate, edge.target))
            if edge.target in dist_b and candidate + dist_b[edge.target] < best:
                best = candidate + dist_b[edge.target]
                meeting = edge.target

    def scan_backward() -> None:
        nonlocal best, meeting
        d, node = heapq.heappop(heap_b)
        if node in settled_b:
            return
        settled_b.add(node)
        for edge in network.in_edges(node):
            weight = cost(edge)
            candidate = d + weight
            if candidate < dist_b.get(edge.source, math.inf):
                dist_b[edge.source] = candidate
                next_b[edge.source] = node
                heapq.heappush(heap_b, (candidate, edge.source))
            if edge.source in dist_f and candidate + dist_f[edge.source] < best:
                best = candidate + dist_f[edge.source]
                meeting = edge.source

    while heap_f and heap_b:
        if heap_f[0][0] + heap_b[0][0] >= best:
            break
        if heap_f[0][0] <= heap_b[0][0]:
            scan_forward()
        else:
            scan_backward()

    if meeting < 0:
        raise NoPathError(source, target)

    forward_part = _reconstruct(prev_f, source, meeting)
    node = meeting
    while node != target:
        node = next_b[node]
        forward_part.append(node)
    return Path(network, forward_part)


def euclidean_heuristic(network: RoadNetwork, target: int) -> Callable[[int], float]:
    """Admissible heuristic for length costs: straight-line distance."""
    goal = network.vertex(target)
    return lambda node: network.vertex(node).distance_to(goal)


def travel_time_heuristic(network: RoadNetwork, target: int) -> Callable[[int], float]:
    """Admissible heuristic for time costs: distance at the network's
    maximum speed."""
    goal = network.vertex(target)
    max_speed = max((e.speed for e in network.edges()), default=1.0) / 3.6
    return lambda node: network.vertex(node).distance_to(goal) / max_speed


def astar(
    network: RoadNetwork,
    source: int,
    target: int,
    cost: CostFunction = length_cost,
    heuristic: Callable[[int], float] | None = None,
) -> Path:
    """A* search; defaults to the euclidean heuristic (admissible for
    length costs because edge length >= straight-line distance)."""
    _check_endpoints(network, source, target)
    if source == target:
        raise NoPathError(source, target)
    h = heuristic if heuristic is not None else euclidean_heuristic(network, target)

    dist: dict[int, float] = {source: 0.0}
    prev: dict[int, int] = {}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(h(source), source)]
    while heap:
        _, node = heapq.heappop(heap)
        if node in settled:
            continue
        if node == target:
            return Path(network, _reconstruct(prev, source, target))
        settled.add(node)
        d = dist[node]
        for edge in network.out_edges(node):
            neighbor = edge.target
            if neighbor in settled:
                continue
            candidate = d + cost(edge)
            if candidate < dist.get(neighbor, math.inf):
                dist[neighbor] = candidate
                prev[neighbor] = node
                heapq.heappush(heap, (candidate + h(neighbor), neighbor))
    raise NoPathError(source, target)
