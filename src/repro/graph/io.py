"""Road-network persistence: JSON documents and CSV pairs.

The JSON format is a single self-describing document; the CSV format
mirrors the conventional ``vertices.csv`` / ``edges.csv`` pair used by
road-network datasets, making it easy to bring external data into the
library.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path as FilePath

from repro.errors import SerializationError
from repro.graph.network import RoadCategory, RoadNetwork

__all__ = [
    "network_to_dict",
    "network_from_dict",
    "save_network_json",
    "load_network_json",
    "save_network_csv",
    "load_network_csv",
]

_FORMAT_VERSION = 1


def network_to_dict(network: RoadNetwork) -> dict:
    """A JSON-serialisable description of ``network``."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": network.name,
        "vertices": [
            {"id": v.id, "x": v.x, "y": v.y} for v in network.vertices()
        ],
        "edges": [
            {
                "source": e.source,
                "target": e.target,
                "length": e.length,
                "speed": e.speed,
                "category": e.category.value,
            }
            for e in network.edges()
        ],
    }


def network_from_dict(document: dict) -> RoadNetwork:
    """Inverse of :func:`network_to_dict`, with validation."""
    if not isinstance(document, dict):
        raise SerializationError("network document must be a mapping")
    version = document.get("format_version")
    if version != _FORMAT_VERSION:
        raise SerializationError(f"unsupported network format version {version!r}")
    network = RoadNetwork(name=document.get("name", "road-network"))
    try:
        for row in document["vertices"]:
            network.add_vertex(int(row["id"]), float(row["x"]), float(row["y"]))
        for row in document["edges"]:
            network.add_edge(
                int(row["source"]),
                int(row["target"]),
                length=float(row["length"]),
                speed=float(row["speed"]),
                category=RoadCategory(row["category"]),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed network document: {exc}") from exc
    network.validate()
    return network


def save_network_json(network: RoadNetwork, path: str | FilePath) -> None:
    path = FilePath(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(network_to_dict(network), handle, indent=1)


def load_network_json(path: str | FilePath) -> RoadNetwork:
    path = FilePath(path)
    if not path.exists():
        raise SerializationError(f"no such network file: {path}")
    with open(path, encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise SerializationError(f"invalid JSON in {path}: {exc}") from exc
    return network_from_dict(document)


def save_network_csv(network: RoadNetwork, directory: str | FilePath) -> None:
    """Write ``vertices.csv`` and ``edges.csv`` into ``directory``."""
    directory = FilePath(directory)
    directory.mkdir(parents=True, exist_ok=True)
    with open(directory / "vertices.csv", "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "x", "y"])
        for v in network.vertices():
            writer.writerow([v.id, v.x, v.y])
    with open(directory / "edges.csv", "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["source", "target", "length", "speed", "category"])
        for e in network.edges():
            writer.writerow([e.source, e.target, e.length, e.speed, e.category.value])


def load_network_csv(directory: str | FilePath, name: str = "road-network") -> RoadNetwork:
    """Read a ``vertices.csv`` / ``edges.csv`` pair."""
    directory = FilePath(directory)
    vertices_path = directory / "vertices.csv"
    edges_path = directory / "edges.csv"
    for required in (vertices_path, edges_path):
        if not required.exists():
            raise SerializationError(f"missing CSV file: {required}")
    network = RoadNetwork(name=name)
    try:
        with open(vertices_path, newline="", encoding="utf-8") as handle:
            for row in csv.DictReader(handle):
                network.add_vertex(int(row["id"]), float(row["x"]), float(row["y"]))
        with open(edges_path, newline="", encoding="utf-8") as handle:
            for row in csv.DictReader(handle):
                network.add_edge(
                    int(row["source"]),
                    int(row["target"]),
                    length=float(row["length"]),
                    speed=float(row["speed"]),
                    category=RoadCategory(row["category"]),
                )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed CSV network in {directory}: {exc}") from exc
    network.validate()
    return network
