"""Routing-backend benchmark harness: dict reference vs CSR kernel.

Times the two routing backends on generated grid networks of increasing
size across the workloads that dominate PathRank's end-to-end cost:

* **single-source Dijkstra** — the landmark/table builds and analysis
  sweeps;
* **point-to-point shortest path** — the serving fallback;
* **Yen k-shortest-paths** — candidate generation, the p95 cold-query
  cliff measured by ``benchmarks/bench_serving.py``.

Every timed comparison is paired with a parity check (identical costs
between backends), so a speedup can never come from a wrong answer.
The report is a JSON document (``BENCH_routing.json``); its shape is
pinned by :func:`validate_report`, which the smoke test in
``benchmarks/bench_routing.py`` runs against every emitted report.

Consumed by ``benchmarks/bench_routing.py`` (standalone + pytest smoke
mode) and the ``bench-routing`` CLI subcommand.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import asdict, dataclass, replace
from pathlib import Path as FilePath

import numpy as np

from repro.errors import DataError
from repro.graph.builders import grid_network
from repro.graph.csr import csr_for
from repro.graph.ksp import yen_k_shortest_paths
from repro.graph.network import RoadNetwork
from repro.graph.shortest_path import dijkstra, shortest_path
from repro.rng import make_rng

__all__ = [
    "RoutingBenchConfig",
    "smoke_config",
    "full_config",
    "apply_overrides",
    "run_routing_benchmark",
    "validate_report",
    "write_report",
]

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class RoutingBenchConfig:
    """Knobs of one benchmark run."""

    grid_sizes: tuple[int, ...] = (12, 24, 40)
    sssp_queries: int = 12
    p2p_queries: int = 12
    ksp_queries: int = 6
    k: int = 8
    repeats: int = 2
    seed: int = 7
    preset: str = "full"

    def __post_init__(self) -> None:
        if not self.grid_sizes:
            raise ValueError("grid_sizes must not be empty")
        if min(self.grid_sizes) < 2:
            raise ValueError(f"grid sizes must be >= 2, got {self.grid_sizes}")
        if min(self.sssp_queries, self.p2p_queries, self.ksp_queries) < 1:
            raise ValueError("query counts must be >= 1")
        if self.k < 1 or self.repeats < 1:
            raise ValueError("k and repeats must be >= 1")


def smoke_config() -> RoutingBenchConfig:
    """Tiny preset for the tier-1 pytest wrapper: one small grid,
    best-of-3 timing so the not-slower assertion is stable under CI
    jitter, finishes in well under a second."""
    return RoutingBenchConfig(grid_sizes=(8,), sssp_queries=4, p2p_queries=4,
                              ksp_queries=2, k=4, repeats=3, preset="smoke")


def full_config() -> RoutingBenchConfig:
    """The headline preset behind the committed ``BENCH_routing.json``."""
    return RoutingBenchConfig()


def apply_overrides(
    config: RoutingBenchConfig,
    sizes: str | None = None,
    k: int | None = None,
    seed: int | None = None,
) -> RoutingBenchConfig:
    """Apply the command-line overrides shared by the ``bench-routing``
    CLI subcommand and the standalone benchmark entry point.

    ``sizes`` is the raw comma-separated string (e.g. ``"12,24,40"``).
    """
    overrides = {}
    if sizes:
        overrides["grid_sizes"] = tuple(
            int(value) for value in sizes.split(",") if value.strip())
    if k is not None:
        overrides["k"] = k
    if seed is not None:
        overrides["seed"] = seed
    return replace(config, **overrides) if overrides else config


def _best_of(repeats: int, fn) -> float:
    """Best wall-clock seconds over ``repeats`` runs of ``fn``."""
    best = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _sample_pairs(network: RoadNetwork, count: int,
                  rng: np.random.Generator) -> list[tuple[int, int]]:
    ids = network.vertex_ids()
    pairs = []
    while len(pairs) < count:
        s, t = (int(v) for v in rng.choice(ids, 2, replace=False))
        pairs.append((s, t))
    return pairs


def _bench_network(network: RoadNetwork, name: str,
                   config: RoutingBenchConfig,
                   rng: np.random.Generator) -> dict:
    """Benchmark one network; every block asserts backend parity."""
    ids = network.vertex_ids()
    sources = [int(s) for s in
               rng.choice(ids, min(config.sssp_queries, len(ids)),
                          replace=False)]
    p2p_pairs = _sample_pairs(network, config.p2p_queries, rng)
    ksp_pairs = _sample_pairs(network, config.ksp_queries, rng)

    # csr_for is cold for a freshly generated network, so this times the
    # actual flatten; later backend="csr" calls reuse the same kernel.
    build_started = time.perf_counter()
    kernel = csr_for(network)
    csr_build_ms = (time.perf_counter() - build_started) * 1000.0
    alt_started = time.perf_counter()
    kernel.ensure_alt()
    alt_build_ms = (time.perf_counter() - alt_started) * 1000.0

    # -- single-source ------------------------------------------------
    dict_s = _best_of(config.repeats,
                      lambda: [dijkstra(network, s) for s in sources])
    csr_s = _best_of(config.repeats,
                     lambda: [kernel.single_source(s) for s in sources])
    reference, _ = dijkstra(network, sources[0])
    distances = kernel.single_source(sources[0])
    sssp_diff = max(
        abs(distances[kernel.index_of(vid)] - d)
        for vid, d in reference.items()
    )

    # -- point-to-point (serving fallback path) -----------------------
    def _p2p(backend: str) -> list:
        return [shortest_path(network, s, t, backend=backend)
                for s, t in p2p_pairs]

    dict_p = _best_of(config.repeats, lambda: _p2p("dict"))
    csr_p = _best_of(config.repeats, lambda: _p2p("csr"))
    p2p_diff = max(abs(a.length - b.length)
                   for a, b in zip(_p2p("dict"), _p2p("csr")))

    # -- Yen k shortest paths (candidate generation) ------------------
    def _ksp(backend: str) -> list[list]:
        return [yen_k_shortest_paths(network, s, t, config.k, backend=backend)
                for s, t in ksp_pairs]

    dict_k = _best_of(config.repeats, lambda: _ksp("dict"))
    csr_k = _best_of(config.repeats, lambda: _ksp("csr"))
    ksp_diff = 0.0
    for dict_paths, csr_paths in zip(_ksp("dict"), _ksp("csr")):
        if len(dict_paths) != len(csr_paths):
            raise DataError(
                f"backend disagreement on {name}: dict produced "
                f"{len(dict_paths)} paths, csr {len(csr_paths)}"
            )
        for a, b in zip(dict_paths, csr_paths):
            ksp_diff = max(ksp_diff, abs(a.length - b.length))

    def _block(queries: int, dict_s_total: float, csr_s_total: float,
               **extra) -> dict:
        dict_ms = dict_s_total * 1000.0 / queries
        csr_ms = csr_s_total * 1000.0 / queries
        return {
            "queries": queries,
            "dict_ms_per_query": dict_ms,
            "csr_ms_per_query": csr_ms,
            "speedup": dict_ms / csr_ms if csr_ms > 0 else math.inf,
            **extra,
        }

    return {
        "name": name,
        "vertices": network.num_vertices,
        "edges": network.num_edges,
        "csr_build_ms": csr_build_ms,
        "alt_build_ms": alt_build_ms,
        "single_source": _block(len(sources), dict_s, csr_s),
        "point_to_point": _block(len(p2p_pairs), dict_p, csr_p),
        "ksp": _block(len(ksp_pairs), dict_k, csr_k, k=config.k),
        "parity": {
            "sssp_max_abs_diff": float(sssp_diff),
            "p2p_max_abs_diff": float(p2p_diff),
            "ksp_max_abs_diff": float(ksp_diff),
        },
    }


def run_routing_benchmark(config: RoutingBenchConfig | None = None) -> dict:
    """Benchmark dict vs CSR across the configured grid sizes."""
    config = config or full_config()
    rng = make_rng(config.seed)
    networks = []
    for size in config.grid_sizes:
        network = grid_network(size, size, seed=config.seed)
        networks.append(
            _bench_network(network, f"grid-{size}x{size}", config, rng))
    largest = max(networks, key=lambda entry: entry["vertices"])
    report = {
        "schema_version": SCHEMA_VERSION,
        "preset": config.preset,
        "config": asdict(config),
        "networks": networks,
        "largest": {
            "name": largest["name"],
            "vertices": largest["vertices"],
            "single_source_speedup": largest["single_source"]["speedup"],
            "point_to_point_speedup": largest["point_to_point"]["speedup"],
            "ksp_speedup": largest["ksp"]["speedup"],
        },
    }
    validate_report(report)
    return report


_NETWORK_KEYS = ("name", "vertices", "edges", "csr_build_ms", "alt_build_ms",
                 "single_source", "point_to_point", "ksp", "parity")
_BLOCK_KEYS = ("queries", "dict_ms_per_query", "csr_ms_per_query", "speedup")


def validate_report(report: dict) -> None:
    """Check a benchmark report parses as valid ``BENCH_routing.json``.

    Raises :class:`DataError` on a malformed document; used both when a
    report is produced and by the smoke test against re-parsed JSON.
    """
    if report.get("schema_version") != SCHEMA_VERSION:
        raise DataError(
            f"unexpected schema_version {report.get('schema_version')!r}")
    networks = report.get("networks")
    if not isinstance(networks, list) or not networks:
        raise DataError("report must hold a non-empty 'networks' list")
    for entry in networks:
        missing = [key for key in _NETWORK_KEYS if key not in entry]
        if missing:
            raise DataError(f"network entry missing keys: {missing}")
        for block in ("single_source", "point_to_point", "ksp"):
            for key in _BLOCK_KEYS:
                value = entry[block].get(key)
                if not isinstance(value, (int, float)) or not math.isfinite(value):
                    raise DataError(
                        f"{entry['name']}.{block}.{key} must be a finite "
                        f"number, got {value!r}"
                    )
        for key, diff in entry["parity"].items():
            if not isinstance(diff, float) or not diff <= 1e-6:
                raise DataError(
                    f"{entry['name']} parity violation: {key}={diff!r}")
    largest = report.get("largest")
    if not isinstance(largest, dict) or "ksp_speedup" not in largest \
            or "single_source_speedup" not in largest:
        raise DataError("report must summarise the largest network's speedups")


def write_report(report: dict, path: str | FilePath) -> FilePath:
    """Validate and write the report; returns the output path."""
    validate_report(report)
    out = FilePath(path)
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return out
