"""Spatial road networks.

A :class:`RoadNetwork` is a directed graph whose vertices carry planar
coordinates (metres) and whose edges carry length, speed, and a road
category.  This is the substrate every other subsystem builds on: the
routing algorithms, node2vec walks, trajectory simulation, and PathRank
itself all consume this structure.
"""

from __future__ import annotations

import enum
import hashlib
import math
import struct
from collections.abc import Iterator
from dataclasses import dataclass

from repro.errors import EdgeNotFoundError, GraphError, VertexNotFoundError

__all__ = ["RoadCategory", "Vertex", "Edge", "RoadNetwork"]


class RoadCategory(enum.Enum):
    """Coarse functional road classes, mirroring OSM highway values."""

    MOTORWAY = "motorway"
    ARTERIAL = "arterial"
    LOCAL = "local"
    RESIDENTIAL = "residential"

    @property
    def default_speed(self) -> float:
        """Default free-flow speed in km/h for the class."""
        return _DEFAULT_SPEEDS[self]


_DEFAULT_SPEEDS = {
    RoadCategory.MOTORWAY: 110.0,
    RoadCategory.ARTERIAL: 80.0,
    RoadCategory.LOCAL: 50.0,
    RoadCategory.RESIDENTIAL: 30.0,
}


@dataclass(frozen=True)
class Vertex:
    """A network vertex at planar position ``(x, y)`` in metres."""

    id: int
    x: float
    y: float

    def distance_to(self, other: "Vertex") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)


@dataclass(frozen=True)
class Edge:
    """A directed road segment.

    ``length`` is in metres and ``speed`` in km/h; ``travel_time`` is
    derived, in seconds.
    """

    source: int
    target: int
    length: float
    speed: float
    category: RoadCategory = RoadCategory.LOCAL

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise GraphError(f"edge ({self.source}->{self.target}) has non-positive "
                             f"length {self.length}")
        if self.speed <= 0:
            raise GraphError(f"edge ({self.source}->{self.target}) has non-positive "
                             f"speed {self.speed}")

    @property
    def travel_time(self) -> float:
        """Free-flow traversal time in seconds."""
        return self.length / (self.speed / 3.6)

    @property
    def key(self) -> tuple[int, int]:
        return (self.source, self.target)


class RoadNetwork:
    """Directed spatial graph with O(1) vertex/edge lookup.

    Vertices are identified by integers.  At most one directed edge per
    ordered vertex pair is allowed (parallel roads between the same two
    junctions are out of scope for the paper's setting, which works on
    simple road graphs).
    """

    def __init__(self, name: str = "road-network") -> None:
        self.name = name
        self._vertices: dict[int, Vertex] = {}
        self._edges: dict[tuple[int, int], Edge] = {}
        self._out: dict[int, list[Edge]] = {}
        self._in: dict[int, list[Edge]] = {}
        #: Bumped on every mutation; lets derived structures (fingerprint,
        #: CSR kernel, candidate caches) detect staleness in O(1).
        self._version = 0
        self._fingerprint: tuple[int, int, str] | None = None
        self._fingerprint_version = -1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self, vertex_id: int, x: float, y: float) -> Vertex:
        if vertex_id in self._vertices:
            raise GraphError(f"vertex {vertex_id} already exists")
        vertex = Vertex(int(vertex_id), float(x), float(y))
        self._vertices[vertex.id] = vertex
        self._out[vertex.id] = []
        self._in[vertex.id] = []
        self._version += 1
        return vertex

    def add_edge(
        self,
        source: int,
        target: int,
        length: float | None = None,
        speed: float | None = None,
        category: RoadCategory = RoadCategory.LOCAL,
    ) -> Edge:
        """Insert a directed edge.

        ``length`` defaults to the euclidean distance between endpoints;
        ``speed`` defaults to the category's free-flow speed.
        """
        if source not in self._vertices:
            raise VertexNotFoundError(source)
        if target not in self._vertices:
            raise VertexNotFoundError(target)
        if source == target:
            raise GraphError(f"self-loop at vertex {source} is not allowed")
        key = (source, target)
        if key in self._edges:
            raise GraphError(f"edge {key} already exists")
        if length is None:
            length = self.euclidean(source, target)
            if length == 0.0:
                raise GraphError(
                    f"vertices {source} and {target} are co-located; provide a length"
                )
        edge = Edge(
            source=int(source),
            target=int(target),
            length=float(length),
            speed=float(speed) if speed is not None else category.default_speed,
            category=category,
        )
        self._edges[key] = edge
        self._out[source].append(edge)
        self._in[target].append(edge)
        self._version += 1
        return edge

    def add_two_way(
        self,
        a: int,
        b: int,
        length: float | None = None,
        speed: float | None = None,
        category: RoadCategory = RoadCategory.LOCAL,
    ) -> tuple[Edge, Edge]:
        """Insert both directions of a bidirectional road."""
        forward = self.add_edge(a, b, length=length, speed=speed, category=category)
        backward = self.add_edge(b, a, length=forward.length, speed=forward.speed,
                                 category=category)
        return forward, backward

    def remove_edge(self, source: int, target: int) -> None:
        key = (source, target)
        edge = self._edges.pop(key, None)
        if edge is None:
            raise EdgeNotFoundError(source, target)
        self._out[source].remove(edge)
        self._in[target].remove(edge)
        self._version += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def vertex(self, vertex_id: int) -> Vertex:
        try:
            return self._vertices[vertex_id]
        except KeyError:
            raise VertexNotFoundError(vertex_id) from None

    def has_vertex(self, vertex_id: int) -> bool:
        return vertex_id in self._vertices

    def edge(self, source: int, target: int) -> Edge:
        try:
            return self._edges[(source, target)]
        except KeyError:
            raise EdgeNotFoundError(source, target) from None

    def has_edge(self, source: int, target: int) -> bool:
        return (source, target) in self._edges

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._vertices.values())

    def vertex_ids(self) -> list[int]:
        return list(self._vertices)

    def edges(self) -> Iterator[Edge]:
        return iter(self._edges.values())

    def out_edges(self, vertex_id: int) -> list[Edge]:
        try:
            return list(self._out[vertex_id])
        except KeyError:
            raise VertexNotFoundError(vertex_id) from None

    def in_edges(self, vertex_id: int) -> list[Edge]:
        try:
            return list(self._in[vertex_id])
        except KeyError:
            raise VertexNotFoundError(vertex_id) from None

    def successors(self, vertex_id: int) -> list[int]:
        if vertex_id not in self._vertices:
            raise VertexNotFoundError(vertex_id)
        return [e.target for e in self._out[vertex_id]]

    def predecessors(self, vertex_id: int) -> list[int]:
        if vertex_id not in self._vertices:
            raise VertexNotFoundError(vertex_id)
        return [e.source for e in self._in[vertex_id]]

    def degree(self, vertex_id: int) -> int:
        """Total degree (in + out)."""
        if vertex_id not in self._vertices:
            raise VertexNotFoundError(vertex_id)
        return len(self._out[vertex_id]) + len(self._in[vertex_id])

    @property
    def version(self) -> int:
        """Monotonic mutation counter (add/remove of vertices or edges)."""
        return self._version

    @property
    def fingerprint(self) -> tuple[int, int, str]:
        """Cheap content fingerprint: ``(num_vertices, num_edges, digest)``.

        The digest covers every edge's endpoints, length, speed, and
        category in canonical (sorted-key) order, so any mutation that
        could change routing results or path features changes the
        fingerprint.  Recomputed lazily only after a mutation — repeated
        reads on a static network are O(1) — which makes it suitable as a
        staleness key for candidate caches and the CSR routing kernel.
        """
        # Snapshot the version before hashing: a mutation racing with the
        # digest must leave the stamp stale so the next read recomputes,
        # never cache a half-mutated digest under the new version.
        version = self._version
        if self._fingerprint_version != version:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(struct.pack("<qq", len(self._vertices), len(self._edges)))
            for key in sorted(self._edges):
                edge = self._edges[key]
                digest.update(struct.pack("<qqdd", edge.source, edge.target,
                                          edge.length, edge.speed))
                digest.update(edge.category.value.encode("ascii"))
            self._fingerprint = (len(self._vertices), len(self._edges),
                                 digest.hexdigest())
            self._fingerprint_version = version
        return self._fingerprint

    def euclidean(self, a: int, b: int) -> float:
        """Straight-line distance between two vertices, in metres."""
        return self.vertex(a).distance_to(self.vertex(b))

    def bounding_box(self) -> tuple[float, float, float, float]:
        """``(min_x, min_y, max_x, max_y)`` over all vertices."""
        if not self._vertices:
            raise GraphError("bounding box of an empty network")
        xs = [v.x for v in self._vertices.values()]
        ys = [v.y for v in self._vertices.values()]
        return (min(xs), min(ys), max(xs), max(ys))

    def total_length(self) -> float:
        return sum(e.length for e in self._edges.values())

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    def strongly_connected_components(self) -> list[set[int]]:
        """Kosaraju's algorithm, iterative (road graphs exceed the
        default recursion limit)."""
        order: list[int] = []
        visited: set[int] = set()
        for start in self._vertices:
            if start in visited:
                continue
            stack: list[tuple[int, Iterator[int]]] = [(start, iter(self.successors(start)))]
            visited.add(start)
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if nxt not in visited:
                        visited.add(nxt)
                        stack.append((nxt, iter(self.successors(nxt))))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()

        components: list[set[int]] = []
        assigned: set[int] = set()
        for start in reversed(order):
            if start in assigned:
                continue
            component = {start}
            assigned.add(start)
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for prev in self.predecessors(node):
                    if prev not in assigned:
                        assigned.add(prev)
                        component.add(prev)
                        frontier.append(prev)
            components.append(component)
        return components

    def is_strongly_connected(self) -> bool:
        if not self._vertices:
            return True
        return len(self.strongly_connected_components()) == 1

    def largest_scc_subgraph(self) -> "RoadNetwork":
        """The sub-network induced by the largest strongly connected
        component, preserving vertex ids."""
        components = self.strongly_connected_components()
        if not components:
            return RoadNetwork(name=self.name)
        keep = max(components, key=len)
        return self.subgraph(keep)

    def subgraph(self, vertex_ids: set[int]) -> "RoadNetwork":
        sub = RoadNetwork(name=self.name)
        for vid in sorted(vertex_ids):
            v = self.vertex(vid)
            sub.add_vertex(v.id, v.x, v.y)
        for edge in self._edges.values():
            if edge.source in vertex_ids and edge.target in vertex_ids:
                sub.add_edge(edge.source, edge.target, length=edge.length,
                             speed=edge.speed, category=edge.category)
        return sub

    def relabelled(self) -> tuple["RoadNetwork", dict[int, int]]:
        """Copy with vertices renumbered 0..n-1 (sorted by old id).

        Returns the new network and the old→new id mapping.  The
        embedding layer indexes vertices densely, so experiment pipelines
        relabel after taking the largest SCC.
        """
        mapping = {old: new for new, old in enumerate(sorted(self._vertices))}
        renamed = RoadNetwork(name=self.name)
        for old, new in mapping.items():
            v = self._vertices[old]
            renamed.add_vertex(new, v.x, v.y)
        for edge in self._edges.values():
            renamed.add_edge(mapping[edge.source], mapping[edge.target],
                             length=edge.length, speed=edge.speed, category=edge.category)
        return renamed, mapping

    # ------------------------------------------------------------------
    # Validation / interop
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check internal consistency; raises :class:`GraphError` on damage."""
        for key, edge in self._edges.items():
            if key != (edge.source, edge.target):
                raise GraphError(f"edge stored under wrong key {key}")
            if edge.source not in self._vertices or edge.target not in self._vertices:
                raise GraphError(f"edge {key} references a missing vertex")
        out_count = sum(len(edges) for edges in self._out.values())
        in_count = sum(len(edges) for edges in self._in.values())
        if out_count != len(self._edges) or in_count != len(self._edges):
            raise GraphError("adjacency lists are out of sync with the edge map")

    def to_networkx(self):
        """Export to a :class:`networkx.DiGraph` (used as a test oracle)."""
        import networkx as nx

        graph = nx.DiGraph()
        for v in self._vertices.values():
            graph.add_node(v.id, x=v.x, y=v.y)
        for e in self._edges.values():
            graph.add_edge(e.source, e.target, length=e.length, speed=e.speed,
                           travel_time=e.travel_time, category=e.category.value)
        return graph

    def __repr__(self) -> str:
        return (f"RoadNetwork(name={self.name!r}, vertices={self.num_vertices}, "
                f"edges={self.num_edges})")

    def __contains__(self, vertex_id: int) -> bool:
        return vertex_id in self._vertices
