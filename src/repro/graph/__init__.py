"""Spatial-network substrate: road graphs, routing, path enumeration."""

from repro.graph.builders import grid_network, north_jutland_like, ring_radial_network
from repro.graph.diversified import DiversifiedResult, diversified_top_k
from repro.graph.io import (
    load_network_csv,
    load_network_json,
    network_from_dict,
    network_to_dict,
    save_network_csv,
    save_network_json,
)
from repro.graph.ksp import yen_k_shortest_paths, yen_path_generator
from repro.graph.network import Edge, RoadCategory, RoadNetwork, Vertex
from repro.graph.osm import load_osm_xml, save_osm_xml
from repro.graph.path import Path
from repro.graph.shortest_path import (
    astar,
    bidirectional_dijkstra,
    dijkstra,
    euclidean_heuristic,
    length_cost,
    shortest_path,
    shortest_path_cost,
    travel_time_cost,
    travel_time_heuristic,
)
from repro.graph.similarity import (
    get_similarity,
    jaccard,
    overlap_ratio,
    time_weighted_jaccard,
    vertex_jaccard,
    weighted_jaccard,
)

__all__ = [
    "RoadNetwork",
    "RoadCategory",
    "Vertex",
    "Edge",
    "Path",
    "grid_network",
    "ring_radial_network",
    "north_jutland_like",
    "dijkstra",
    "shortest_path",
    "shortest_path_cost",
    "bidirectional_dijkstra",
    "astar",
    "length_cost",
    "travel_time_cost",
    "euclidean_heuristic",
    "travel_time_heuristic",
    "yen_k_shortest_paths",
    "yen_path_generator",
    "diversified_top_k",
    "DiversifiedResult",
    "weighted_jaccard",
    "time_weighted_jaccard",
    "jaccard",
    "vertex_jaccard",
    "overlap_ratio",
    "get_similarity",
    "network_to_dict",
    "network_from_dict",
    "save_network_json",
    "load_network_json",
    "save_network_csv",
    "load_network_csv",
    "load_osm_xml",
    "save_osm_xml",
]
