"""Spatial-network substrate: road graphs, routing, path enumeration.

Routing backends
----------------
Two interchangeable routing implementations serve the hot paths
(``shortest_path``, Yen / diversified candidate enumeration, serving):

* **dict** — the reference implementation in ``shortest_path.py`` /
  ``ksp.py``, operating directly on :class:`RoadNetwork`'s
  dict-of-dataclasses adjacency.  Simple, validated against networkx,
  and the parity oracle for the kernel.
* **csr** *(default)* — :class:`CSRGraph` in ``csr.py``: the network
  flattened into CSR arrays with preallocated, generation-stamped
  search buffers, plus ALT (landmark) lower bounds for A* and Yen spur
  searches.  Roughly an order of magnitude faster on city-scale graphs
  (see ``benchmarks/bench_routing.py``).

The kernel is built lazily on first routing call via
:func:`csr_for` and cached per network.  Staleness is handled through
:attr:`RoadNetwork.fingerprint` — a content hash recomputed after any
mutation — so adding or removing edges transparently rebuilds the
kernel (and invalidates serving's candidate cache) on the next query.
Results cross the backend boundary as plain vertex-id sequences and are
re-wrapped in :class:`Path` objects, so downstream code is
backend-agnostic.

To force the reference backend, set ``REPRO_ROUTING_BACKEND=dict`` in
the environment, call :func:`set_routing_backend("dict")
<set_routing_backend>`, or use the :func:`use_routing_backend` context
manager; individual calls also accept ``backend="dict"``.
"""

from repro.graph.builders import grid_network, north_jutland_like, ring_radial_network
from repro.graph.csr import (
    CSRGraph,
    csr_for,
    csr_if_built,
    get_routing_backend,
    set_routing_backend,
    use_routing_backend,
)
from repro.graph.diversified import DiversifiedResult, diversified_top_k
from repro.graph.io import (
    load_network_csv,
    load_network_json,
    network_from_dict,
    network_to_dict,
    save_network_csv,
    save_network_json,
)
from repro.graph.ksp import yen_k_shortest_paths, yen_path_generator
from repro.graph.network import Edge, RoadCategory, RoadNetwork, Vertex
from repro.graph.osm import load_osm_xml, save_osm_xml
from repro.graph.partition import (
    GraphPartition,
    RegionShard,
    bfs_partition,
    grid_partition,
    partition_network,
    voronoi_partition,
)
from repro.graph.path import Path
from repro.graph.shortest_path import (
    astar,
    bidirectional_dijkstra,
    dijkstra,
    euclidean_heuristic,
    length_cost,
    shortest_path,
    shortest_path_cost,
    travel_time_cost,
    travel_time_heuristic,
)
from repro.graph.similarity import (
    get_similarity,
    jaccard,
    overlap_ratio,
    time_weighted_jaccard,
    vertex_jaccard,
    weighted_jaccard,
)

__all__ = [
    "RoadNetwork",
    "RoadCategory",
    "Vertex",
    "Edge",
    "Path",
    "GraphPartition",
    "RegionShard",
    "bfs_partition",
    "grid_partition",
    "partition_network",
    "voronoi_partition",
    "CSRGraph",
    "csr_for",
    "csr_if_built",
    "get_routing_backend",
    "set_routing_backend",
    "use_routing_backend",
    "grid_network",
    "ring_radial_network",
    "north_jutland_like",
    "dijkstra",
    "shortest_path",
    "shortest_path_cost",
    "bidirectional_dijkstra",
    "astar",
    "length_cost",
    "travel_time_cost",
    "euclidean_heuristic",
    "travel_time_heuristic",
    "yen_k_shortest_paths",
    "yen_path_generator",
    "diversified_top_k",
    "DiversifiedResult",
    "weighted_jaccard",
    "time_weighted_jaccard",
    "jaccard",
    "vertex_jaccard",
    "overlap_ratio",
    "get_similarity",
    "network_to_dict",
    "network_from_dict",
    "save_network_json",
    "load_network_json",
    "save_network_csv",
    "load_network_csv",
    "load_osm_xml",
    "save_osm_xml",
]
