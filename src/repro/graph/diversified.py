"""Diversified top-k shortest paths — the D-TkDI candidate strategy.

The paper's key training-data insight is that plain top-k shortest paths
(TkDI) are near-duplicates of each other: they differ by a street or
two, so a regression model trained on them sees almost no variation in
the ground-truth similarity scores.  The *diversified* strategy walks
the Yen enumeration in cost order and keeps a path only if its
similarity to every already-kept path is below a threshold ξ, producing
a compact set of genuinely different route options (Table 1/2 of the
poster show it improves every metric).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph import csr
from repro.graph.ksp import yen_path_generator
from repro.graph.network import RoadNetwork
from repro.graph.path import Path
from repro.graph.shortest_path import (
    CostFunction,
    length_cost,
    travel_time_cost,
)
from repro.graph.similarity import (
    SimilarityFunction,
    jaccard,
    time_weighted_jaccard,
    vertex_jaccard,
    weighted_jaccard,
)

__all__ = ["DiversifiedResult", "diversified_top_k"]

#: Built-in similarity functions with a kernel-native equivalent; the
#: value names the per-edge weighting the CSR-side filter applies.
#: Custom similarity callables are absent and fall back to the
#: Path-based filter.
_KERNEL_SIMILARITY: dict[SimilarityFunction, str] = {
    weighted_jaccard: "length",
    time_weighted_jaccard: "travel_time",
    jaccard: "count",
    vertex_jaccard: "vertex",
}

#: Upper bound on Yen paths examined per query before giving up on
#: filling all k diverse slots.  Guards against pathological queries
#: where nearly identical paths dominate the enumeration.
DEFAULT_EXAMINE_LIMIT = 500


@dataclass(frozen=True)
class DiversifiedResult:
    """Outcome of a diversified top-k query.

    ``paths`` holds the accepted diverse paths in cost order (the first
    is always the shortest path).  ``examined`` counts how many Yen
    paths were generated to find them — the cost the benchmarks report.
    ``exhausted`` is True when the enumeration ran out (or hit the
    examine limit) before ``k`` diverse paths were found.
    """

    paths: tuple[Path, ...]
    examined: int
    exhausted: bool

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self):
        return iter(self.paths)


def diversified_top_k(
    network: RoadNetwork,
    source: int,
    target: int,
    k: int,
    threshold: float = 0.6,
    cost: CostFunction = length_cost,
    similarity: SimilarityFunction = weighted_jaccard,
    examine_limit: int = DEFAULT_EXAMINE_LIMIT,
    backend: str | None = None,
) -> DiversifiedResult:
    """Greedy diversified top-k selection over the Yen enumeration.

    A path is accepted when ``similarity(path, kept) <= threshold`` for
    every previously kept path.  ``threshold = 1.0`` degenerates to plain
    top-k (every path accepted); small thresholds demand strong
    diversity and may exhaust the enumeration early.

    The underlying Yen enumeration runs on the selected routing backend
    (the CSR kernel by default); similarity filtering always operates on
    the :class:`Path` objects produced at the backend boundary.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    if examine_limit < k:
        raise ValueError(
            f"examine_limit ({examine_limit}) must be at least k ({k})"
        )

    resolved = csr.resolve_backend(backend)
    mode = _KERNEL_SIMILARITY.get(similarity)
    if resolved != "dict" and mode is not None:
        return _kernel_diversified(network, source, target, k, threshold,
                                   cost, mode, examine_limit, resolved)

    kept: list[Path] = []
    examined = 0
    exhausted = True
    for path in yen_path_generator(network, source, target, cost,
                                   max_paths=examine_limit, backend=backend):
        examined += 1
        if all(similarity(path, existing) <= threshold for existing in kept):
            kept.append(path)
            if len(kept) == k:
                exhausted = False
                break
    return DiversifiedResult(paths=tuple(kept), examined=examined,
                             exhausted=exhausted)


def _kernel_diversified(
    network: RoadNetwork,
    source: int,
    target: int,
    k: int,
    threshold: float,
    cost: CostFunction | None,
    mode: str,
    examine_limit: int,
    resolved: str,
) -> DiversifiedResult:
    """Diversified selection with the similarity filter on CSR arrays.

    Rejected candidates dominate diversified enumeration (a tight
    threshold examines hundreds of Yen paths to keep a handful), and
    building a :class:`Path` per examined candidate — vertex/edge
    validation, length accumulation — costs more than the similarity
    check itself.  Here candidates stay ``(vertex ids, edge positions)``
    while being filtered, similarity runs over CSR edge-position sets
    with the kernel's weight arrays, and only *accepted* paths are
    materialised, in cost order, at the end.  Results match the
    Path-based filter exactly up to float summation order.
    """
    kernel = csr.csr_for(network)
    p2p = kernel.ch_p2p(cost) if resolved == "ch" else None
    index = kernel._index
    edge_index = kernel._edge_index
    if mode == "length":
        weights = kernel.edge_weights(length_cost)
    elif mode == "travel_time":
        weights = kernel.edge_weights(travel_time_cost)
    else:  # "count" (unweighted edges) and "vertex" need no weights
        weights = None

    kept_ids: list[tuple[int, ...]] = []
    kept_sigs: list[frozenset[int]] = []
    examined = 0
    exhausted = True
    for vertex_ids, _ in kernel.yen_ids(source, target, cost,
                                        max_paths=examine_limit, p2p=p2p):
        examined += 1
        if mode == "vertex":
            sig = frozenset(vertex_ids)
        else:
            idxs = [index[v] for v in vertex_ids]
            sig = frozenset(edge_index(u, v)
                            for u, v in zip(idxs, idxs[1:]))
        accept = True
        for other in kept_sigs:
            shared = sig & other
            if weights is None:
                union = len(sig) + len(other) - len(shared)
                similarity_value = len(shared) / union if union else 0.0
            else:
                union_weight = 0.0
                shared_weight = 0.0
                for position in sig | other:
                    weight = weights[position]
                    union_weight += weight
                    if position in shared:
                        shared_weight += weight
                similarity_value = (shared_weight / union_weight
                                    if union_weight else 0.0)
            if similarity_value > threshold:
                accept = False
                break
        if accept:
            kept_sigs.append(sig)
            kept_ids.append(tuple(vertex_ids))
            if len(kept_ids) == k:
                exhausted = False
                break
    paths = tuple(Path(network, vertices) for vertices in kept_ids)
    return DiversifiedResult(paths=paths, examined=examined,
                             exhausted=exhausted)
