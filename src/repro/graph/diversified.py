"""Diversified top-k shortest paths — the D-TkDI candidate strategy.

The paper's key training-data insight is that plain top-k shortest paths
(TkDI) are near-duplicates of each other: they differ by a street or
two, so a regression model trained on them sees almost no variation in
the ground-truth similarity scores.  The *diversified* strategy walks
the Yen enumeration in cost order and keeps a path only if its
similarity to every already-kept path is below a threshold ξ, producing
a compact set of genuinely different route options (Table 1/2 of the
poster show it improves every metric).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.ksp import yen_path_generator
from repro.graph.network import RoadNetwork
from repro.graph.path import Path
from repro.graph.shortest_path import CostFunction, length_cost
from repro.graph.similarity import SimilarityFunction, weighted_jaccard

__all__ = ["DiversifiedResult", "diversified_top_k"]

#: Upper bound on Yen paths examined per query before giving up on
#: filling all k diverse slots.  Guards against pathological queries
#: where nearly identical paths dominate the enumeration.
DEFAULT_EXAMINE_LIMIT = 500


@dataclass(frozen=True)
class DiversifiedResult:
    """Outcome of a diversified top-k query.

    ``paths`` holds the accepted diverse paths in cost order (the first
    is always the shortest path).  ``examined`` counts how many Yen
    paths were generated to find them — the cost the benchmarks report.
    ``exhausted`` is True when the enumeration ran out (or hit the
    examine limit) before ``k`` diverse paths were found.
    """

    paths: tuple[Path, ...]
    examined: int
    exhausted: bool

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self):
        return iter(self.paths)


def diversified_top_k(
    network: RoadNetwork,
    source: int,
    target: int,
    k: int,
    threshold: float = 0.6,
    cost: CostFunction = length_cost,
    similarity: SimilarityFunction = weighted_jaccard,
    examine_limit: int = DEFAULT_EXAMINE_LIMIT,
    backend: str | None = None,
) -> DiversifiedResult:
    """Greedy diversified top-k selection over the Yen enumeration.

    A path is accepted when ``similarity(path, kept) <= threshold`` for
    every previously kept path.  ``threshold = 1.0`` degenerates to plain
    top-k (every path accepted); small thresholds demand strong
    diversity and may exhaust the enumeration early.

    The underlying Yen enumeration runs on the selected routing backend
    (the CSR kernel by default); similarity filtering always operates on
    the :class:`Path` objects produced at the backend boundary.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    if examine_limit < k:
        raise ValueError(
            f"examine_limit ({examine_limit}) must be at least k ({k})"
        )

    kept: list[Path] = []
    examined = 0
    exhausted = True
    for path in yen_path_generator(network, source, target, cost,
                                   max_paths=examine_limit, backend=backend):
        examined += 1
        if all(similarity(path, existing) <= threshold for existing in kept):
            kept.append(path)
            if len(kept) == k:
                exhausted = False
                break
    return DiversifiedResult(paths=tuple(kept), examined=examined,
                             exhausted=exhausted)
