"""Contraction-hierarchy preprocessing and queries over the CSR arrays.

ALT cuts the Yen spur searches roughly threefold, but every
point-to-point query still pays a graph-proportional Dijkstra.  A
*contraction hierarchy* (Geisberger et al., 2008) spends that cost once
per ``(graph fingerprint, weight key)`` instead: vertices are contracted
in importance order, shortcut arcs preserve all shortest-path distances
among the not-yet-contracted remainder, and a query then runs two tiny
Dijkstras that only ever relax arcs *upward* in the contraction order.
On city-scale graphs the upward search spaces are near-constant, which
is what makes CH the third routing lane behind the backend seam
(``REPRO_ROUTING_BACKEND=ch``).

The implementation follows the classic recipe, sized for the pure-Python
kernel:

* **Ordering** — edge-difference plus deleted-neighbours, maintained
  lazily: pop the cheapest vertex, recompute its priority, and contract
  only if it still beats the runner-up.
* **Shortcuts** — a bounded *witness search* (Dijkstra from each
  in-neighbour, capped by :data:`WITNESS_SETTLE_LIMIT` settled vertices
  and the shortcut cost) decides whether ``u -> v -> w`` needs a
  shortcut.  An exhausted witness search conservatively inserts the
  shortcut: extra arcs cost memory, never correctness.
* **Query** — bidirectional Dijkstra over the upward arcs of the
  forward graph and the upward arcs of the reverse graph; the best
  meeting vertex gives the distance, and shortcut unpacking (each
  shortcut remembers its middle vertex) restores the original-edge
  path, so :class:`~repro.graph.path.Path` objects built from it are
  indistinguishable from the Dijkstra reference's.

Hierarchies are value objects: :class:`CSRGraph` owns them (keyed by
weight key, invalidated with the kernel on fingerprint change or custom
-cost eviction) and exports built ones through its shared-memory
payload so spawn workers attach instead of rebuilding.
"""

from __future__ import annotations

import time
from heapq import heapify, heappop, heappush
from math import inf

import numpy as np

__all__ = ["ContractionHierarchy", "WITNESS_SETTLE_LIMIT"]

#: Settled-vertex cap per witness search during contraction.  Small caps
#: trade a few redundant shortcuts for much faster preprocessing; the
#: hierarchy stays exact either way.
WITNESS_SETTLE_LIMIT = 64


class ContractionHierarchy:
    """An exact shortcut hierarchy for one ``(CSR graph, weight)`` pair.

    Operates purely in CSR *index* space — the owning
    :class:`~repro.graph.csr.CSRGraph` translates vertex ids at its
    boundary.  Queries are thread-safe under the owner's kernel lock
    (scratch buffers are per-hierarchy and reused across calls via
    generation stamps, mirroring the kernel's own search buffers).
    """

    def __init__(self, num_vertices: int, rank: list[int],
                 fwd: list[list[tuple[int, float]]],
                 bwd: list[list[tuple[int, float]]],
                 middle: dict[tuple[int, int], int],
                 num_shortcuts: int, build_ms: float) -> None:
        self.num_vertices = num_vertices
        #: Contraction order; higher rank = more important vertex.
        self.rank = rank
        #: Upward adjacency of the forward graph: ``fwd[u]`` holds
        #: ``(v, w)`` arcs with ``rank[v] > rank[u]``.
        self._fwd = fwd
        #: Upward adjacency of the reverse graph: ``bwd[x]`` holds
        #: ``(w, weight)`` for arcs ``w -> x`` with ``rank[w] > rank[x]``.
        self._bwd = bwd
        #: Shortcut arc ``(u, v)`` -> contracted middle vertex; original
        #: arcs are absent, which is what terminates unpacking.
        self._middle = middle
        #: Memoised expansions: shortcut ``(u, v)`` -> the original
        #: vertices strictly after ``u`` up to and including ``v``.
        #: High-level shortcuts recur across most queries, so unpacking
        #: amortises to an ``extend`` per hierarchy arc.
        self._expanded: dict[tuple[int, int], list[int]] = {}
        self.num_shortcuts = num_shortcuts
        self.build_ms = build_ms
        n = num_vertices
        # Query scratch, generation-stamped like CSRGraph's buffers.
        self._dist_f = [inf] * n
        self._dist_b = [inf] * n
        self._parent_f = [-1] * n
        self._parent_b = [-1] * n
        self._seen_f = [0] * n
        self._seen_b = [0] * n
        self._done_f = [0] * n
        self._done_b = [0] * n
        self._gen = 0
        self.profile = {"queries": 0, "heap_pops": 0, "settled": 0,
                        "unpacked_arcs": 0}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, indptr: list[int], indices: list[int],
              weights: list[float], num_vertices: int,
              witness_limit: int = WITNESS_SETTLE_LIMIT,
              ) -> "ContractionHierarchy":
        """Contract every vertex of the graph given as flat CSR lists.

        Parallel arcs are collapsed to their minimum weight up front
        (the road networks here have none, but shortcut insertion can
        create them transiently); correctness only ever needs the
        cheapest arc per ``(u, v)``.
        """
        started = time.perf_counter()
        n = num_vertices
        # Mutable remainder graph as dict adjacency: contraction removes
        # vertices and inserts shortcuts, which CSR arrays cannot absorb.
        fwd: list[dict[int, float]] = [{} for _ in range(n)]
        bwd: list[dict[int, float]] = [{} for _ in range(n)]
        for u in range(n):
            for j in range(indptr[u], indptr[u + 1]):
                v = indices[j]
                w = weights[j]
                if u == v:
                    continue  # self-loops never lie on a shortest path
                if v not in fwd[u] or w < fwd[u][v]:
                    fwd[u][v] = w
                    bwd[v][u] = w
        middle: dict[tuple[int, int], int] = {}
        contracted = [False] * n
        deleted_neighbours = [0] * n
        rank = [0] * n

        def simulate(v: int, limit: int) -> list[tuple[int, int, float]]:
            """Shortcuts contracting ``v`` would insert (bounded witness
            searches over the current remainder graph, excluding ``v``)."""
            shortcuts: list[tuple[int, int, float]] = []
            outs = [(w, wt) for w, wt in fwd[v].items() if not contracted[w]]
            if not outs:
                return shortcuts
            max_out = max(wt for _, wt in outs)
            for u, w_in in bwd[v].items():
                if contracted[u]:
                    continue
                # One witness Dijkstra from u covers every (u, v, w) pair:
                # stop once all out-neighbours are settled, the cost
                # bound is exceeded, or the settle budget runs out.
                bound = w_in + max_out
                dist = {u: 0.0}
                heap = [(0.0, u)]
                settled: set[int] = set()
                budget = limit
                targets = {w for w, _ in outs if w != u}
                while heap and budget > 0 and targets:
                    d, x = heappop(heap)
                    if x in settled:
                        continue
                    if d > bound:
                        break
                    settled.add(x)
                    targets.discard(x)
                    budget -= 1
                    for y, wt in fwd[x].items():
                        if y == v or contracted[y] or y in settled:
                            continue
                        nd = d + wt
                        if nd < dist.get(y, inf) and nd <= bound:
                            dist[y] = nd
                            heappush(heap, (nd, y))
                for w, w_out in outs:
                    if w == u:
                        continue
                    via = w_in + w_out
                    if dist.get(w, inf) <= via:
                        continue  # witness path is at least as good
                    shortcuts.append((u, w, via))
            return shortcuts

        def priority(v: int) -> tuple[float, list[tuple[int, int, float]]]:
            shortcuts = simulate(v, witness_limit)
            degree = (sum(1 for u in bwd[v] if not contracted[u])
                      + sum(1 for w in fwd[v] if not contracted[w]))
            return (2.0 * (len(shortcuts) - degree)
                    + deleted_neighbours[v], shortcuts)

        queue = [(priority(v)[0], v) for v in range(n)]
        heapify(queue)
        order = 0
        num_shortcuts = 0
        while queue:
            _, v = heappop(queue)
            if contracted[v]:
                continue
            # Lazy update: the neighbourhood may have changed since this
            # entry was pushed; re-evaluate and defer if it lost its spot.
            current, shortcuts = priority(v)
            if queue and current > queue[0][0]:
                heappush(queue, (current, v))
                continue
            for u, w, via in shortcuts:
                if w not in fwd[u] or via < fwd[u][w]:
                    fwd[u][w] = via
                    bwd[w][u] = via
                    middle[(u, w)] = v
                    num_shortcuts += 1
            contracted[v] = True
            rank[v] = order
            order += 1
            for u in bwd[v]:
                if not contracted[u]:
                    deleted_neighbours[u] += 1
            for w in fwd[v]:
                if not contracted[w]:
                    deleted_neighbours[w] += 1

        # Freeze the upward search graphs.  fwd/bwd now hold the full
        # arc set (originals + shortcuts); only upward arcs survive —
        # downward arcs are exactly the upward arcs of the other side.
        up_f: list[list[tuple[int, float]]] = [
            sorted((v, w) for v, w in fwd[u].items() if rank[v] > rank[u])
            for u in range(n)
        ]
        up_b: list[list[tuple[int, float]]] = [
            sorted((u, w) for u, w in bwd[x].items() if rank[u] > rank[x])
            for x in range(n)
        ]
        build_ms = (time.perf_counter() - started) * 1000.0
        return cls(n, rank, up_f, up_b, middle, num_shortcuts, build_ms)

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query(self, source: int, target: int) -> tuple[list[int], float] | None:
        """Shortest ``source -> target`` path as CSR indices, or ``None``.

        Interleaves the two upward Dijkstras (always advancing the
        smaller frontier), terminates each direction once its heap
        minimum can no longer beat the best meeting found, and prunes
        with *stall-on-demand*: a vertex whose upward distance is
        dominated through a higher-ranked neighbour cannot lie on a
        shortest up-down path and is not expanded.  Unpacks every
        shortcut on the winning up-down path.  The returned cost is the
        hierarchy-arc sum; callers wanting bitwise parity with plain
        Dijkstra re-sum the unpacked original arcs in path order.
        """
        self._gen += 1
        gen = self._gen
        dist_f, dist_b = self._dist_f, self._dist_b
        parent_f, parent_b = self._parent_f, self._parent_b
        seen_f, seen_b = self._seen_f, self._seen_b
        done_f, done_b = self._done_f, self._done_b
        fwd, bwd = self._fwd, self._bwd
        push, pop = heappush, heappop
        pops = settled = 0

        dist_f[source] = 0.0
        seen_f[source] = gen
        parent_f[source] = -1
        dist_b[target] = 0.0
        seen_b[target] = gen
        parent_b[target] = -1
        heap_f = [(0.0, source)]
        heap_b = [(0.0, target)]
        best = inf
        meeting = -1

        while heap_f or heap_b:
            if heap_f and heap_f[0][0] >= best:
                heap_f = []
            if heap_b and heap_b[0][0] >= best:
                heap_b = []
            if heap_f and (not heap_b or heap_f[0][0] <= heap_b[0][0]):
                d, u = pop(heap_f)
                pops += 1
                if done_f[u] == gen:
                    continue
                done_f[u] = gen
                settled += 1
                # A meeting through a tentative backward distance is a
                # real path, so it may tighten `best`; the exact minimum
                # is guaranteed once both directions settle or prune.
                if seen_b[u] == gen:
                    total = d + dist_b[u]
                    if total < best:
                        best = total
                        meeting = u
                # Stall-on-demand: a shorter way into u *down* from a
                # higher-ranked, already-reached vertex proves u's
                # current label is not an upward-shortest prefix.
                stalled = False
                for w, wt in bwd[u]:
                    if seen_f[w] == gen and dist_f[w] + wt < d:
                        stalled = True
                        break
                if stalled:
                    continue
                for v, w in fwd[u]:
                    nd = d + w
                    # Upward labels only grow, so a label already at or
                    # past `best` can never improve any later meeting.
                    if nd >= best:
                        continue
                    if seen_f[v] != gen or nd < dist_f[v]:
                        dist_f[v] = nd
                        seen_f[v] = gen
                        parent_f[v] = u
                        push(heap_f, (nd, v))
            elif heap_b:
                d, u = pop(heap_b)
                pops += 1
                if done_b[u] == gen:
                    continue
                done_b[u] = gen
                settled += 1
                if seen_f[u] == gen:
                    total = dist_f[u] + d
                    if total < best:
                        best = total
                        meeting = u
                stalled = False
                for w, wt in fwd[u]:
                    if seen_b[w] == gen and dist_b[w] + wt < d:
                        stalled = True
                        break
                if stalled:
                    continue
                for v, w in bwd[u]:
                    nd = d + w
                    if nd >= best:
                        continue
                    if seen_b[v] != gen or nd < dist_b[v]:
                        dist_b[v] = nd
                        seen_b[v] = gen
                        parent_b[v] = u
                        push(heap_b, (nd, v))
        profile = self.profile
        profile["queries"] += 1
        profile["heap_pops"] += pops
        profile["settled"] += settled
        if meeting < 0:
            return None

        up_path: list[int] = [meeting]
        node = meeting
        while parent_f[node] != -1:
            node = parent_f[node]
            up_path.append(node)
        up_path.reverse()
        node = meeting
        while parent_b[node] != -1:
            node = parent_b[node]
            up_path.append(node)

        path = [up_path[0]]
        unpacked = 0
        for u, v in zip(up_path, up_path[1:]):
            unpacked += self._unpack(u, v, path)
        profile["unpacked_arcs"] += unpacked
        return path, best

    def _unpack(self, u: int, v: int, out: list[int]) -> int:
        """Expand arc ``(u, v)`` into original arcs appended to ``out``
        (which already ends with ``u``); returns arcs appended."""
        middle = self._middle
        m = middle.get((u, v))
        if m is None:
            out.append(v)
            return 1
        expanded = self._expanded
        cached = expanded.get((u, v))
        if cached is None:
            cached = []
            stack = [(u, v)]
            while stack:
                a, b = stack.pop()
                mid = middle.get((a, b))
                if mid is None:
                    cached.append(b)
                else:
                    # LIFO order: push (m, b) first so (a, m) unpacks first.
                    stack.append((mid, b))
                    stack.append((a, mid))
            expanded[(u, v)] = cached
        out.extend(cached)
        return len(cached)

    def cost(self, source: int, target: int) -> float:
        """Hierarchy distance only (``inf`` when unreachable)."""
        result = self.query(source, target)
        return result[1] if result is not None else inf

    # ------------------------------------------------------------------
    # Shared-memory payload
    # ------------------------------------------------------------------
    def shared_arrays(self) -> dict[str, np.ndarray]:
        """Flatten the hierarchy into dense arrays for a shm segment."""
        def _flatten(adj: list[list[tuple[int, float]]]):
            indptr = [0]
            indices: list[int] = []
            weights: list[float] = []
            for arcs in adj:
                for v, w in arcs:
                    indices.append(v)
                    weights.append(w)
                indptr.append(len(indices))
            return (np.asarray(indptr, dtype=np.int64),
                    np.asarray(indices, dtype=np.int64),
                    np.asarray(weights, dtype=np.float64))

        f_indptr, f_indices, f_weights = _flatten(self._fwd)
        b_indptr, b_indices, b_weights = _flatten(self._bwd)
        shortcuts = np.asarray(
            [(u, v, m) for (u, v), m in sorted(self._middle.items())],
            dtype=np.int64).reshape(-1, 3)
        return {
            "rank": np.asarray(self.rank, dtype=np.int64),
            "fwd_indptr": f_indptr, "fwd_indices": f_indices,
            "fwd_weights": f_weights,
            "bwd_indptr": b_indptr, "bwd_indices": b_indices,
            "bwd_weights": b_weights,
            "shortcuts": shortcuts,
        }

    @classmethod
    def from_shared_arrays(cls, arrays: dict[str, np.ndarray],
                           build_ms: float = 0.0) -> "ContractionHierarchy":
        """Rebuild a hierarchy from :meth:`shared_arrays` output.

        Adjacency is materialised into plain lists once per process (the
        query loop wants scalar tuples, not array indexing); the source
        arrays themselves may stay zero-copy views into a segment.
        """
        rank = [int(r) for r in arrays["rank"]]
        n = len(rank)

        def _unflatten(indptr, indices, weights):
            ptr = indptr.tolist()
            idx = indices.tolist()
            wts = weights.tolist()
            return [list(zip(idx[ptr[u]:ptr[u + 1]],
                             wts[ptr[u]:ptr[u + 1]]))
                    for u in range(n)]

        fwd = _unflatten(arrays["fwd_indptr"], arrays["fwd_indices"],
                         arrays["fwd_weights"])
        bwd = _unflatten(arrays["bwd_indptr"], arrays["bwd_indices"],
                         arrays["bwd_weights"])
        middle = {(int(u), int(v)): int(m)
                  for u, v, m in arrays["shortcuts"]}
        return cls(n, rank, fwd, bwd, middle, len(middle), build_ms)

    def __repr__(self) -> str:
        return (f"ContractionHierarchy(vertices={self.num_vertices}, "
                f"shortcuts={self.num_shortcuts}, "
                f"build_ms={self.build_ms:.1f})")
