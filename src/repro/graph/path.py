"""Paths over a road network.

A :class:`Path` is an immutable vertex sequence validated against its
network: every consecutive pair must be an existing directed edge.  The
class exposes the quantities PathRank and the training-data generator
need — length, travel time, the weighted edge set used by the weighted
Jaccard similarity — plus structural helpers (slicing, concatenation,
loop detection).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from functools import cached_property

from repro.errors import InvalidPathError
from repro.graph.network import Edge, RoadNetwork

__all__ = ["Path"]


class Path:
    """An immutable, validated vertex path in a :class:`RoadNetwork`."""

    __slots__ = ("_network", "_vertices", "__dict__")

    def __init__(self, network: RoadNetwork, vertices: Sequence[int]) -> None:
        vertex_tuple = tuple(int(v) for v in vertices)
        if len(vertex_tuple) < 2:
            raise InvalidPathError(
                f"a path needs at least two vertices, got {len(vertex_tuple)}"
            )
        for u, v in zip(vertex_tuple, vertex_tuple[1:]):
            if not network.has_edge(u, v):
                raise InvalidPathError(f"missing edge ({u} -> {v}) in path {vertex_tuple}")
        self._network = network
        self._vertices = vertex_tuple

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def network(self) -> RoadNetwork:
        return self._network

    @property
    def vertices(self) -> tuple[int, ...]:
        return self._vertices

    @property
    def source(self) -> int:
        return self._vertices[0]

    @property
    def target(self) -> int:
        return self._vertices[-1]

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return len(self._vertices) - 1

    @cached_property
    def edges(self) -> tuple[Edge, ...]:
        return tuple(
            self._network.edge(u, v) for u, v in zip(self._vertices, self._vertices[1:])
        )

    @cached_property
    def edge_keys(self) -> tuple[tuple[int, int], ...]:
        return tuple(zip(self._vertices, self._vertices[1:]))

    @cached_property
    def edge_set(self) -> frozenset[tuple[int, int]]:
        return frozenset(self.edge_keys)

    @cached_property
    def vertex_set(self) -> frozenset[int]:
        return frozenset(self._vertices)

    def is_simple(self) -> bool:
        """True when no vertex repeats (loopless)."""
        return len(self.vertex_set) == len(self._vertices)

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------
    @cached_property
    def length(self) -> float:
        """Total length in metres."""
        return sum(edge.length for edge in self.edges)

    @cached_property
    def travel_time(self) -> float:
        """Total free-flow travel time in seconds."""
        return sum(edge.travel_time for edge in self.edges)

    def cost(self, cost_fn) -> float:
        """Total cost under an arbitrary edge-cost function."""
        return sum(cost_fn(edge) for edge in self.edges)

    def category_length_fractions(self) -> dict[str, float]:
        """Share of path length per road category (feature for baselines)."""
        totals: dict[str, float] = {}
        for edge in self.edges:
            totals[edge.category.value] = totals.get(edge.category.value, 0.0) + edge.length
        total = self.length
        return {category: value / total for category, value in totals.items()}

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------
    def contains_edge(self, source: int, target: int) -> bool:
        return (source, target) in self.edge_set

    def shared_edges(self, other: "Path") -> frozenset[tuple[int, int]]:
        return self.edge_set & other.edge_set

    def same_endpoints(self, other: "Path") -> bool:
        return self.source == other.source and self.target == other.target

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def prefix(self, num_vertices: int) -> "Path":
        """The sub-path over the first ``num_vertices`` vertices."""
        if not 2 <= num_vertices <= self.num_vertices:
            raise InvalidPathError(
                f"prefix length {num_vertices} out of range [2, {self.num_vertices}]"
            )
        return Path(self._network, self._vertices[:num_vertices])

    def suffix_from(self, index: int) -> "Path":
        """The sub-path starting at vertex position ``index``."""
        if not 0 <= index <= self.num_vertices - 2:
            raise InvalidPathError(
                f"suffix index {index} out of range [0, {self.num_vertices - 2}]"
            )
        return Path(self._network, self._vertices[index:])

    def concat(self, other: "Path") -> "Path":
        """Join two paths where ``self`` ends at ``other``'s start."""
        if self.target != other.source:
            raise InvalidPathError(
                f"cannot concatenate: {self.target} != {other.source}"
            )
        if self._network is not other._network:
            raise InvalidPathError("cannot concatenate paths over different networks")
        return Path(self._network, self._vertices + other._vertices[1:])

    # ------------------------------------------------------------------
    # Protocols
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[int]:
        return iter(self._vertices)

    def __len__(self) -> int:
        return len(self._vertices)

    def __getitem__(self, index: int) -> int:
        return self._vertices[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Path):
            return NotImplemented
        return self._vertices == other._vertices and self._network is other._network

    def __hash__(self) -> int:
        return hash(self._vertices)

    def __repr__(self) -> str:
        if self.num_vertices <= 6:
            inner = "->".join(str(v) for v in self._vertices)
        else:
            head = "->".join(str(v) for v in self._vertices[:3])
            inner = f"{head}->...->{self._vertices[-1]}"
        return f"Path({inner}, length={self.length:.0f}m)"
