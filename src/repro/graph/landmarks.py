"""ALT: A* with landmark lower bounds (Goldberg & Harrelson, 2005).

Candidate generation dominates PathRank's preprocessing cost (Yen runs
thousands of point-to-point searches), so the routing substrate offers a
stronger heuristic than straight-line distance: pre-computed distances
to a handful of *landmarks* give triangle-inequality lower bounds

    d(v, t) >= max_L ( d(v, L) - d(t, L),  d(L, t) - d(L, v) )

that remain admissible and consistent for the cost function they were
built with, typically dominating the euclidean bound on road networks
whose costs are not geometric (e.g. travel time).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import VertexNotFoundError
from repro.graph.network import RoadNetwork
from repro.graph.path import Path
from repro.graph.shortest_path import CostFunction, astar, dijkstra, length_cost
from repro.rng import RngLike, make_rng

__all__ = ["LandmarkIndex"]


class LandmarkIndex:
    """Pre-computed landmark distances for ALT queries on one network.

    Landmarks are chosen with the *farthest-point* heuristic: start from
    a random vertex, then repeatedly pick the vertex maximising the
    minimum shortest-path distance to the landmarks chosen so far —
    spreading them to the network's periphery, where they produce the
    tightest bounds.
    """

    def __init__(
        self,
        network: RoadNetwork,
        num_landmarks: int = 8,
        cost: CostFunction = length_cost,
        rng: RngLike = None,
    ) -> None:
        if num_landmarks < 1:
            raise ValueError(f"num_landmarks must be >= 1, got {num_landmarks}")
        if network.num_vertices < 2:
            raise ValueError("network too small for landmark selection")
        self.network = network
        self.cost = cost
        generator = make_rng(rng)
        ids = network.vertex_ids()
        num_landmarks = min(num_landmarks, len(ids))

        self.landmarks: list[int] = [int(ids[int(generator.integers(len(ids)))])]
        #: distance *from* each landmark to every vertex.
        self._from_landmark: dict[int, dict[int, float]] = {}
        #: distance from every vertex *to* each landmark (reverse search).
        self._to_landmark: dict[int, dict[int, float]] = {}

        self._compute_tables(self.landmarks[0])
        while len(self.landmarks) < num_landmarks:
            candidate = self._farthest_vertex(ids)
            if candidate is None:
                break
            self.landmarks.append(candidate)
            self._compute_tables(candidate)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _compute_tables(self, landmark: int) -> None:
        forward, _ = dijkstra(self.network, landmark, cost=self.cost)
        self._from_landmark[landmark] = forward
        # Distances *to* the landmark: run Dijkstra on reversed edges.
        self._to_landmark[landmark] = self._reverse_dijkstra(landmark)

    def _reverse_dijkstra(self, target: int) -> dict[int, float]:
        import heapq
        import math

        dist: dict[int, float] = {target: 0.0}
        settled: set[int] = set()
        heap: list[tuple[float, int]] = [(0.0, target)]
        while heap:
            d, node = heapq.heappop(heap)
            if node in settled:
                continue
            settled.add(node)
            for edge in self.network.in_edges(node):
                weight = self.cost(edge)
                candidate = d + weight
                if candidate < dist.get(edge.source, math.inf):
                    dist[edge.source] = candidate
                    heapq.heappush(heap, (candidate, edge.source))
        return dist

    def _farthest_vertex(self, ids: list[int]) -> int | None:
        best_vertex: int | None = None
        best_distance = -1.0
        for vertex in ids:
            if vertex in self.landmarks:
                continue
            distances = [
                self._from_landmark[l].get(vertex, float("inf"))
                for l in self.landmarks
            ]
            nearest = min(distances)
            if nearest != float("inf") and nearest > best_distance:
                best_distance = nearest
                best_vertex = int(vertex)
        return best_vertex

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def lower_bound(self, vertex: int, target: int) -> float:
        """Admissible lower bound on d(vertex, target) under ``cost``."""
        if not self.network.has_vertex(vertex):
            raise VertexNotFoundError(vertex)
        if not self.network.has_vertex(target):
            raise VertexNotFoundError(target)
        bound = 0.0
        for landmark in self.landmarks:
            to_l = self._to_landmark[landmark]
            from_l = self._from_landmark[landmark]
            if vertex in to_l and target in to_l:
                bound = max(bound, to_l[vertex] - to_l[target])
            if vertex in from_l and target in from_l:
                bound = max(bound, from_l[target] - from_l[vertex])
        return bound

    def heuristic(self, target: int) -> Callable[[int], float]:
        """An A*-compatible heuristic bound towards ``target``."""
        return lambda vertex: self.lower_bound(vertex, target)

    def shortest_path(self, source: int, target: int) -> Path:
        """A* guided by the landmark bounds (same cost as the index)."""
        return astar(self.network, source, target, cost=self.cost,
                     heuristic=self.heuristic(target))
