"""Top-k shortest loopless paths (Yen's algorithm).

Provides both the eager :func:`yen_k_shortest_paths` used by the TkDI
training-data strategy and the lazy :func:`yen_path_generator` that the
diversified strategy (D-TkDI) consumes: diversification may need to
examine far more than *k* paths before accepting *k* diverse ones, so it
pulls paths in non-decreasing cost order until satisfied.

Both functions dispatch through the routing-backend seam: by default the
enumeration runs on the CSR kernel (:mod:`repro.graph.csr`), with
ALT-guided spur searches on large networks, and kernel results are
converted back to :class:`Path` objects here at the boundary.  The
dict-based implementation below is the reference; force it with
``backend="dict"`` or ``REPRO_ROUTING_BACKEND=dict``.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Iterator

from repro.errors import NoPathError
from repro.graph import csr
from repro.graph.network import RoadNetwork
from repro.graph.path import Path
from repro.graph.shortest_path import CostFunction, length_cost, shortest_path

__all__ = ["yen_k_shortest_paths", "yen_path_generator"]


def yen_path_generator(
    network: RoadNetwork,
    source: int,
    target: int,
    cost: CostFunction = length_cost,
    max_paths: int | None = None,
    backend: str | None = None,
) -> Iterator[Path]:
    """Yield loopless paths from ``source`` to ``target`` in
    non-decreasing cost order (Yen, 1971).

    Raises :class:`NoPathError` immediately when no path exists at all;
    otherwise yields until the path space or ``max_paths`` is exhausted.
    """
    resolved = csr.resolve_backend(backend)
    if resolved != "dict":
        kernel = csr.csr_for(network)
        # Under the "ch" lane the initial (unbanned) search rides the
        # contraction hierarchy; spur searches carry bans, so they stay
        # on ALT A* inside yen_ids either way.
        p2p = kernel.ch_p2p(cost) if resolved == "ch" else None
        for vertices, _ in kernel.yen_ids(source, target, cost,
                                          max_paths=max_paths, p2p=p2p):
            yield Path(network, vertices)
        return

    first = shortest_path(network, source, target, cost, backend="dict")
    yield first

    accepted: list[Path] = [first]
    # Candidate heap entries: (cost, insertion order, path).  The counter
    # breaks ties deterministically without comparing Path objects.
    counter = itertools.count()
    candidates: list[tuple[float, int, Path]] = []
    seen: set[tuple[int, ...]] = {first.vertices}
    produced = 1

    while max_paths is None or produced < max_paths:
        previous = accepted[-1]
        prev_vertices = previous.vertices
        # Deviate from every prefix of the previously accepted path.
        for spur_index in range(previous.num_vertices - 1):
            spur_vertex = prev_vertices[spur_index]
            root_vertices = prev_vertices[: spur_index + 1]

            banned_edges: set[tuple[int, int]] = set()
            for path in accepted:
                if path.vertices[: spur_index + 1] == root_vertices:
                    banned_edges.add(
                        (path.vertices[spur_index], path.vertices[spur_index + 1])
                    )
            banned_vertices = set(root_vertices[:-1])

            try:
                spur = shortest_path(
                    network,
                    spur_vertex,
                    target,
                    cost,
                    banned_vertices=banned_vertices,
                    banned_edges=banned_edges,
                    backend="dict",
                )
            except NoPathError:
                continue

            total_vertices = root_vertices[:-1] + spur.vertices
            if total_vertices in seen:
                continue
            seen.add(total_vertices)
            candidate = Path(network, total_vertices)
            heapq.heappush(
                candidates, (candidate.cost(cost), next(counter), candidate)
            )

        if not candidates:
            return
        _, _, best = heapq.heappop(candidates)
        accepted.append(best)
        produced += 1
        yield best


def yen_k_shortest_paths(
    network: RoadNetwork,
    source: int,
    target: int,
    k: int,
    cost: CostFunction = length_cost,
    backend: str | None = None,
) -> list[Path]:
    """The ``k`` cheapest loopless paths, cheapest first.

    Returns fewer than ``k`` paths when the path space is smaller.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    generator = yen_path_generator(network, source, target, cost,
                                   max_paths=k, backend=backend)
    return list(generator)
