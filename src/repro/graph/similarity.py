"""Path-similarity measures.

The paper scores each candidate path against the driver's trajectory
path with the **weighted Jaccard similarity** over edges, weighting each
edge by its length: two paths that share most of their mileage are
similar even if they differ on short connector segments.  That score is
PathRank's regression target.  The unweighted and vertex variants plus a
travel-time weighting are provided for ablations, and the diversified
top-k generator takes any of these as its diversity filter.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import GraphError
from repro.graph.network import Edge
from repro.graph.path import Path

__all__ = [
    "SimilarityFunction",
    "weighted_jaccard",
    "jaccard",
    "vertex_jaccard",
    "time_weighted_jaccard",
    "overlap_ratio",
    "get_similarity",
]

SimilarityFunction = Callable[[Path, Path], float]


def _edge_weight_jaccard(a: Path, b: Path, weight: Callable[[Edge], float]) -> float:
    """Generalised weighted Jaccard: shared weight / union weight."""
    if a.network is not b.network:
        raise GraphError("cannot compare paths over different networks")
    edges_a = a.edge_set
    edges_b = b.edge_set
    shared = edges_a & edges_b
    # Shared edges are a subset of the union, so each edge's weight is
    # looked up exactly once and added to both accumulators as needed.
    network = a.network
    union_weight = 0.0
    shared_weight = 0.0
    for u, v in edges_a | edges_b:
        w = weight(network.edge(u, v))
        union_weight += w
        if (u, v) in shared:
            shared_weight += w
    if union_weight == 0.0:
        return 0.0
    return shared_weight / union_weight


def weighted_jaccard(a: Path, b: Path) -> float:
    """Length-weighted Jaccard over directed edges, in [0, 1].

    ``WJ(P, P_T) = len(P ∩ P_T) / len(P ∪ P_T)`` — the paper's ground
    truth ranking score for candidate ``P`` against trajectory ``P_T``.
    """
    return _edge_weight_jaccard(a, b, lambda e: e.length)


def time_weighted_jaccard(a: Path, b: Path) -> float:
    """Travel-time-weighted Jaccard over directed edges."""
    return _edge_weight_jaccard(a, b, lambda e: e.travel_time)


def jaccard(a: Path, b: Path) -> float:
    """Unweighted Jaccard over directed edge sets."""
    union = a.edge_set | b.edge_set
    if not union:
        return 0.0
    return len(a.edge_set & b.edge_set) / len(union)


def vertex_jaccard(a: Path, b: Path) -> float:
    """Jaccard over vertex sets (coarser than the edge measures)."""
    union = a.vertex_set | b.vertex_set
    if not union:
        return 0.0
    return len(a.vertex_set & b.vertex_set) / len(union)


def overlap_ratio(candidate: Path, reference: Path) -> float:
    """Fraction of ``candidate``'s length shared with ``reference``.

    Asymmetric: 1.0 means the candidate lies entirely on the reference.
    """
    if candidate.network is not reference.network:
        raise GraphError("cannot compare paths over different networks")
    shared = candidate.shared_edges(reference)
    if candidate.length == 0.0:
        return 0.0
    shared_length = sum(candidate.network.edge(u, v).length for u, v in shared)
    return shared_length / candidate.length


_REGISTRY: dict[str, SimilarityFunction] = {
    "weighted_jaccard": weighted_jaccard,
    "time_weighted_jaccard": time_weighted_jaccard,
    "jaccard": jaccard,
    "vertex_jaccard": vertex_jaccard,
}


def get_similarity(name: str) -> SimilarityFunction:
    """Look up a similarity function by configuration name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown similarity {name!r}; known: {known}") from None
