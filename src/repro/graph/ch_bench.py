"""Contraction-hierarchy benchmark harness: CH lane vs the CSR lanes.

Times the third routing lane (:mod:`repro.graph.ch`) against both
states of the CSR kernel's point-to-point search — the **cold** lane
(early-exit Dijkstra, what a query pays before any landmark tables
exist) and the **warmed** lane (ALT-guided A*, what serving pays after
the first Yen query built landmarks) — on generated grid networks,
plus Yen candidate generation, where only the initial unbanned search
can ride the hierarchy (spur searches carry bans, which shortcuts
cannot respect).

Every timed comparison is paired with a parity check (identical vertex
sequences *and* costs between lanes), so a speedup can never come from
a wrong answer.  The report is a JSON document (``BENCH_ch.json``);
its shape is pinned by :func:`validate_report`, which the smoke test in
``benchmarks/bench_ch.py`` runs against every emitted report.

Floors follow ``parallel_bench``'s honest-gate convention — a floor
only arms when the measured environment can physically deliver it, and
the report records the achieved ratio either way:

* **search effort** (always armed at full scale): the CH query must
  settle at least :data:`SPEEDUP_TARGET` times fewer vertices than the
  cold Dijkstra lane.  This is the scalable claim — upward search
  spaces grow far slower than graph-proportional ones.
* **wall clock vs ALT** (conditionally armed): ALT's goal-directed
  search on small planar grids already settles barely more vertices
  than the shortest path has, so a 5x wall-clock floor against it is
  only armed when the measured settle counts leave that much room
  (``alt_settled >= target * ch_settled``).  On grids it typically
  does not — the note records both settle counts and the measured
  ratio, honestly disarmed.

Consumed by ``benchmarks/bench_ch.py`` (standalone + pytest smoke mode)
and the ``bench-ch`` CLI subcommand.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import asdict, dataclass, replace
from pathlib import Path as FilePath

import numpy as np

from repro.errors import DataError
from repro.graph.builders import grid_network
from repro.graph.csr import csr_for
from repro.graph.network import RoadNetwork
from repro.graph.partition import partition_network
from repro.rng import make_rng

__all__ = [
    "ChBenchConfig",
    "smoke_config",
    "full_config",
    "apply_overrides",
    "run_ch_benchmark",
    "validate_report",
    "write_report",
    "SPEEDUP_TARGET",
    "FLOOR_MIN_VERTICES",
]

SCHEMA_VERSION = 1

#: Target factor for both floors: settle-count reduction vs the cold
#: Dijkstra lane (always armed at full scale), and wall-clock speedup
#: vs the warmed ALT lane (armed only when settle counts allow it).
SPEEDUP_TARGET = 5.0

#: Floors only arm on networks at least this large: on tiny grids every
#: lane answers in microseconds and ratios measure overhead constants,
#: not search strategy.
FLOOR_MIN_VERTICES = 1200

#: Baseline lanes the report can carry timing blocks for.  ``"csr"``
#: times the kernel's cold and ALT lanes; ``"dict"`` adds the reference
#: dict-Dijkstra lane on top (slow — for calibration runs).
BASELINES = ("csr", "dict")


@dataclass(frozen=True)
class ChBenchConfig:
    """Knobs of one benchmark run."""

    grid_sizes: tuple[int, ...] = (12, 24, 40)
    p2p_queries: int = 40
    ksp_queries: int = 6
    k: int = 8
    repeats: int = 3
    seed: int = 7
    baseline: str = "csr"
    shards: int = 0
    preset: str = "full"

    def __post_init__(self) -> None:
        if not self.grid_sizes:
            raise ValueError("grid_sizes must not be empty")
        if min(self.grid_sizes) < 2:
            raise ValueError(f"grid sizes must be >= 2, got {self.grid_sizes}")
        if min(self.p2p_queries, self.ksp_queries) < 1:
            raise ValueError("query counts must be >= 1")
        if self.k < 1 or self.repeats < 1:
            raise ValueError("k and repeats must be >= 1")
        if self.baseline not in BASELINES:
            raise ValueError(
                f"baseline must be one of {BASELINES}, got {self.baseline!r}")
        if self.shards < 0:
            raise ValueError(f"shards must be >= 0, got {self.shards}")


def smoke_config() -> ChBenchConfig:
    """Tiny preset for the tier-1 pytest wrapper: one small grid,
    best-of-3 timing so the parity assertions are stable under CI
    jitter, finishes in well under a second."""
    return ChBenchConfig(grid_sizes=(10,), p2p_queries=8, ksp_queries=2,
                         k=4, repeats=3, preset="smoke")


def full_config() -> ChBenchConfig:
    """The headline preset behind the committed ``BENCH_ch.json``."""
    return ChBenchConfig()


def apply_overrides(
    config: ChBenchConfig,
    sizes: str | None = None,
    k: int | None = None,
    seed: int | None = None,
    baseline: str | None = None,
    shards: int | None = None,
) -> ChBenchConfig:
    """Apply the command-line overrides shared by the ``bench-ch`` CLI
    subcommand and the standalone benchmark entry point.

    ``sizes`` is the raw comma-separated string (e.g. ``"12,24,40"``).
    """
    overrides = {}
    if sizes:
        overrides["grid_sizes"] = tuple(
            int(value) for value in sizes.split(",") if value.strip())
    if k is not None:
        overrides["k"] = k
    if seed is not None:
        overrides["seed"] = seed
    if baseline is not None:
        overrides["baseline"] = baseline
    if shards is not None:
        overrides["shards"] = shards
    return replace(config, **overrides) if overrides else config


def _best_of(repeats: int, fn) -> float:
    """Best wall-clock seconds over ``repeats`` runs of ``fn``."""
    best = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _sample_pairs(network: RoadNetwork, count: int,
                  rng: np.random.Generator) -> list[tuple[int, int]]:
    ids = network.vertex_ids()
    pairs = []
    while len(pairs) < count:
        s, t = (int(v) for v in rng.choice(ids, 2, replace=False))
        pairs.append((s, t))
    return pairs


def _bench_network(network: RoadNetwork, name: str, config: ChBenchConfig,
                   rng: np.random.Generator) -> dict:
    """Benchmark one network; every block asserts lane parity.

    Order matters: the cold lane is timed before :meth:`ensure_alt`
    (landmark tables flip ``shortest_path_ids`` to ALT A*), then the
    warmed lane, then the hierarchy.
    """
    p2p_pairs = _sample_pairs(network, config.p2p_queries, rng)
    ksp_pairs = _sample_pairs(network, config.ksp_queries, rng)
    kernel = csr_for(network)
    queries = len(p2p_pairs)

    def _kernel_p2p() -> list:
        return [kernel.shortest_path_ids(s, t) for s, t in p2p_pairs]

    def _settled_delta(fn) -> float:
        before = kernel.profile_counters()["settled"]
        fn()
        return (kernel.profile_counters()["settled"] - before) / queries

    # -- cold lane: early-exit Dijkstra, no landmark tables yet -------
    cold_s = _best_of(config.repeats, _kernel_p2p)
    cold_settled = _settled_delta(_kernel_p2p)

    # -- warmed lane: ALT-guided A* -----------------------------------
    alt_started = time.perf_counter()
    kernel.ensure_alt()
    alt_build_ms = (time.perf_counter() - alt_started) * 1000.0
    alt_s = _best_of(config.repeats, _kernel_p2p)
    alt_settled = _settled_delta(_kernel_p2p)

    # -- optional dict reference lane ---------------------------------
    dict_s = None
    if config.baseline == "dict":
        from repro.graph.shortest_path import shortest_path

        dict_s = _best_of(config.repeats, lambda: [
            shortest_path(network, s, t, backend="dict")
            for s, t in p2p_pairs])

    # -- hierarchy lane ------------------------------------------------
    hierarchy = kernel.ensure_ch()

    def _ch_p2p() -> list:
        return [kernel.ch_shortest_path_ids(s, t) for s, t in p2p_pairs]

    ch_s = _best_of(config.repeats, _ch_p2p)
    settled_before = hierarchy.profile["settled"]
    queries_before = hierarchy.profile["queries"]

    # -- parity: identical vertex sequences and costs -----------------
    cost_diff = 0.0
    path_mismatches = 0
    for (ref_path, ref_cost), (ch_path, ch_cost) in zip(_kernel_p2p(),
                                                        _ch_p2p()):
        cost_diff = max(cost_diff, abs(ref_cost - ch_cost))
        if ref_path != ch_path:
            path_mismatches += 1
    ch_settled = ((hierarchy.profile["settled"] - settled_before)
                  / (hierarchy.profile["queries"] - queries_before))

    # -- Yen k shortest paths (candidate generation) ------------------
    ch_p2p_fn = kernel.ch_p2p(None)

    def _yen(p2p) -> list:
        return [list(kernel.yen_ids(s, t, max_paths=config.k, p2p=p2p))
                for s, t in ksp_pairs]

    base_k = _best_of(config.repeats, lambda: _yen(None))
    ch_k = _best_of(config.repeats, lambda: _yen(ch_p2p_fn))
    for base_paths, ch_paths in zip(_yen(None), _yen(ch_p2p_fn)):
        if len(base_paths) != len(ch_paths):
            raise DataError(
                f"lane disagreement on {name}: baseline produced "
                f"{len(base_paths)} paths, ch {len(ch_paths)}")
        for (a_ids, a_cost), (b_ids, b_cost) in zip(base_paths, ch_paths):
            cost_diff = max(cost_diff, abs(a_cost - b_cost))
            if a_ids != b_ids:
                path_mismatches += 1

    def _block(count: int, base_s: float, ch_seconds: float,
               **extra) -> dict:
        base_ms = base_s * 1000.0 / count
        ch_ms = ch_seconds * 1000.0 / count
        return {
            "queries": count,
            "baseline_ms_per_query": base_ms,
            "ch_ms_per_query": ch_ms,
            "speedup": base_ms / ch_ms if ch_ms > 0 else math.inf,
            **extra,
        }

    entry = {
        "name": name,
        "vertices": network.num_vertices,
        "edges": network.num_edges,
        "alt_build_ms": alt_build_ms,
        "ch_build_ms": hierarchy.build_ms,
        "ch_shortcuts": hierarchy.num_shortcuts,
        "point_to_point_alt": _block(queries, alt_s, ch_s),
        "point_to_point_dijkstra": _block(queries, cold_s, ch_s),
        "yen": _block(len(ksp_pairs), base_k, ch_k, k=config.k),
        "query_effort": {
            "dijkstra_settled_per_query": cold_settled,
            "alt_settled_per_query": alt_settled,
            "ch_settled_per_query": ch_settled,
            "settle_reduction_vs_dijkstra": (cold_settled / ch_settled
                                             if ch_settled else math.inf),
        },
        "parity": {
            "p2p_queries": queries,
            "cost_max_abs_diff": float(cost_diff),
            "path_mismatches": path_mismatches,
        },
    }
    if dict_s is not None:
        entry["point_to_point_dict"] = _block(queries, dict_s, ch_s)
    return entry


def _bench_sharding(config: ChBenchConfig,
                    rng: np.random.Generator) -> dict:
    """Per-shard hierarchy builds plus a corridor-certificate sweep on
    the largest configured grid."""
    size = max(config.grid_sizes)
    network = grid_network(size, size, seed=config.seed)
    partition = partition_network(network, config.shards, method="bfs",
                                  rng=config.seed)
    built = partition.ensure_hierarchies()
    outcomes = {"certified": 0, "widened": 0, "unreachable": 0}
    pairs = _sample_pairs(network, config.p2p_queries, rng)
    cross = 0
    for source, target in pairs:
        shard_s = partition.shard_of(source)
        shard_t = partition.shard_of(target)
        if shard_s == shard_t:
            continue
        cross += 1
        certificate = partition.corridor_certificate(shard_s, shard_t)
        outcomes[certificate.decide(source, target)] += 1
    return {
        "shards": config.shards,
        "network": network.name,
        "shard_build_ms": built,
        "cross_shard_queries": cross,
        "certificate_outcomes": outcomes,
    }


def run_ch_benchmark(config: ChBenchConfig | None = None) -> dict:
    """Benchmark the CH lane against the CSR lanes across grid sizes."""
    config = config or full_config()
    rng = make_rng(config.seed)
    networks = []
    for size in config.grid_sizes:
        network = grid_network(size, size, seed=config.seed)
        networks.append(
            _bench_network(network, f"grid-{size}x{size}", config, rng))
    largest = max(networks, key=lambda entry: entry["vertices"])
    effort = largest["query_effort"]
    at_scale = (config.preset == "full"
                and largest["vertices"] >= FLOOR_MIN_VERTICES)

    # Always-armed-at-scale floor: the hierarchy must cut the cold
    # lane's search space by the target factor.  Settle counts are
    # deterministic per (graph, query set) — no timing jitter.
    reduction = effort["settle_reduction_vs_dijkstra"]
    effort_assertion = {
        "required": at_scale,
        "target": SPEEDUP_TARGET,
        "network": largest["name"],
        "achieved": reduction,
        "note": (f"enforced: {largest['name']} has "
                 f"{largest['vertices']} vertices "
                 f"(>= {FLOOR_MIN_VERTICES})" if at_scale else
                 f"skipped: preset={config.preset!r}, largest grid has "
                 f"{largest['vertices']} vertices "
                 f"(needs full preset, >= {FLOOR_MIN_VERTICES} vertices)"),
    }

    # The honest gate on wall clock vs ALT: goal-directed ALT on small
    # planar grids settles barely more vertices than the path is long,
    # so demand the floor only when the measured settle counts leave a
    # target-sized gap for wall clock to close.
    alt_settled = effort["alt_settled_per_query"]
    ch_settled = effort["ch_settled_per_query"]
    room = ch_settled > 0 and alt_settled >= SPEEDUP_TARGET * ch_settled
    achieved = largest["point_to_point_alt"]["speedup"]
    speedup_assertion = {
        "required": at_scale and room,
        "target": SPEEDUP_TARGET,
        "network": largest["name"],
        "achieved": achieved,
        "note": (f"enforced: ALT settles {alt_settled:.0f}/query vs CH "
                 f"{ch_settled:.0f}/query" if at_scale and room else
                 f"skipped: ALT settles {alt_settled:.0f}/query vs CH "
                 f"{ch_settled:.0f}/query on {largest['name']} — ALT's "
                 f"goal-directed search leaves no {SPEEDUP_TARGET}x "
                 f"wall-clock room on this graph (measured ratio "
                 f"{achieved:.2f}x)" if at_scale else
                 f"skipped: preset={config.preset!r}, largest grid has "
                 f"{largest['vertices']} vertices "
                 f"(needs full preset, >= {FLOOR_MIN_VERTICES} vertices)"),
    }

    report = {
        "schema_version": SCHEMA_VERSION,
        "preset": config.preset,
        "config": asdict(config),
        "networks": networks,
        "largest": {
            "name": largest["name"],
            "vertices": largest["vertices"],
            "p2p_speedup_vs_dijkstra":
                largest["point_to_point_dijkstra"]["speedup"],
            "p2p_speedup_vs_alt": achieved,
            "settle_reduction_vs_dijkstra": reduction,
            "yen_speedup": largest["yen"]["speedup"],
            "ch_build_ms": largest["ch_build_ms"],
            "ch_shortcuts": largest["ch_shortcuts"],
        },
        "effort_assertion": effort_assertion,
        "speedup_assertion": speedup_assertion,
    }
    if config.shards > 0:
        report["sharding"] = _bench_sharding(config, rng)
    validate_report(report)
    return report


_NETWORK_KEYS = ("name", "vertices", "edges", "alt_build_ms", "ch_build_ms",
                 "ch_shortcuts", "point_to_point_alt",
                 "point_to_point_dijkstra", "yen", "query_effort", "parity")
_BLOCK_KEYS = ("queries", "baseline_ms_per_query", "ch_ms_per_query",
               "speedup")
_ASSERTION_KEYS = ("required", "target", "achieved", "note")


def validate_report(report: dict) -> None:
    """Check a benchmark report parses as valid ``BENCH_ch.json``.

    Raises :class:`DataError` on a malformed document; used both when a
    report is produced and by the smoke test against re-parsed JSON.
    """
    if report.get("schema_version") != SCHEMA_VERSION:
        raise DataError(
            f"unexpected schema_version {report.get('schema_version')!r}")
    networks = report.get("networks")
    if not isinstance(networks, list) or not networks:
        raise DataError("report must hold a non-empty 'networks' list")
    for entry in networks:
        missing = [key for key in _NETWORK_KEYS if key not in entry]
        if missing:
            raise DataError(f"network entry missing keys: {missing}")
        for block in ("point_to_point_alt", "point_to_point_dijkstra",
                      "yen"):
            for key in _BLOCK_KEYS:
                value = entry[block].get(key)
                if not isinstance(value, (int, float)) \
                        or not math.isfinite(value):
                    raise DataError(
                        f"{entry['name']}.{block}.{key} must be a finite "
                        f"number, got {value!r}")
        parity = entry["parity"]
        if parity.get("path_mismatches") != 0:
            raise DataError(
                f"{entry['name']} parity violation: "
                f"{parity.get('path_mismatches')!r} mismatched paths")
        diff = parity.get("cost_max_abs_diff")
        if not isinstance(diff, float) or not diff <= 1e-6:
            raise DataError(
                f"{entry['name']} parity violation: cost diff {diff!r}")
    largest = report.get("largest")
    if not isinstance(largest, dict) \
            or "p2p_speedup_vs_dijkstra" not in largest \
            or "settle_reduction_vs_dijkstra" not in largest:
        raise DataError("report must summarise the largest network's ratios")
    for name in ("effort_assertion", "speedup_assertion"):
        assertion = report.get(name)
        if not isinstance(assertion, dict) \
                or any(key not in assertion for key in _ASSERTION_KEYS):
            raise DataError(
                f"report must carry {name} with {_ASSERTION_KEYS}")


def write_report(report: dict, path: str | FilePath) -> FilePath:
    """Validate and write the report; returns the output path."""
    validate_report(report)
    out = FilePath(path)
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return out
