"""Region partitioning: split a road network into node-disjoint shards.

City-and-beyond networks are too large for one embedding matrix, one
candidate cache, and one scoring batch queue; the serving layer shards
them into *regions* instead (PathRank itself is trained per region, and
the knowledge-enriched path literature likewise works on regional
subnetworks).  This module produces that partition:

* :func:`grid_partition` — cells of the bounding box, the classic
  spatial baseline: trivially deterministic and embarrassingly fast, but
  blind to the road topology (a river with one bridge can land on a cell
  edge).
* :func:`bfs_partition` — METIS-lite balanced BFS growth **over the CSR
  arrays**: farthest-point seeds (the same selection idea as the ALT
  landmarks), then round-robin frontier expansion that always grows the
  currently smallest shard, which keeps shard sizes balanced and cut
  edges low without a full multilevel partitioner.
* :func:`voronoi_partition` — road-distance Voronoi cells around
  farthest-point seeds (one batched multi-source Dijkstra sweep):
  unbalanced but geography-aligned, the choice when shard-local routing
  should reproduce full-network candidates for in-region queries.

Both return a :class:`GraphPartition`: per-shard :class:`RegionShard`
records (node sets plus the *boundary* nodes that touch another shard),
an O(1) node→shard map, and lazily built, cached per-shard subnetworks
and shard-pair *corridor* subgraphs (the union of two shards, including
every edge crossing between them) that the serving layer routes
cross-shard queries through.

Shards preserve global vertex ids, so paths computed inside a shard
subnetwork are valid paths of the full network and can be scored by any
model trained on the global vertex space.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, NoPathError, VertexNotFoundError
from repro.graph.csr import csr_for
from repro.graph.network import RoadNetwork
from repro.rng import RngLike, make_rng

__all__ = ["RegionShard", "GraphPartition", "CorridorCertificate",
           "grid_partition", "bfs_partition", "voronoi_partition",
           "partition_network", "PARTITION_METHODS"]


@dataclass(frozen=True)
class RegionShard:
    """One region of a partitioned network.

    ``boundary`` holds the shard's gateway nodes — members with at least
    one edge (either direction) whose other endpoint lives in a
    different shard.  Cross-shard corridors are stitched through these.
    """

    shard_id: int
    nodes: frozenset[int]
    boundary: frozenset[int]

    @property
    def size(self) -> int:
        return len(self.nodes)

    @property
    def interior(self) -> frozenset[int]:
        return self.nodes - self.boundary

    def __contains__(self, vertex_id: int) -> bool:
        return vertex_id in self.nodes

    def __repr__(self) -> str:
        return (f"RegionShard(id={self.shard_id}, nodes={len(self.nodes)}, "
                f"boundary={len(self.boundary)})")


class GraphPartition:
    """A node-disjoint, exhaustive split of one network into shards.

    Construction validates the assignment (every vertex mapped, shard
    ids dense ``0..k-1``, no empty shard) and derives the per-shard
    boundary sets and the cut-edge count in one pass over the edges.
    Per-shard subnetworks and shard-pair corridor subgraphs are built
    lazily and memoised; both preserve global vertex ids, so a
    :class:`~repro.graph.path.Path` computed on either is a valid path
    of the parent network.
    """

    def __init__(self, network: RoadNetwork,
                 assignment: dict[int, int]) -> None:
        ids = network.vertex_ids()
        missing = [vid for vid in ids if vid not in assignment]
        if missing:
            raise ConfigError(
                f"partition assignment misses {len(missing)} vertices "
                f"(e.g. {missing[:3]})")
        labels = sorted(set(assignment[vid] for vid in ids))
        if labels != list(range(len(labels))):
            raise ConfigError(
                f"shard ids must be dense 0..k-1, got {labels[:8]}")
        self.network = network
        #: Fingerprint of the network at partition time; a mutated
        #: network should be re-partitioned, not served from stale shards.
        self.fingerprint = network.fingerprint
        self._assignment = {vid: int(assignment[vid]) for vid in ids}
        num_shards = len(labels)

        nodes: list[set[int]] = [set() for _ in range(num_shards)]
        for vid in ids:
            nodes[self._assignment[vid]].add(vid)
        boundary: list[set[int]] = [set() for _ in range(num_shards)]
        cut = 0
        for edge in network.edges():
            a = self._assignment[edge.source]
            b = self._assignment[edge.target]
            if a != b:
                cut += 1
                boundary[a].add(edge.source)
                boundary[b].add(edge.target)
        self.cut_edges = cut
        self.shards: tuple[RegionShard, ...] = tuple(
            RegionShard(shard_id=i, nodes=frozenset(nodes[i]),
                        boundary=frozenset(boundary[i]))
            for i in range(num_shards)
        )
        self._subnetworks: dict[int, RoadNetwork] = {}
        self._corridors: dict[frozenset[int], RoadNetwork] = {}
        self._certificates: dict[frozenset[int], CorridorCertificate] = {}
        # Serialises memo construction: the serving engine's admission
        # workers route concurrently, and racing first-requests must not
        # each build (and later CSR-compile) their own copy of the same
        # subgraph.
        self._derive_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_of(self, vertex_id: int) -> int:
        try:
            return self._assignment[vertex_id]
        except KeyError:
            raise VertexNotFoundError(vertex_id) from None

    def same_shard(self, a: int, b: int) -> bool:
        return self.shard_of(a) == self.shard_of(b)

    def shard(self, shard_id: int) -> RegionShard:
        if not 0 <= shard_id < len(self.shards):
            raise ConfigError(
                f"no shard {shard_id}; partition has {len(self.shards)}")
        return self.shards[shard_id]

    # ------------------------------------------------------------------
    # Derived subgraphs (cached)
    # ------------------------------------------------------------------
    def subnetwork(self, shard_id: int) -> RoadNetwork:
        """The sub-network induced by one shard's nodes (memoised)."""
        # Lock-free fast path: routing calls this per request, and a
        # memo hit must not contend on the build mutex.
        cached = self._subnetworks.get(shard_id)
        if cached is not None:
            return cached
        with self._derive_lock:
            cached = self._subnetworks.get(shard_id)
            if cached is None:
                cached = self.network.subgraph(
                    set(self.shard(shard_id).nodes))
                cached.name = f"{self.network.name}/shard-{shard_id}"
                self._subnetworks[shard_id] = cached
            return cached

    def corridor(self, shard_a: int, shard_b: int) -> RoadNetwork:
        """The boundary-stitched union subgraph of two shards (memoised).

        Contains every node of both shards and every edge whose
        endpoints lie inside the union — in particular all cut edges
        between the two regions, which is what makes cross-shard routing
        through the corridor possible without loading the full network.
        """
        if shard_a == shard_b:
            return self.subnetwork(shard_a)
        key = frozenset((shard_a, shard_b))
        cached = self._corridors.get(key)
        if cached is not None:
            return cached
        with self._derive_lock:
            cached = self._corridors.get(key)
            if cached is None:
                union = set(self.shard(shard_a).nodes) | set(
                    self.shard(shard_b).nodes)
                cached = self.network.subgraph(union)
                lo, hi = sorted(key)
                cached.name = f"{self.network.name}/corridor-{lo}-{hi}"
                self._corridors[key] = cached
            return cached

    def corridor_certificate(self, shard_a: int,
                             shard_b: int) -> "CorridorCertificate":
        """The exactness certificate for one shard pair (memoised)."""
        key = frozenset((shard_a, shard_b))
        cached = self._certificates.get(key)
        if cached is not None:
            return cached
        corridor = self.corridor(shard_a, shard_b)
        with self._derive_lock:
            cached = self._certificates.get(key)
            if cached is None:
                cached = CorridorCertificate(self.network, corridor)
                self._certificates[key] = cached
            return cached

    def ensure_hierarchies(self, cost=None,
                           include_corridors: bool = False,
                           ) -> dict[str, float]:
        """Prebuild contraction hierarchies for every shard subnetwork.

        Under the ``"ch"`` routing backend each shard-restricted graph
        lazily builds its own hierarchy on first use; this warm-up pays
        those builds up front (e.g. before serving opens) and returns
        ``{graph name: build ms}``.  Corridors are quadratic in the
        shard count and memoised lazily, so prebuilding them is opt-in.
        """
        built: dict[str, float] = {}
        for shard in self.shards:
            subnetwork = self.subnetwork(shard.shard_id)
            built[subnetwork.name] = csr_for(subnetwork).ensure_ch(cost).build_ms
        if include_corridors:
            for a in range(self.num_shards):
                for b in range(a + 1, self.num_shards):
                    corridor = self.corridor(a, b)
                    built[corridor.name] = (
                        csr_for(corridor).ensure_ch(cost).build_ms)
        return built

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def balance(self) -> float:
        """Largest shard size over the ideal equal share (1.0 = perfect)."""
        ideal = self.network.num_vertices / self.num_shards
        return max(shard.size for shard in self.shards) / ideal

    def as_dict(self) -> dict[str, object]:
        return {
            "num_shards": self.num_shards,
            "shard_sizes": [shard.size for shard in self.shards],
            "boundary_nodes": [len(shard.boundary) for shard in self.shards],
            "cut_edges": self.cut_edges,
            "cut_fraction": (self.cut_edges / self.network.num_edges
                             if self.network.num_edges else 0.0),
            "balance": self.balance(),
        }

    def __repr__(self) -> str:
        sizes = ", ".join(str(shard.size) for shard in self.shards)
        return (f"GraphPartition(shards={self.num_shards}, sizes=[{sizes}], "
                f"cut_edges={self.cut_edges})")


class CorridorCertificate:
    """Per-query exactness certificate for a cross-shard corridor.

    A corridor (the union subgraph of the two endpoint shards) answers a
    cross-shard query exactly *unless* the true shortest path detours
    through a third shard.  Any such detour must pass through an
    **exterior gateway** — a vertex outside the corridor with an edge
    into it — so its cost is at least
    ``min over gateways w of  euclid(s, w) + euclid(w, t)``
    (an admissible bound for the length cost; divided by the network's
    maximum speed it bounds travel time).  When the corridor's own
    shortest-path cost does not exceed that bound, no exterior route can
    beat it and the corridor result is certified globally exact;
    otherwise the query must widen to the full network.

    The gateway set and its coordinate arrays are computed once per
    shard pair; certification is then one corridor point-to-point query
    (near-free under the CH lane) plus a vectorised euclidean sweep.
    """

    #: Weight keys the euclidean gateway bound is admissible for.
    _GEOMETRIC_KEYS = ("length", "travel_time")

    def __init__(self, network: RoadNetwork, corridor: RoadNetwork) -> None:
        self.corridor = corridor
        kernel = csr_for(network)
        inside = set(corridor.vertex_ids())
        gateways: set[int] = set()
        for edge in network.edges():
            source_in = edge.source in inside
            target_in = edge.target in inside
            if source_in != target_in:
                gateways.add(edge.target if source_in else edge.source)
        self.num_gateways = len(gateways)
        gateway_indices = [kernel.index_of(vid) for vid in sorted(gateways)]
        self._gx = kernel.x[gateway_indices]
        self._gy = kernel.y[gateway_indices]
        self._x = kernel.x
        self._y = kernel.y
        self._index = kernel.index_of
        self._max_speed_mps = kernel._max_speed_mps

    def exterior_bound(self, source: int, target: int,
                       cost=None) -> float:
        """Lower bound on any ``source -> target`` path that leaves the
        corridor (``inf`` when no exterior gateway exists); ``-inf`` for
        custom costs, which the euclidean geometry cannot bound."""
        from repro.graph.shortest_path import length_cost, travel_time_cost

        if cost is None or cost is length_cost:
            key = "length"
        elif cost is travel_time_cost:
            key = "travel_time"
        else:
            return -np.inf
        if self.num_gateways == 0:
            return np.inf
        si = self._index(source)
        ti = self._index(target)
        via = (np.hypot(self._gx - self._x[si], self._gy - self._y[si])
               + np.hypot(self._gx - self._x[ti], self._gy - self._y[ti]))
        bound = float(via.min())
        if key == "travel_time":
            bound /= self._max_speed_mps
        return bound

    def decide(self, source: int, target: int, cost=None,
               backend: str | None = None) -> str:
        """Certify one query: ``"certified"`` (corridor is exact),
        ``"widened"`` (an exterior route could be shorter — or the cost
        is custom and unboundable), or ``"unreachable"`` (no corridor
        path; the caller should search the full network).
        """
        from repro.graph.shortest_path import length_cost, shortest_path_cost

        bound = self.exterior_bound(source, target, cost)
        if bound == -np.inf:
            return "widened"
        try:
            corridor_cost = shortest_path_cost(
                self.corridor, source, target,
                cost if cost is not None else length_cost, backend=backend)
        except NoPathError:
            return "unreachable"
        return "certified" if corridor_cost <= bound else "widened"


# ----------------------------------------------------------------------
# Undirected adjacency over the CSR arrays
# ----------------------------------------------------------------------
def _undirected_adjacency(kernel) -> list[list[int]]:
    """Symmetrised neighbour lists in CSR index space.

    Partition growth must not strand the tail of a one-way street in a
    foreign shard, so both edge directions count as adjacency.
    """
    n = kernel.num_vertices
    adjacency: list[set[int]] = [set() for _ in range(n)]
    indptr, indices = kernel.indptr, kernel.indices
    for u in range(n):
        for e in range(int(indptr[u]), int(indptr[u + 1])):
            v = int(indices[e])
            adjacency[u].add(v)
            adjacency[v].add(u)
    return [sorted(neighbours) for neighbours in adjacency]


def _farthest_point_seeds(adjacency: list[list[int]], num_seeds: int,
                          rng) -> list[int]:
    """Mutually distant seed vertices via repeated multi-source BFS.

    Mirrors the ALT landmark selection: the first seed is drawn by the
    rng, every next seed is the vertex with the greatest hop distance
    from all seeds chosen so far (smallest index on ties, so a fixed rng
    yields a fixed partition).  Unreachable vertices (distance still
    ``None``) are preferred outright — they start a new region for their
    component.
    """
    n = len(adjacency)
    seeds = [int(rng.integers(n))]
    while len(seeds) < num_seeds:
        dist: list[int | None] = [None] * n
        frontier = deque(seeds)
        for seed in seeds:
            dist[seed] = 0
        while frontier:
            u = frontier.popleft()
            for v in adjacency[u]:
                if dist[v] is None:
                    dist[v] = dist[u] + 1
                    frontier.append(v)
        best, best_dist = -1, -1
        for v in range(n):
            if dist[v] is None:  # disconnected: infinitely far, take it
                best = v
                break
            if dist[v] > best_dist:
                best, best_dist = v, dist[v]
        seeds.append(best)
    return seeds


def bfs_partition(network: RoadNetwork, num_shards: int,
                  rng: RngLike = 0) -> GraphPartition:
    """METIS-lite balanced BFS growth over the CSR arrays.

    Farthest-point seeds claim one region each; regions then grow one
    frontier vertex's unclaimed neighbourhood at a time, always
    expanding the currently smallest shard, so shard sizes stay
    balanced while each shard remains a contiguous BFS ball — exactly
    the "grow regions from spread-out seeds" core of multilevel
    partitioners, minus the coarsening/refinement machinery.  Vertices
    no frontier can reach (satellite components) join the smallest
    shard wholesale.
    """
    _check_num_shards(network, num_shards)
    kernel = csr_for(network)
    if num_shards == 1:
        return GraphPartition(network, {vid: 0 for vid in kernel.ids})
    adjacency = _undirected_adjacency(kernel)
    generator = make_rng(rng)
    seeds = _farthest_point_seeds(adjacency, num_shards, generator)

    n = kernel.num_vertices
    assignment = [-1] * n
    sizes = [0] * num_shards
    frontiers: list[deque[int]] = [deque() for _ in range(num_shards)]
    for shard_id, seed in enumerate(seeds):
        if assignment[seed] != -1:  # duplicate seed on a tiny graph
            seed = next(v for v in range(n) if assignment[v] == -1)
        assignment[seed] = shard_id
        sizes[shard_id] = 1
        frontiers[shard_id].append(seed)

    active = set(range(num_shards))
    while active:
        # Grow the smallest live shard by one frontier vertex's
        # unclaimed neighbourhood: balance emerges from the scheduling,
        # not from a post-hoc repair pass.
        shard_id = min(active, key=lambda s: (sizes[s], s))
        frontier = frontiers[shard_id]
        grew = False
        while frontier and not grew:
            u = frontier.popleft()
            for v in adjacency[u]:
                if assignment[v] == -1:
                    assignment[v] = shard_id
                    sizes[shard_id] += 1
                    frontier.append(v)
                    grew = True
        if not grew:
            active.discard(shard_id)

    for v in range(n):  # disconnected leftovers: flood each into the
        if assignment[v] != -1:  # smallest shard, keeping components whole
            continue
        shard_id = min(range(num_shards), key=lambda s: (sizes[s], s))
        component = deque([v])
        assignment[v] = shard_id
        sizes[shard_id] += 1
        while component:
            u = component.popleft()
            for w in adjacency[u]:
                if assignment[w] == -1:
                    assignment[w] = shard_id
                    sizes[shard_id] += 1
                    component.append(w)

    mapping = {kernel.ids[i]: assignment[i] for i in range(n)}
    return GraphPartition(network, _densify(mapping))


def grid_partition(network: RoadNetwork, num_shards: int,
                   rng: RngLike = 0) -> GraphPartition:
    """Spatial grid cells over the bounding box (CSR coordinate arrays).

    The cell grid is the ``rows x cols`` factorisation of a cell count
    ``>= num_shards`` whose cells best match the bounding box's aspect
    ratio; every *occupied* cell becomes a shard, so the realised shard
    count can land above (extra cells from the ceil factorisation) or
    below (empty cells collapse) the request on clustered geometry —
    read :attr:`GraphPartition.num_shards` back.  :func:`bfs_partition`
    is the topology-aware choice; this is the spatial baseline.
    """
    _check_num_shards(network, num_shards)
    kernel = csr_for(network)
    if num_shards == 1:
        return GraphPartition(network, {vid: 0 for vid in kernel.ids})
    xs, ys = kernel.x, kernel.y
    x_min, y_min = float(xs.min()), float(ys.min())
    span_x = max(float(xs.max()) - x_min, 1e-9)
    span_y = max(float(ys.max()) - y_min, 1e-9)
    # Pick rows/cols so cells are roughly square on this bounding box.
    best_rows, best_cols = 1, num_shards
    best_score = None
    for rows in range(1, num_shards + 1):
        cols = -(-num_shards // rows)  # ceil
        cell_aspect = (span_y / rows) / (span_x / cols)
        score = abs(cell_aspect - 1.0) + 0.01 * (rows * cols - num_shards)
        if best_score is None or score < best_score:
            best_rows, best_cols, best_score = rows, cols, score
    rows, cols = best_rows, best_cols

    def cell_of(i: int) -> int:
        cx = min(int((float(xs[i]) - x_min) / span_x * cols), cols - 1)
        cy = min(int((float(ys[i]) - y_min) / span_y * rows), rows - 1)
        return cy * cols + cx

    mapping = {kernel.ids[i]: cell_of(i) for i in range(kernel.num_vertices)}
    return GraphPartition(network, _densify(mapping))


def _densify(mapping: dict[int, int]) -> dict[int, int]:
    """Relabel shard ids to dense 0..k-1 (sorted by original label)."""
    labels = {label: i for i, label in enumerate(sorted(set(mapping.values())))}
    return {vid: labels[label] for vid, label in mapping.items()}


def _check_num_shards(network: RoadNetwork, num_shards: int) -> None:
    if num_shards < 1:
        raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
    if network.num_vertices == 0:
        raise ConfigError("cannot partition an empty network")
    if num_shards > network.num_vertices:
        raise ConfigError(
            f"num_shards={num_shards} exceeds the network's "
            f"{network.num_vertices} vertices")


def voronoi_partition(network: RoadNetwork, num_shards: int,
                      rng: RngLike = 0) -> GraphPartition:
    """Road-distance Voronoi cells around farthest-point seeds.

    Every vertex joins the seed it is closest to by shortest-path
    distance (one batched :meth:`CSRGraph.multi_source` sweep), so
    shards follow the *geography* of the network: a multi-town region
    partitions into its towns plus their nearest highway approaches,
    which is the alignment that keeps same-shard queries' candidate
    paths inside their shard.  Unlike :func:`bfs_partition` there is no
    balance forcing — dense regions get big shards — making this the
    partitioner of choice when exactness of shard-local routing matters
    more than equal shard sizes.
    """
    _check_num_shards(network, num_shards)
    kernel = csr_for(network)
    if num_shards == 1:
        return GraphPartition(network, {vid: 0 for vid in kernel.ids})
    adjacency = _undirected_adjacency(kernel)
    generator = make_rng(rng)
    seeds = _farthest_point_seeds(adjacency, num_shards, generator)
    # Distance *to* each vertex from the seed, forward edge direction;
    # min over (forward, reverse) keeps one-way streets from landing a
    # vertex in a far shard it can only be left from.
    seed_ids = [kernel.ids[s] for s in seeds]
    forward = kernel.multi_source(seed_ids, reverse=False)
    backward = kernel.multi_source(seed_ids, reverse=True)
    distance = np.minimum(forward, backward)
    assignment: dict[int, int] = {}
    unreachable: list[int] = []
    for v in range(kernel.num_vertices):
        column = distance[:, v]
        nearest = int(column.argmin())
        if not np.isfinite(column[nearest]):
            unreachable.append(v)
            continue
        assignment[kernel.ids[v]] = nearest
    for v in unreachable:  # satellite components: nearest seed by geometry
        dx = kernel.x[[*seeds]] - float(kernel.x[v])
        dy = kernel.y[[*seeds]] - float(kernel.y[v])
        assignment[kernel.ids[v]] = int((dx * dx + dy * dy).argmin())
    return GraphPartition(network, _densify(assignment))


PARTITION_METHODS = {"bfs": bfs_partition, "grid": grid_partition,
                     "voronoi": voronoi_partition}


def partition_network(network: RoadNetwork, num_shards: int,
                      method: str = "bfs",
                      rng: RngLike = 0) -> GraphPartition:
    """Partition ``network`` into ``num_shards`` regions by ``method``."""
    try:
        partitioner = PARTITION_METHODS[method]
    except KeyError:
        raise ConfigError(
            f"unknown partition method {method!r}; "
            f"choose from {sorted(PARTITION_METHODS)}") from None
    return partitioner(network, num_shards, rng=rng)
