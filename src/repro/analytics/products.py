"""Kernel-level batch products and their result types.

Everything here computes directly against a :class:`CSRGraph` — no
pool, no partition, no metrics — so the exact same code runs inline in
the caller's process and inside a worker that attached the kernel from
shared memory.  Orchestration (tiling, fan-out, accounting) lives in
:mod:`repro.analytics.tiling` and :mod:`repro.analytics.batch`.

Parity is the design constraint, not an afterthought: every product is
element-wise equal to the per-query dict-backend reference —
``od_sweep_block`` rows match :func:`repro.graph.shortest_path.dijkstra`
distances, service-area membership matches the per-vertex/per-edge
budget test on those distances, and route-frequency counts ride
:meth:`CSRGraph.sssp_parents`, whose tie-break reproduces the reference
parent tree exactly.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

import numpy as np

from repro.errors import AnalyticsError, EdgeNotFoundError
from repro.graph.csr import CSRGraph
from repro.graph.shortest_path import (
    CostFunction,
    length_cost,
    travel_time_cost,
)

__all__ = [
    "ODMatrix",
    "ServiceArea",
    "RouteFrequencies",
    "cost_name",
    "cost_from_name",
    "od_sweep_block",
    "service_area_blocks",
    "route_frequency_counts",
]


# ----------------------------------------------------------------------
# Cost naming (the only form that crosses a process boundary)
# ----------------------------------------------------------------------
def cost_name(cost: CostFunction | None) -> str | None:
    """The wire name of a cost function, or ``None`` when it has none.

    Only named costs ("length", "travel_time") can ride a tile payload
    to a pool worker: a custom closure would drag edge objects through
    pickle and the shared-memory replica could not evaluate it anyway.
    """
    if cost is None or cost is length_cost:
        return "length"
    if cost is travel_time_cost:
        return "travel_time"
    return None


def cost_from_name(name: str | None) -> CostFunction | None:
    """Resolve a wire cost name back to the callable (None = length)."""
    if name is None or name == "length":
        return None
    if name == "travel_time":
        return travel_time_cost
    raise AnalyticsError(
        f"unknown cost name {name!r}: tile payloads carry 'length' or "
        f"'travel_time' (custom cost functions cannot cross a process "
        f"boundary)")


def require_cost_name(cost: CostFunction | None) -> str:
    """``cost_name`` that raises instead of returning ``None``."""
    name = cost_name(cost)
    if name is None:
        raise AnalyticsError(
            f"cost {cost!r} has no wire name; pool fan-out supports only "
            f"'length' and 'travel_time' — run custom costs inline "
            f"(plane=None)")
    return name


# ----------------------------------------------------------------------
# Result types
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class ODMatrix:
    """Many-to-many least costs: ``costs[i, j]`` = d(origins[i] ->
    destinations[j]), ``inf`` where disconnected."""

    origins: tuple[int, ...]
    destinations: tuple[int, ...]
    costs: np.ndarray
    method: str  #: "forward_sweep" | "reverse_sweep" | "ch"
    sweeps: int  #: full-graph sweeps spent (0 for the CH lane)

    def cost(self, origin: int, destination: int) -> float:
        return float(self.costs[self.origins.index(origin),
                                self.destinations.index(destination)])

    @property
    def num_pairs(self) -> int:
        return len(self.origins) * len(self.destinations)

    @property
    def num_disconnected(self) -> int:
        return int(np.isinf(self.costs).sum())

    def as_dict(self) -> dict[str, object]:
        """JSON-safe form (``inf`` becomes ``None``)."""
        rows = [[None if np.isinf(c) else float(c) for c in row]
                for row in self.costs]
        return {
            "origins": list(self.origins),
            "destinations": list(self.destinations),
            "costs": rows,
            "method": self.method,
            "sweeps": self.sweeps,
            "num_disconnected": self.num_disconnected,
        }


@dataclass(frozen=True, eq=False)
class ServiceArea:
    """One isochrone: everything reachable within ``budget`` of
    ``source`` (or everything that can *reach* it, when ``reverse``).

    An edge belongs to the area when the whole traversal fits the
    budget: forward ``d(source, u) + w(u, v) <= budget``, reverse
    ``w(u, v) + d(v, source) <= budget``.
    """

    source: int
    budget: float
    reverse: bool
    vertices: frozenset[int]
    edges: frozenset[tuple[int, int]]

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def as_dict(self) -> dict[str, object]:
        return {
            "source": self.source,
            "budget": self.budget,
            "reverse": self.reverse,
            "vertices": sorted(self.vertices),
            "edges": sorted(self.edges),
        }


@dataclass(eq=False)
class RouteFrequencies:
    """Per-edge traversal load over a workload of (origin, destination)
    pairs, accumulated into one CSR-edge-indexed array.

    ``counts[j]`` is the summed weight of all workload paths crossing
    the ``j``-th CSR edge; ``unreachable_pairs`` counts pairs whose
    destination the tree never reached (they contribute nothing).
    """

    kernel: CSRGraph = field(repr=False)
    counts: np.ndarray = field(repr=False)
    num_pairs: int = 0
    unreachable_pairs: int = 0

    def frequency(self, u: int, v: int) -> float:
        """The accumulated load on edge ``(u, v)`` (vertex ids)."""
        pos = _edge_position(self.kernel, self.kernel.index_of(u),
                             self.kernel.index_of(v))
        if pos is None:
            raise EdgeNotFoundError(u, v)
        return float(self.counts[pos])

    def items(self) -> list[tuple[tuple[int, int], float]]:
        """``((u, v), load)`` for every edge with nonzero load."""
        kernel = self.kernel
        ids = kernel.ids
        indptr = kernel.indptr
        out: list[tuple[tuple[int, int], float]] = []
        for pos in np.flatnonzero(self.counts):
            u = int(np.searchsorted(indptr, pos, side="right")) - 1
            v = int(kernel.indices[pos])
            out.append(((ids[u], ids[v]), float(self.counts[pos])))
        return out

    def as_dict(self) -> dict[str, object]:
        return {
            "edges": [[u, v, load] for (u, v), load in self.items()],
            "num_pairs": self.num_pairs,
            "unreachable_pairs": self.unreachable_pairs,
        }


def _edge_position(kernel: CSRGraph, u: int, v: int) -> int | None:
    """CSR position of edge ``(u, v)`` (CSR indices), None if absent."""
    indptr = kernel.indptr
    lo, hi = int(indptr[u]), int(indptr[u + 1])
    j = bisect_left(kernel._indices_list, v, lo, hi)
    if j < hi and kernel._indices_list[j] == v:
        return j
    return None


# ----------------------------------------------------------------------
# Kernel-level compute (runs identically inline and in pool workers)
# ----------------------------------------------------------------------
def od_sweep_block(kernel: CSRGraph, sweep_ids: list[int],
                   col_ids: list[int], *, cost: CostFunction | None = None,
                   reverse: bool = False,
                   chunk_size: int | None = None) -> np.ndarray:
    """One OD block from batched sweeps: ``(len(sweep_ids),
    len(col_ids))`` costs, row-major by sweep source.

    Forward rows hold ``d(sweep[i] -> col[j])``; reverse rows hold
    ``d(col[j] -> sweep[i])``.  Each multi-source slab is gathered down
    to the requested columns and dropped before the next sweep, so the
    full ``(sweep, n)`` matrix never materialises.
    """
    col_idx = np.array([kernel.index_of(v) for v in col_ids],
                       dtype=np.int64)
    out = np.empty((len(sweep_ids), len(col_ids)), dtype=np.float64)
    for start, rows in kernel.iter_multi_source(
            sweep_ids, cost, reverse=reverse, chunk_size=chunk_size):
        out[start:start + rows.shape[0]] = rows[:, col_idx]
    return out


def service_area_blocks(kernel: CSRGraph, source_ids: list[int],
                        budgets: list[float], *,
                        cost: CostFunction | None = None,
                        reverse: bool = False,
                        chunk_size: int | None = None) -> list[ServiceArea]:
    """Isochrones for every (source, budget) pair, source-major.

    One batched multi-source sweep covers all sources; each row is then
    cut at every budget with two vectorised comparisons (vertex: ``dist
    <= budget``; edge: full-traversal test, see :class:`ServiceArea`).
    """
    if not budgets:
        raise AnalyticsError("service_area needs at least one budget")
    for budget in budgets:
        if not budget >= 0.0:
            raise AnalyticsError(f"budgets must be >= 0, got {budget!r}")
    n = kernel.num_vertices
    indptr = np.asarray(kernel.indptr)
    tails = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    heads = np.asarray(kernel.indices, dtype=np.int64)
    weights = np.asarray(kernel.edge_weights(cost), dtype=np.float64)
    ids = np.asarray(kernel.ids, dtype=np.int64)
    areas: list[ServiceArea] = []
    for start, rows in kernel.iter_multi_source(
            source_ids, cost, reverse=reverse, chunk_size=chunk_size):
        for i in range(rows.shape[0]):
            dist = rows[i]
            # Forward: tail settled + edge fits; reverse: edge + head's
            # way back fits.  inf propagates, so unreached ends fail
            # the comparison without a separate mask.
            reach = weights + dist[heads] if reverse else dist[tails] + weights
            for budget in budgets:
                vmask = dist <= budget
                emask = reach <= budget
                edges = zip(ids[tails[emask]].tolist(),
                            ids[heads[emask]].tolist())
                areas.append(ServiceArea(
                    source=source_ids[start + i],
                    budget=float(budget),
                    reverse=reverse,
                    vertices=frozenset(ids[vmask].tolist()),
                    edges=frozenset(edges),
                ))
    return areas


def route_frequency_counts(
    kernel: CSRGraph,
    groups: list[tuple[int, list[tuple[int, float]]]],
    *,
    cost: CostFunction | None = None,
) -> tuple[np.ndarray, int, int]:
    """Accumulate per-edge load for source-grouped (target, weight)
    lists; returns ``(edge_counts, num_pairs, unreachable)``.

    One :meth:`CSRGraph.sssp_parents` tree per distinct source replaces
    one Dijkstra per pair; each target then walks its parent chain,
    adding its weight to every edge on the least-cost path.  The tree's
    tie-break matches the dict-backend reference, so the walked paths —
    and therefore the counts — are element-wise identical to per-query
    ``shortest_path`` reconstructions.

    A pair with equal endpoints is a zero-length path: counted in
    ``num_pairs``, touches no edge, never unreachable.
    """
    edge_counts = np.zeros(len(kernel.indices), dtype=np.float64)
    num_pairs = 0
    unreachable = 0
    indices_list = kernel._indices_list
    indptr_list = kernel._indptr_list
    for source, targets in groups:
        if not targets:
            continue
        source_idx = kernel.index_of(source)
        dist, parent = kernel.sssp_parents(source, cost)
        for target, weight in targets:
            num_pairs += 1
            target_idx = kernel.index_of(target)
            if target_idx == source_idx:
                continue
            if not np.isfinite(dist[target_idx]):
                unreachable += 1
                continue
            v = target_idx
            while v != source_idx:
                p = int(parent[v])
                pos = bisect_left(indices_list, v, indptr_list[p],
                                  indptr_list[p + 1])
                edge_counts[pos] += weight
                v = p
    return edge_counts, num_pairs, unreachable


def group_pairs(pairs: list[tuple[int, int]],
                weights: list[float] | None = None,
                ) -> list[tuple[int, list[tuple[int, float]]]]:
    """Group (origin, destination) pairs by origin, preserving first-seen
    source order — one group = one SSSP tree downstream."""
    if weights is not None and len(weights) != len(pairs):
        raise AnalyticsError(
            f"weights length {len(weights)} != pairs length {len(pairs)}")
    grouped: dict[int, list[tuple[int, float]]] = {}
    for k, (origin, destination) in enumerate(pairs):
        weight = 1.0 if weights is None else float(weights[k])
        grouped.setdefault(origin, []).append((destination, weight))
    return list(grouped.items())
