"""Batch spatial-analytics plane: kernel-batched network products.

Where the serving stack answers one query at a time, this package
computes *products* — OD cost matrices, service areas (isochrones),
route frequencies — as a handful of batched :class:`CSRGraph` sweeps
instead of per-query Python loops.  Large jobs tile their source sets
and fan the tiles across the :class:`~repro.exec.plane.ExecutionPlane`
process pool, where workers run each tile against the shared-memory
kernel they attached at warmup.

Entry points:

- :func:`od_cost_matrix` / :func:`od_cost_pairs` — many-to-many and
  sparse pair costs (chunked multi-source sweeps, CH lane for sparse
  pair sets).
- :func:`service_area` — per-budget isochrone vertex/edge sets from
  multi-source rows, vectorised in numpy.
- :func:`route_frequencies` — per-edge load over a workload, one SSSP
  tree per distinct source.
- :class:`BatchAnalytics` — the facade bundling a network with an
  optional pool, partition, and metrics registry.
- :class:`BackgroundAnalytics` — the loadgen hook that runs tiles
  concurrently with online traffic (``background_analytics=``).
"""

from repro.analytics.batch import (
    BatchAnalytics,
    od_cost_matrix,
    od_cost_pairs,
    route_frequencies,
    service_area,
)
from repro.analytics.products import (
    ODMatrix,
    RouteFrequencies,
    ServiceArea,
    cost_from_name,
    cost_name,
)
from repro.analytics.tiling import BackgroundAnalytics, tile_sources

__all__ = [
    "BatchAnalytics",
    "BackgroundAnalytics",
    "ODMatrix",
    "RouteFrequencies",
    "ServiceArea",
    "cost_from_name",
    "cost_name",
    "od_cost_matrix",
    "od_cost_pairs",
    "route_frequencies",
    "service_area",
    "tile_sources",
]
