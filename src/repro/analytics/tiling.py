"""Tiling and the tile wire format for pool fan-out.

A *tile* is one self-contained unit of batch-analytics work small
enough to ship to a worker process: plain vertex ids, budgets, weights
and a cost *name* — never arrays, edge objects, or cost closures.  The
same :func:`run_tile_payload` executes a tile inline (the caller's
kernel) and inside a pool worker (the shared-memory kernel installed
at warmup), which is what makes pooled and inline results identical by
construction.

Shard-aware tiling: when a :class:`~repro.graph.partition.GraphPartition`
is present, :func:`tile_sources` groups sources by home shard before
chunking, so a tile's sweeps start in one region and its searches share
touched pages instead of striding the whole graph.
"""

from __future__ import annotations

import threading
from time import perf_counter

from repro.errors import AnalyticsError
from repro.analytics.products import (
    cost_from_name,
    od_sweep_block,
    route_frequency_counts,
    service_area_blocks,
)
from repro.graph.csr import csr_for

__all__ = [
    "tile_sources",
    "run_tile_payload",
    "BackgroundAnalytics",
    "DEFAULT_TILE_SIZE",
]

#: Sources per tile when neither the caller nor the pool suggests one.
DEFAULT_TILE_SIZE = 32


def tile_sources(sources: list[int], tile_size: int,
                 partition=None) -> list[list[int]]:
    """Split a source set into tiles of at most ``tile_size`` ids.

    With a partition, sources are first grouped by home shard (shard
    order, then input order within a shard) so each tile stays
    region-local; without one, input order is preserved.
    """
    if tile_size < 1:
        raise AnalyticsError(f"tile_size must be >= 1, got {tile_size}")
    if partition is not None:
        by_shard: dict[int, list[int]] = {}
        for vid in sources:
            by_shard.setdefault(partition.shard_of(vid), []).append(vid)
        ordered = [vid for shard in sorted(by_shard) for vid in by_shard[shard]]
    else:
        ordered = list(sources)
    return [ordered[i:i + tile_size]
            for i in range(0, len(ordered), tile_size)]


def run_tile_payload(network, payload: dict) -> dict:
    """Execute one tile against ``network``'s kernel; returns plain
    lists/numbers only (the wire format back to the parent).

    Payloads by ``payload["product"]``:

    - ``"od"``: ``sweep`` ids, ``cols`` ids, ``reverse``, ``cost`` name,
      optional ``chunk_size`` → ``{"rows": [[float, ...], ...]}`` (one
      row per sweep id; ``inf`` survives pickling).
    - ``"service_area"``: ``sources``, ``budgets``, ``reverse``,
      ``cost`` → ``{"areas": [{source, budget, reverse, vertices,
      edges}, ...]}`` source-major, budget-minor.
    - ``"route_freq"``: ``groups`` ``[[source, [[target, weight],
      ...]], ...]``, ``cost`` → sparse ``{"positions": [...], "counts":
      [...], "num_pairs": int, "unreachable": int}`` over CSR edge
      positions (valid across processes — workers attach the identical
      CSR arrays).
    """
    kernel = csr_for(network)
    product = payload.get("product")
    cost = cost_from_name(payload.get("cost"))
    if product == "od":
        rows = od_sweep_block(kernel, list(payload["sweep"]),
                              list(payload["cols"]), cost=cost,
                              reverse=bool(payload.get("reverse", False)),
                              chunk_size=payload.get("chunk_size"))
        return {"rows": rows.tolist()}
    if product == "service_area":
        areas = service_area_blocks(
            kernel, list(payload["sources"]),
            [float(b) for b in payload["budgets"]], cost=cost,
            reverse=bool(payload.get("reverse", False)),
            chunk_size=payload.get("chunk_size"))
        return {"areas": [area.as_dict() for area in areas]}
    if product == "route_freq":
        groups = [(source, [(target, weight) for target, weight in targets])
                  for source, targets in payload["groups"]]
        counts, num_pairs, unreachable = route_frequency_counts(
            kernel, groups, cost=cost)
        positions = counts.nonzero()[0]
        return {
            "positions": positions.tolist(),
            "counts": counts[positions].tolist(),
            "num_pairs": num_pairs,
            "unreachable": unreachable,
        }
    raise AnalyticsError(f"unknown analytics tile product {product!r}")


class BackgroundAnalytics:
    """Batch pressure for the loadgen: loop analytics tiles until told
    to stop, then report what ran.

    Instances are the ``background_analytics=`` hook of
    :func:`repro.serving.loadgen.run_engine_workload` /
    ``replay_open_loop``: a callable ``(stop_event) -> summary dict``
    run on a side thread while online traffic flows, so benches can
    measure online p95 under batch pressure.  Tiles go through
    ``plane.submit_analytics`` when a plane is given (contending for
    the same worker pool as serving), else run inline (contending for
    the GIL and memory bandwidth — the honest single-process
    comparison).
    """

    def __init__(self, network, sources: list[int], *, product: str = "od",
                 budgets: list[float] | None = None,
                 cost_name: str | None = None, plane=None, partition=None,
                 tile_size: int | None = None,
                 max_rounds: int | None = None) -> None:
        if product not in ("od", "service_area"):
            raise AnalyticsError(
                f"background product must be 'od' or 'service_area', "
                f"got {product!r}")
        if not sources:
            raise AnalyticsError("background analytics needs sources")
        if product == "service_area" and not budgets:
            raise AnalyticsError("background service_area needs budgets")
        self.network = network
        self.product = product
        self.plane = plane
        self.tiles = tile_sources(
            list(sources), tile_size or DEFAULT_TILE_SIZE, partition)
        self.max_rounds = max_rounds
        cost_from_name(cost_name)  # validate early, not on the thread
        if product == "od":
            self._payloads = [
                {"product": "od", "sweep": tile, "cols": list(sources),
                 "reverse": False, "cost": cost_name}
                for tile in self.tiles
            ]
        else:
            self._payloads = [
                {"product": "service_area", "sources": tile,
                 "budgets": [float(b) for b in budgets], "reverse": False,
                 "cost": cost_name}
                for tile in self.tiles
            ]

    def __call__(self, stop: threading.Event) -> dict:
        began = perf_counter()
        rounds = tiles_run = 0
        errors = 0
        while not stop.is_set():
            if self.max_rounds is not None and rounds >= self.max_rounds:
                break
            for payload in self._payloads:
                if stop.is_set():
                    break
                try:
                    if self.plane is not None:
                        self.plane.submit_analytics(payload).wait()
                    else:
                        run_tile_payload(self.network, payload)
                except AnalyticsError:
                    raise
                except Exception:  # noqa: BLE001 - pool teardown races
                    # A tile failing because the pool is closing mid-
                    # replay is expected shutdown noise, not a result.
                    errors += 1
                    if stop.is_set():
                        break
                tiles_run += 1
            rounds += 1
        return {
            "product": self.product,
            "rounds": rounds,
            "tiles": tiles_run,
            "tile_errors": errors,
            "elapsed_s": perf_counter() - began,
            "pooled": self.plane is not None,
        }
