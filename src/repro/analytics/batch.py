"""Product orchestration: sweep-side choice, CH lane, pool fan-out.

The functions here decide *how* a product is computed — which side to
sweep, whether the CH lane beats sweeping, how to tile across the
process pool — and then delegate the arithmetic to
:mod:`repro.analytics.products`, so a pooled run and an inline run
execute byte-identical kernel code.

Accounting goes through an optional :class:`MetricsRegistry` under
``analytics.*`` (see ``docs/observability.md``).
"""

from __future__ import annotations

from math import ceil
from time import perf_counter

import numpy as np

from repro.analytics.products import (
    ODMatrix,
    RouteFrequencies,
    cost_name,
    group_pairs,
    od_sweep_block,
    require_cost_name,
    route_frequency_counts,
    service_area_blocks,
)
from repro.analytics.tiling import (
    DEFAULT_TILE_SIZE,
    BackgroundAnalytics,
    tile_sources,
)
from repro.errors import AnalyticsError
from repro.graph.csr import csr_for, resolve_backend

__all__ = [
    "BatchAnalytics",
    "od_cost_matrix",
    "od_cost_pairs",
    "service_area",
    "route_frequencies",
    "CH_SPARSE_PAIR_BUDGET",
]

#: The CH lane wins when each full-graph sweep would answer at most
#: this many pairs: a sweep costs one Dijkstra over all n vertices,
#: a CH query orders of magnitude less, so sparse pair sets (few
#: columns per sweep source) route point-to-point instead.
CH_SPARSE_PAIR_BUDGET = 8


def _auto_tile_size(num_sources: int, plane) -> int:
    """Tiles sized for load balance: ~2 waves across the pool, capped
    at :data:`DEFAULT_TILE_SIZE` so a huge job still streams."""
    if plane is None:
        return max(1, num_sources)
    per_wave = ceil(num_sources / max(1, 2 * plane.pool.workers))
    return max(1, min(DEFAULT_TILE_SIZE, per_wave))


def _observe(metrics, product: str, *, pairs: int, elapsed_s: float,
             tiles: int = 1, pooled: bool = False) -> None:
    if metrics is None:
        return
    metrics.counter(f"analytics.{product}.requests").inc()
    metrics.counter(f"analytics.{product}.pairs").inc(pairs)
    metrics.histogram(f"analytics.{product}.ms").observe(elapsed_s * 1000.0)
    metrics.counter("analytics.tiles.total").inc(tiles)
    if pooled:
        metrics.counter("analytics.tiles.pooled").inc(tiles)


def _fan_out(plane, payloads: list[dict], metrics) -> list[dict]:
    """Submit every tile payload, then wait in order."""
    tickets = [plane.submit_analytics(payload) for payload in payloads]
    results = []
    for ticket in tickets:
        began = perf_counter()
        results.append(ticket.wait())
        if metrics is not None:
            metrics.histogram("analytics.tile_ms").observe(
                (perf_counter() - began) * 1000.0)
    return results


def _use_ch(kernel, cost, method: str, num_origins: int,
            num_destinations: int) -> bool:
    if method == "ch":
        return True
    if method != "auto":
        return False
    dense_side = max(num_origins, num_destinations)
    if dense_side > CH_SPARSE_PAIR_BUDGET:
        return False
    return (kernel.ch_if_built(cost) is not None
            or resolve_backend(None) == "ch")


def od_cost_matrix(network, origins, destinations=None, *, cost=None,
                   method: str = "auto", chunk_size: int | None = None,
                   tile_size: int | None = None, plane=None,
                   partition=None, metrics=None) -> ODMatrix:
    """Many-to-many least costs as one (or a few) batched sweeps.

    Sweeps the *smaller* side — forward multi-source over origins when
    ``len(origins) <= len(destinations)``, else reverse multi-source
    over destinations — in bounded ``chunk_size`` slabs, gathering only
    the requested columns from each slab.  ``method="auto"`` switches
    to per-pair CH queries when the pair set is sparse (both sides at
    most :data:`CH_SPARSE_PAIR_BUDGET`) and a hierarchy is available;
    ``method`` can also force ``"sweep"`` or ``"ch"``.  With ``plane``,
    the sweep side is tiled (shard-aware when ``partition`` is given)
    and tiles fan across the worker pool.  Disconnected pairs cost
    ``inf``; ``d(v, v) == 0``.
    """
    origins = list(origins)
    destinations = list(destinations) if destinations is not None \
        else list(origins)
    if not origins or not destinations:
        raise AnalyticsError("od_cost_matrix needs origins and destinations")
    if method not in ("auto", "sweep", "ch"):
        raise AnalyticsError(f"unknown od method {method!r}")
    began = perf_counter()
    kernel = csr_for(network)

    if _use_ch(kernel, cost, method, len(origins), len(destinations)):
        from repro.errors import NoPathError

        kernel.ensure_ch(cost)
        costs = np.empty((len(origins), len(destinations)), dtype=np.float64)
        for i, origin in enumerate(origins):
            for j, destination in enumerate(destinations):
                try:
                    costs[i, j] = kernel.ch_shortest_path_cost(
                        origin, destination, cost)
                except NoPathError:
                    costs[i, j] = np.inf
        _observe(metrics, "od", pairs=costs.size,
                 elapsed_s=perf_counter() - began)
        return ODMatrix(origins=tuple(origins),
                        destinations=tuple(destinations), costs=costs,
                        method="ch", sweeps=0)

    forward = len(origins) <= len(destinations)
    sweep_ids = origins if forward else destinations
    col_ids = destinations if forward else origins
    num_tiles = 1
    if plane is not None and len(sweep_ids) > 1:
        name = require_cost_name(cost)
        tiles = tile_sources(sweep_ids,
                             tile_size or _auto_tile_size(len(sweep_ids),
                                                          plane),
                             partition)
        payloads = [
            {"product": "od", "sweep": tile, "cols": col_ids,
             "reverse": not forward, "cost": name, "chunk_size": chunk_size}
            for tile in tiles
        ]
        num_tiles = len(tiles)
        results = _fan_out(plane, payloads, metrics)
        # Shard-aware tiling may permute the sweep side; scatter each
        # tile's rows back to the input positions (duplicates resolve
        # to identical rows, so clobbering is harmless).
        block = np.empty((len(sweep_ids), len(col_ids)), dtype=np.float64)
        positions: dict[int, list[int]] = {}
        for pos, vid in enumerate(sweep_ids):
            positions.setdefault(vid, []).append(pos)
        consumed: dict[int, int] = {}
        for tile, result in zip(tiles, results):
            for row, vid in zip(result["rows"], tile):
                slots = positions[vid]
                k = consumed.get(vid, 0)
                block[slots[min(k, len(slots) - 1)]] = row
                consumed[vid] = k + 1
    else:
        block = od_sweep_block(kernel, sweep_ids, col_ids, cost=cost,
                               reverse=not forward, chunk_size=chunk_size)
    costs = block if forward else np.ascontiguousarray(block.T)
    _observe(metrics, "od", pairs=costs.size,
             elapsed_s=perf_counter() - began, tiles=num_tiles,
             pooled=plane is not None and num_tiles > 1)
    return ODMatrix(origins=tuple(origins), destinations=tuple(destinations),
                    costs=costs,
                    method="forward_sweep" if forward else "reverse_sweep",
                    sweeps=len(sweep_ids))


def od_cost_pairs(network, pairs, *, cost=None, method: str = "auto",
                  chunk_size: int | None = None, metrics=None) -> np.ndarray:
    """Least costs for an explicit pair list, aligned with ``pairs``.

    Groups pairs by origin so each distinct origin costs one sweep at
    most; ``method="auto"`` routes the whole set through per-pair CH
    queries instead when the set is sparse (at most
    :data:`CH_SPARSE_PAIR_BUDGET` pairs per distinct origin) and a
    hierarchy is available.
    """
    pairs = list(pairs)
    if not pairs:
        raise AnalyticsError("od_cost_pairs needs at least one pair")
    if method not in ("auto", "sweep", "ch"):
        raise AnalyticsError(f"unknown od method {method!r}")
    began = perf_counter()
    kernel = csr_for(network)
    sources = list(dict.fromkeys(origin for origin, _ in pairs))
    sparse = len(pairs) <= CH_SPARSE_PAIR_BUDGET * len(sources)
    use_ch = method == "ch" or (
        method == "auto" and sparse
        and (kernel.ch_if_built(cost) is not None
             or resolve_backend(None) == "ch"))
    out = np.empty(len(pairs), dtype=np.float64)
    if use_ch:
        from repro.errors import NoPathError

        kernel.ensure_ch(cost)
        for k, (origin, destination) in enumerate(pairs):
            try:
                out[k] = kernel.ch_shortest_path_cost(origin, destination,
                                                      cost)
            except NoPathError:
                out[k] = np.inf
    else:
        wanted: dict[int, list[tuple[int, int]]] = {}
        for k, (origin, destination) in enumerate(pairs):
            wanted.setdefault(origin, []).append(
                (k, kernel.index_of(destination)))
        for start, rows in kernel.iter_multi_source(sources, cost,
                                                    chunk_size=chunk_size):
            for i in range(rows.shape[0]):
                for k, target_idx in wanted[sources[start + i]]:
                    out[k] = rows[i, target_idx]
    _observe(metrics, "od", pairs=len(pairs),
             elapsed_s=perf_counter() - began)
    return out


def service_area(network, sources, budgets, *, cost=None,
                 reverse: bool = False, chunk_size: int | None = None,
                 tile_size: int | None = None, plane=None, partition=None,
                 metrics=None):
    """Isochrones for every (source, budget) pair, source-major in
    input order, budget-minor in input order.

    One batched multi-source sweep (forward = where you can get *to*,
    ``reverse=True`` = where you can come *from*) serves every budget;
    membership is two vectorised comparisons per (row, budget).  With
    ``plane``, sources tile across the pool as for
    :func:`od_cost_matrix`.
    """
    from repro.analytics.products import ServiceArea

    sources = list(sources)
    budgets = [float(b) for b in budgets]
    if not sources:
        raise AnalyticsError("service_area needs at least one source")
    began = perf_counter()
    num_tiles = 1
    if plane is not None and len(sources) > 1:
        name = require_cost_name(cost)
        tiles = tile_sources(sources,
                             tile_size or _auto_tile_size(len(sources),
                                                          plane),
                             partition)
        payloads = [
            {"product": "service_area", "sources": tile, "budgets": budgets,
             "reverse": reverse, "cost": name, "chunk_size": chunk_size}
            for tile in tiles
        ]
        num_tiles = len(tiles)
        results = _fan_out(plane, payloads, metrics)
        by_source: dict[int, list[list[ServiceArea]]] = {}
        for tile, result in zip(tiles, results):
            areas = [
                ServiceArea(source=entry["source"], budget=entry["budget"],
                            reverse=entry["reverse"],
                            vertices=frozenset(entry["vertices"]),
                            edges=frozenset(
                                (u, v) for u, v in entry["edges"]))
                for entry in result["areas"]
            ]
            per_budget = len(budgets)
            for i, vid in enumerate(tile):
                by_source.setdefault(vid, []).append(
                    areas[i * per_budget:(i + 1) * per_budget])
        out: list[ServiceArea] = []
        taken: dict[int, int] = {}
        for vid in sources:
            k = taken.get(vid, 0)
            group = by_source[vid][min(k, len(by_source[vid]) - 1)]
            taken[vid] = k + 1
            out.extend(group)
    else:
        kernel = csr_for(network)
        out = service_area_blocks(kernel, sources, budgets, cost=cost,
                                  reverse=reverse, chunk_size=chunk_size)
    _observe(metrics, "service_area", pairs=len(sources) * len(budgets),
             elapsed_s=perf_counter() - began, tiles=num_tiles,
             pooled=plane is not None and num_tiles > 1)
    if metrics is not None:
        metrics.counter("analytics.service_area.areas").inc(len(out))
    return out


def route_frequencies(network, pairs, *, weights=None, cost=None,
                      tile_size: int | None = None, plane=None,
                      partition=None, metrics=None) -> RouteFrequencies:
    """Per-edge load over a workload of (origin, destination) pairs.

    Pairs are grouped by origin; each distinct origin costs one
    :meth:`CSRGraph.sssp_parents` tree, and every target walks its
    parent chain adding its weight (default 1.0) into one
    edge-indexed array.  With ``plane``, origin groups tile across the
    pool and sparse per-tile counts merge by CSR edge position.
    """
    pairs = list(pairs)
    if not pairs:
        raise AnalyticsError("route_frequencies needs at least one pair")
    began = perf_counter()
    kernel = csr_for(network)
    groups = group_pairs(pairs, weights)
    num_tiles = 1
    if plane is not None and len(groups) > 1:
        name = require_cost_name(cost)
        by_source = dict(groups)
        source_tiles = tile_sources([source for source, _ in groups],
                                    tile_size or _auto_tile_size(len(groups),
                                                                 plane),
                                    partition)
        payloads = [
            {"product": "route_freq",
             "groups": [[source, by_source[source]] for source in tile],
             "cost": name}
            for tile in source_tiles
        ]
        num_tiles = len(payloads)
        results = _fan_out(plane, payloads, metrics)
        counts = np.zeros(len(kernel.indices), dtype=np.float64)
        num_pairs = unreachable = 0
        for result in results:
            np.add.at(counts, np.asarray(result["positions"], dtype=np.int64),
                      np.asarray(result["counts"], dtype=np.float64))
            num_pairs += result["num_pairs"]
            unreachable += result["unreachable"]
    else:
        counts, num_pairs, unreachable = route_frequency_counts(
            kernel, groups, cost=cost)
    _observe(metrics, "route_freq", pairs=num_pairs,
             elapsed_s=perf_counter() - began, tiles=num_tiles,
             pooled=plane is not None and num_tiles > 1)
    if metrics is not None:
        metrics.counter("analytics.route_freq.unreachable").inc(unreachable)
    return RouteFrequencies(kernel=kernel, counts=counts,
                            num_pairs=num_pairs,
                            unreachable_pairs=unreachable)


class BatchAnalytics:
    """The analytics plane: a network bundled with its batch context.

    Holds the optional :class:`~repro.exec.plane.ExecutionPlane`
    (tiles fan across its pool), :class:`GraphPartition` (shard-aware
    tiling), :class:`MetricsRegistry` (``analytics.*`` accounting) and
    default chunk/tile sizes, and exposes the products as methods so
    callers configure once and query many times.
    """

    def __init__(self, network, *, plane=None, partition=None, metrics=None,
                 tile_size: int | None = None,
                 chunk_size: int | None = None) -> None:
        self.network = network
        self.plane = plane
        self.partition = partition
        self.metrics = metrics
        self.tile_size = tile_size
        self.chunk_size = chunk_size

    def od_cost_matrix(self, origins, destinations=None, *, cost=None,
                       method: str = "auto") -> ODMatrix:
        return od_cost_matrix(self.network, origins, destinations,
                              cost=cost, method=method,
                              chunk_size=self.chunk_size,
                              tile_size=self.tile_size, plane=self.plane,
                              partition=self.partition,
                              metrics=self.metrics)

    def od_cost_pairs(self, pairs, *, cost=None,
                      method: str = "auto") -> np.ndarray:
        return od_cost_pairs(self.network, pairs, cost=cost, method=method,
                             chunk_size=self.chunk_size,
                             metrics=self.metrics)

    def service_area(self, sources, budgets, *, cost=None,
                     reverse: bool = False):
        return service_area(self.network, sources, budgets, cost=cost,
                            reverse=reverse, chunk_size=self.chunk_size,
                            tile_size=self.tile_size, plane=self.plane,
                            partition=self.partition, metrics=self.metrics)

    def route_frequencies(self, pairs, *, weights=None,
                          cost=None) -> RouteFrequencies:
        return route_frequencies(self.network, pairs, weights=weights,
                                 cost=cost, tile_size=self.tile_size,
                                 plane=self.plane, partition=self.partition,
                                 metrics=self.metrics)

    def background(self, sources, *, product: str = "od",
                   budgets=None, cost=None,
                   max_rounds: int | None = None) -> BackgroundAnalytics:
        """The ``background_analytics=`` hook for this plane's context."""
        return BackgroundAnalytics(
            self.network, list(sources), product=product,
            budgets=list(budgets) if budgets is not None else None,
            cost_name=cost_name(cost) if cost is not None else None,
            plane=self.plane, partition=self.partition,
            tile_size=self.tile_size, max_rounds=max_rounds)
