"""Batch-analytics benchmark: kernel-batched products vs per-query loops.

Times the three ``repro.analytics`` products against the per-query
dict-backend loops they replace, on a generated grid network, and
writes the result as ``BENCH_analytics.json``:

* **OD matrix** — :func:`od_cost_matrix`'s chunked multi-source sweep
  vs one early-exit dict Dijkstra per pair.  Every cell is
  parity-checked element-wise; the **>= 5x speedup floor** arms at the
  full preset (the sweep amortises per-call overhead across the whole
  pair set, so the margin is wide and stable).
* **service areas** — vectorised per-budget membership vs per-source
  dict Dijkstra + Python set comprehensions, with exact vertex- and
  edge-set parity.
* **route frequencies** — one parent tree per distinct origin vs one
  dict ``shortest_path`` reconstruction per pair, with exact per-edge
  count parity (the tree's tie-break matches the reference).
* **tile scaling** — the pooled OD fan-out at each configured worker
  count, pooled-vs-inline parity, and the speedup curve.  Following
  the ``BENCH_parallel.json`` convention, the scaling floor only arms
  on a multi-core host at full scale; a single-core box records the
  measured curve with the floor honestly disarmed.
* **shm hygiene** — no ``repro-exec-*`` segment may survive teardown.

Consumed by ``benchmarks/bench_analytics.py`` (standalone + pytest
smoke mode) and the ``bench-analytics`` CLI subcommand, mirroring
``ch_bench`` / ``parallel_bench``.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import asdict, dataclass, replace
from pathlib import Path as FilePath

import numpy as np

from repro.analytics.batch import (
    od_cost_matrix,
    route_frequencies,
    service_area,
)
from repro.errors import DataError, NoPathError
from repro.exec.plane import ExecutionPlane
from repro.exec.shm import list_repro_segments
from repro.graph.builders import grid_network
from repro.graph.shortest_path import dijkstra, shortest_path
from repro.rng import make_rng

__all__ = [
    "AnalyticsBenchConfig",
    "smoke_config",
    "full_config",
    "apply_overrides",
    "run_analytics_benchmark",
    "validate_report",
    "write_report",
]

SCHEMA_VERSION = 1

#: Full-scale batched-vs-per-query OD floor.  The batched sweep answers
#: ``origins x destinations`` pairs in ``min(origins, destinations)``
#: kernel sweeps while the per-query loop pays one Python-heap Dijkstra
#: per pair, so 5x is a deliberately conservative floor.
OD_SPEEDUP_TARGET = 5.0

#: Pool tile-scaling floor at the largest worker count — only armed on
#: a multi-core host (``BENCH_parallel.json`` convention).
POOL_SCALING_TARGET = 1.5

#: Element-wise cost tolerance (float summation order differs between
#: the scipy sweep and the dict reference).
PARITY_TOLERANCE = 1e-9


@dataclass(frozen=True)
class AnalyticsBenchConfig:
    """Knobs of one batch-analytics benchmark run."""

    size: int = 40
    seed: int = 17
    num_origins: int = 24
    num_destinations: int = 24
    num_area_sources: int = 16
    num_budgets: int = 3
    num_route_pairs: int = 200
    num_route_sources: int = 20
    #: Worker counts for the pooled tile-scaling sweep.
    worker_counts: tuple[int, ...] = (1, 2)
    tile_size: int = 4
    chunk_size: int | None = None
    repeats: int = 3
    preset: str = "full"

    def __post_init__(self) -> None:
        if self.size < 3:
            raise ValueError(f"grid size must be >= 3, got {self.size}")
        if self.num_origins < 1 or self.num_destinations < 1:
            raise ValueError("num_origins and num_destinations must be >= 1")
        if self.num_area_sources < 1 or self.num_budgets < 1:
            raise ValueError("num_area_sources and num_budgets must be >= 1")
        if self.num_route_pairs < 1 or self.num_route_sources < 1:
            raise ValueError(
                "num_route_pairs and num_route_sources must be >= 1")
        if not self.worker_counts or any(c < 1 for c in self.worker_counts):
            raise ValueError(
                f"worker counts must be >= 1, got {self.worker_counts}")
        if self.tile_size < 1:
            raise ValueError(f"tile_size must be >= 1, got {self.tile_size}")
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {self.repeats}")


def smoke_config() -> AnalyticsBenchConfig:
    """Tiny preset for the tier-1 pytest wrapper: a small grid, few
    pairs, a single-worker pool — seconds end to end, still asserting
    exact parity for all three products and pooled-vs-inline equality."""
    return AnalyticsBenchConfig(size=9, seed=7, num_origins=6,
                                num_destinations=7, num_area_sources=4,
                                num_budgets=2, num_route_pairs=18,
                                num_route_sources=5, worker_counts=(1,),
                                tile_size=2, repeats=1, preset="smoke")


def full_config() -> AnalyticsBenchConfig:
    """The headline preset behind the committed ``BENCH_analytics.json``."""
    return AnalyticsBenchConfig()


def _parse_worker_counts(workers) -> tuple[int, ...]:
    if isinstance(workers, str):
        try:
            counts = tuple(int(part) for part in workers.split(",") if part)
        except ValueError:
            raise DataError(
                f"--workers must be a comma-separated list of ints, "
                f"got {workers!r}") from None
    elif isinstance(workers, int):
        counts = (workers,)
    else:
        counts = tuple(int(count) for count in workers)
    if not counts:
        raise DataError("--workers named no worker counts")
    return tuple(sorted(set(counts)))


def apply_overrides(
    config: AnalyticsBenchConfig,
    size: int | None = None,
    origins: int | None = None,
    destinations: int | None = None,
    pairs: int | None = None,
    workers=None,
    seed: int | None = None,
) -> AnalyticsBenchConfig:
    """Apply the command-line overrides shared by the ``bench-analytics``
    CLI subcommand and the standalone benchmark entry point."""
    overrides: dict[str, object] = {}
    if size is not None:
        overrides["size"] = size
    if origins is not None:
        overrides["num_origins"] = origins
    if destinations is not None:
        overrides["num_destinations"] = destinations
    if pairs is not None:
        overrides["num_route_pairs"] = pairs
    if workers is not None:
        overrides["worker_counts"] = _parse_worker_counts(workers)
    if seed is not None:
        overrides["seed"] = seed
    return replace(config, **overrides) if overrides else config


def _best_of(repeats: int, fn):
    """Best wall-clock over ``repeats`` runs; returns (seconds, result)."""
    best = math.inf
    result = None
    for _ in range(repeats):
        began = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - began)
    return best, result


def _sample_vertices(vids: list[int], count: int, rng,
                     exclude: set[int] = frozenset()) -> list[int]:
    pool = [vid for vid in vids if vid not in exclude]
    if count > len(pool):
        raise DataError(
            f"network too small: need {count} distinct vertices, "
            f"have {len(pool)}")
    picks = rng.choice(len(pool), size=count, replace=False)
    return [pool[int(i)] for i in picks]


# ----------------------------------------------------------------------
# Product sections
# ----------------------------------------------------------------------
def _od_section(network, origins, destinations, config) -> dict:
    batched_s, matrix = _best_of(
        config.repeats,
        lambda: od_cost_matrix(network, origins, destinations,
                               method="sweep",
                               chunk_size=config.chunk_size))

    def per_query() -> np.ndarray:
        out = np.empty((len(origins), len(destinations)), dtype=np.float64)
        for i, origin in enumerate(origins):
            for j, destination in enumerate(destinations):
                dist, _ = dijkstra(network, origin, target=destination)
                out[i, j] = dist.get(destination, math.inf)
        return out

    per_query_s, reference = _best_of(config.repeats, per_query)
    both_inf = np.isinf(matrix.costs) & np.isinf(reference)
    diff = np.abs(matrix.costs - reference)
    diff[both_inf] = 0.0
    mismatches = int((diff > PARITY_TOLERANCE).sum())
    return {
        "origins": len(origins),
        "destinations": len(destinations),
        "pairs": matrix.num_pairs,
        "method": matrix.method,
        "sweeps": matrix.sweeps,
        "batched_s": batched_s,
        "per_query_s": per_query_s,
        "speedup": per_query_s / batched_s if batched_s > 0 else math.inf,
        "parity": {
            "pairs": matrix.num_pairs,
            "mismatches": mismatches,
            "max_abs_diff": float(diff.max()),
            "disconnected": matrix.num_disconnected,
        },
    }


def _service_area_section(network, sources, budgets, config) -> dict:
    batched_s, areas = _best_of(
        config.repeats,
        lambda: service_area(network, sources, budgets,
                             chunk_size=config.chunk_size))

    def per_query():
        out = []
        for source in sources:
            dist, _ = dijkstra(network, source)
            for budget in budgets:
                vertices = {v for v, d in dist.items() if d <= budget}
                edges = {
                    edge.key for edge in network.edges()
                    if dist.get(edge.key[0], math.inf) + edge.length <= budget
                }
                out.append((vertices, edges))
        return out

    per_query_s, reference = _best_of(config.repeats, per_query)
    mismatches = 0
    for area, (ref_vertices, ref_edges) in zip(areas, reference):
        if area.vertices != ref_vertices or area.edges != ref_edges:
            mismatches += 1
    return {
        "sources": len(sources),
        "budgets": budgets,
        "areas": len(areas),
        "batched_s": batched_s,
        "per_query_s": per_query_s,
        "speedup": per_query_s / batched_s if batched_s > 0 else math.inf,
        "parity": {"areas": len(areas), "mismatches": mismatches},
    }


def _route_freq_section(network, pairs, config) -> dict:
    batched_s, frequencies = _best_of(
        config.repeats, lambda: route_frequencies(network, pairs))

    def per_query():
        counts: dict[tuple[int, int], float] = {}
        unreachable = 0
        for origin, destination in pairs:
            if origin == destination:
                continue
            try:
                path = shortest_path(network, origin, destination,
                                     backend="dict")
            except NoPathError:
                unreachable += 1
                continue
            for u, v in zip(path.vertices, path.vertices[1:]):
                counts[(u, v)] = counts.get((u, v), 0.0) + 1.0
        return counts, unreachable

    per_query_s, (reference, ref_unreachable) = _best_of(config.repeats,
                                                         per_query)
    batched = dict(frequencies.items())
    mismatches = sum(
        1 for key in set(reference) | set(batched)
        if abs(reference.get(key, 0.0) - batched.get(key, 0.0))
        > PARITY_TOLERANCE)
    return {
        "pairs": len(pairs),
        "distinct_sources": len({origin for origin, _ in pairs}),
        "loaded_edges": len(batched),
        "batched_s": batched_s,
        "per_query_s": per_query_s,
        "speedup": per_query_s / batched_s if batched_s > 0 else math.inf,
        "parity": {
            "edges_compared": len(set(reference) | set(batched)),
            "mismatches": mismatches,
            "unreachable_batched": frequencies.unreachable_pairs,
            "unreachable_reference": ref_unreachable,
        },
    }


def _tile_scaling_section(network, origins, destinations, config,
                          inline_costs: np.ndarray, cores: int) -> dict:
    sweep = []
    pooled_mismatches = 0
    for workers in config.worker_counts:
        plane = ExecutionPlane(network, workers=workers)
        try:
            elapsed_s, matrix = _best_of(
                config.repeats,
                lambda: od_cost_matrix(network, origins, destinations,
                                       method="sweep", plane=plane,
                                       tile_size=config.tile_size,
                                       chunk_size=config.chunk_size))
            if workers == max(config.worker_counts):
                pooled_mismatches = int(
                    (matrix.costs != inline_costs).sum())
        finally:
            plane.close()
        sweep.append({"workers": workers, "elapsed_s": elapsed_s})
    base_s = sweep[0]["elapsed_s"]
    for entry in sweep:
        entry["speedup_vs_min_workers"] = (
            base_s / entry["elapsed_s"] if entry["elapsed_s"] > 0
            else math.inf)
    achieved = sweep[-1]["speedup_vs_min_workers"]
    required = (config.preset == "full" and cores >= 2
                and len(config.worker_counts) >= 2)
    return {
        "sweep": sweep,
        "pooled_parity_mismatches": pooled_mismatches,
        "scaling_assertion": {
            "required": required,
            "target": POOL_SCALING_TARGET,
            "workers": max(config.worker_counts),
            "achieved": achieved,
            "note": (f"enforced: host has {cores} cores"
                     if required else
                     f"skipped: preset={config.preset!r}, cores={cores} "
                     f"(needs full preset, >= 2 cores, >= 2 worker "
                     f"counts)"),
        },
    }


# ----------------------------------------------------------------------
# The benchmark
# ----------------------------------------------------------------------
def run_analytics_benchmark(
        config: AnalyticsBenchConfig | None = None) -> dict:
    """Benchmark the analytics plane at the configured scale."""
    config = config or full_config()
    cores = os.cpu_count() or 1
    network = grid_network(config.size, config.size, seed=config.seed)
    rng = make_rng(config.seed)
    vids = sorted(network.vertex_ids())

    origins = _sample_vertices(vids, config.num_origins, rng)
    destinations = _sample_vertices(vids, config.num_destinations, rng,
                                    exclude=set(origins))
    area_sources = _sample_vertices(vids, config.num_area_sources, rng)
    route_sources = _sample_vertices(vids, config.num_route_sources, rng)
    route_pairs = []
    for _ in range(config.num_route_pairs):
        source = route_sources[int(rng.integers(len(route_sources)))]
        target = vids[int(rng.integers(len(vids)))]
        if target != source:
            route_pairs.append((source, target))

    # Budgets spanning "around the corner" to "most of the grid": set
    # from the measured distance field so every budget is non-trivial.
    dist, _ = dijkstra(network, area_sources[0])
    finite = sorted(d for d in dist.values() if d > 0.0)
    budgets = [float(finite[int(len(finite) * fraction)])
               for fraction in np.linspace(0.2, 0.8, config.num_budgets)]

    od = _od_section(network, origins, destinations, config)
    areas = _service_area_section(network, area_sources, budgets, config)
    route_freq = _route_freq_section(network, route_pairs, config)
    inline_costs = od_cost_matrix(network, origins, destinations,
                                  method="sweep",
                                  chunk_size=config.chunk_size).costs
    tile_scaling = _tile_scaling_section(network, origins, destinations,
                                         config, inline_costs, cores)
    leaked = list_repro_segments()

    od_required = config.preset == "full"
    od_assertion = {
        "required": od_required,
        "target": OD_SPEEDUP_TARGET,
        "achieved": od["speedup"],
        "note": ("enforced: full preset"
                 if od_required else
                 f"skipped: preset={config.preset!r} (smoke timings are "
                 f"start-up noise)"),
    }

    report = {
        "schema_version": SCHEMA_VERSION,
        "preset": config.preset,
        "config": asdict(config),
        "cores": cores,
        "network": {"vertices": network.num_vertices,
                    "edges": network.num_edges},
        "od": od,
        "service_area": areas,
        "route_frequencies": route_freq,
        "tile_scaling": tile_scaling,
        "od_speedup_assertion": od_assertion,
        "shm": {"leaked_segments": leaked},
    }
    report["headline"] = {
        "cores": cores,
        "od_pairs": od["pairs"],
        "od_speedup": od["speedup"],
        "od_speedup_enforced": od_assertion["required"],
        "service_area_speedup": areas["speedup"],
        "route_freq_speedup": route_freq["speedup"],
        "pool_speedup_at_max_workers":
            tile_scaling["scaling_assertion"]["achieved"],
        "pool_speedup_enforced":
            tile_scaling["scaling_assertion"]["required"],
        "parity_mismatches": (
            od["parity"]["mismatches"]
            + areas["parity"]["mismatches"]
            + route_freq["parity"]["mismatches"]
            + tile_scaling["pooled_parity_mismatches"]),
        "leaked_segments": len(leaked),
    }
    validate_report(report)
    return report


# ----------------------------------------------------------------------
# Report schema
# ----------------------------------------------------------------------
_TOP_KEYS = ("schema_version", "preset", "config", "cores", "network",
             "od", "service_area", "route_frequencies", "tile_scaling",
             "od_speedup_assertion", "shm", "headline")
_SPEEDUP_SECTIONS = ("od", "service_area", "route_frequencies")


def validate_report(report: dict) -> None:
    """Check a report parses as valid ``BENCH_analytics.json``.

    Raises :class:`DataError` on a malformed document, any parity
    mismatch in any product (pooled or inline), a leaked shared-memory
    segment, or a violated armed floor; used both when a report is
    produced and by the smoke test against re-parsed JSON.
    """
    if report.get("schema_version") != SCHEMA_VERSION:
        raise DataError(
            f"unexpected schema_version {report.get('schema_version')!r}")
    missing = [key for key in _TOP_KEYS if key not in report]
    if missing:
        raise DataError(f"report missing keys: {missing}")
    for section in _SPEEDUP_SECTIONS:
        block = report[section]
        for key in ("batched_s", "per_query_s", "speedup"):
            value = block.get(key)
            if not isinstance(value, (int, float)) or not value >= 0.0:
                raise DataError(
                    f"{section}.{key} must be a number >= 0, got {value!r}")
        parity = block["parity"]
        if parity["mismatches"] != 0:
            raise DataError(
                f"parity violation: {parity['mismatches']} {section} "
                f"results differ from the per-query dict-backend loop")
    od_parity = report["od"]["parity"]
    if not od_parity["max_abs_diff"] <= PARITY_TOLERANCE:
        raise DataError(
            f"parity violation: od.max_abs_diff="
            f"{od_parity['max_abs_diff']!r}")
    freq_parity = report["route_frequencies"]["parity"]
    if freq_parity["unreachable_batched"] \
            != freq_parity["unreachable_reference"]:
        raise DataError(
            "parity violation: batched and reference runs disagree on "
            "unreachable pair counts")
    scaling = report["tile_scaling"]
    if scaling["pooled_parity_mismatches"] != 0:
        raise DataError(
            f"parity violation: {scaling['pooled_parity_mismatches']} "
            f"pooled OD cells differ from the inline sweep")
    if not scaling["sweep"]:
        raise DataError("tile scaling sweep must cover >= 1 worker count")
    for entry in scaling["sweep"]:
        for key in ("workers", "elapsed_s", "speedup_vs_min_workers"):
            value = entry.get(key)
            if not isinstance(value, (int, float)) or not math.isfinite(value):
                raise DataError(
                    f"tile_scaling sweep[workers="
                    f"{entry.get('workers')!r}].{key} must be a finite "
                    f"number, got {value!r}")
    leaked = report["shm"]["leaked_segments"]
    if leaked:
        raise DataError(
            f"shared-memory leak: {len(leaked)} repro-exec segments "
            f"survived teardown: {leaked}")
    for name in ("od_speedup_assertion",):
        assertion = report[name]
        if assertion["required"] \
                and not assertion["achieved"] >= assertion["target"]:
            raise DataError(
                f"{name} violation: {assertion['achieved']:.2f}x below "
                f"the {assertion['target']}x floor")
    assertion = scaling["scaling_assertion"]
    if assertion["required"] \
            and not assertion["achieved"] >= assertion["target"]:
        raise DataError(
            f"tile scaling floor violation: {assertion['achieved']:.2f}x "
            f"at {assertion['workers']} workers, target "
            f"{assertion['target']}x ({assertion['note']})")


def write_report(report: dict, path: str | FilePath) -> FilePath:
    """Validate and write the report; returns the output path."""
    validate_report(report)
    out = FilePath(path)
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return out
