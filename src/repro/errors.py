"""Exception hierarchy for the PathRank reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without also catching programming
errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(ReproError):
    """Raised for structural problems in a road network."""


class VertexNotFoundError(GraphError):
    """Raised when a vertex id is not present in a network."""

    def __init__(self, vertex_id: int) -> None:
        super().__init__(f"vertex {vertex_id!r} is not in the network")
        self.vertex_id = vertex_id


class EdgeNotFoundError(GraphError):
    """Raised when an edge (u, v) is not present in a network."""

    def __init__(self, source: int, target: int) -> None:
        super().__init__(f"edge ({source!r} -> {target!r}) is not in the network")
        self.source = source
        self.target = target


class NoPathError(GraphError):
    """Raised when no path exists between a source and a destination."""

    def __init__(self, source: int, target: int) -> None:
        super().__init__(f"no path from {source!r} to {target!r}")
        self.source = source
        self.target = target


class InvalidPathError(GraphError):
    """Raised when a vertex sequence does not form a connected path."""


class NNError(ReproError):
    """Base class for neural-network substrate errors."""


class ShapeError(NNError):
    """Raised when tensor shapes are incompatible for an operation."""


class GradientError(NNError):
    """Raised for invalid backward passes (e.g. non-scalar roots without seed)."""


class SerializationError(ReproError):
    """Raised when a model or dataset cannot be saved or loaded."""


class ConfigError(ReproError):
    """Raised for invalid experiment or model configuration values."""


class DataError(ReproError):
    """Raised for malformed trajectories, GPS records, or training data."""


class TrainingError(ReproError):
    """Raised when model training cannot proceed (e.g. empty dataset)."""


class AnalyticsError(ReproError):
    """Raised for batch-analytics failures (empty source sets, tiles
    referencing costs that cannot cross a process boundary, or a plane
    whose pool rejects a tile)."""


class ServingError(ReproError):
    """Raised for online-serving failures (bad registry state, unflushed
    batch tickets, or a service without a usable model and no fallback)."""


class DeadlineExceeded(ServingError):
    """Raised when a request's deadline budget expires before its response.

    ``retry_after_ms`` is the caller's backoff hint: how long to wait
    before resubmitting (``None`` when the service has no estimate).
    """

    def __init__(self, message: str,
                 retry_after_ms: float | None = None) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class FaultInjected(ServingError):
    """Raised by an armed fault-injection rule (chaos testing only).

    A :class:`ServingError` on purpose: the serving stack must treat an
    injected failure exactly like a real transient library failure —
    retry, trip breakers, degrade — which is the property the
    fault-injection harness exists to prove.
    """


class ExecError(ServingError):
    """Raised for process-pool execution-plane failures.

    Covers dead or unresponsive workers, lost pool tickets, and
    dispatch on a closed pool.  A :class:`ServingError` on purpose:
    a sick worker process must look to the serving stack exactly like
    any other transient scoring failure — retried, breaker-counted,
    and finally degraded per request — never a hang.
    """


class StaleSegmentError(ExecError):
    """Raised when a shared-memory segment does not carry the expected
    content key (graph fingerprint / weight version) — the attach-side
    guard against scoring on stale hot-state after a swap."""
